//! OLTP buffer-pool walkthrough: shows how SMS learns the recurring layout of
//! database-page accesses (page header, tuple-slot index, tuples) and streams
//! them ahead of the demand misses of *later* transactions.
//!
//! The example drives the predictor API directly — without the cache
//! simulator — so the mechanics of the AGT, PHT and prediction registers are
//! visible step by step, then runs the full OLTP workload through the
//! simulator for end-to-end numbers.
//!
//! ```text
//! cargo run --release --example oltp_buffer_pool
//! ```

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
use sms::{
    CoverageLevel, CoverageStats, IndexScheme, RegionConfig, SmsConfig, SmsPredictor, SmsPrefetcher,
};
use trace::{Application, GeneratorConfig};

fn main() {
    println!("--- Part 1: one transaction's page access pattern, by hand ---");
    let region = RegionConfig::paper_default(); // 2 kB, 32 blocks
    let mut predictor = SmsPredictor::new(&SmsConfig::idealized(IndexScheme::PcOffset, region));

    // A database page occupies one 2 kB spatial region.  The "read row" code
    // path always touches the page header (block 0), the tuple-slot index
    // (block 31) and the tuple itself (block 9 in this transaction).
    let pc_read_row = 0x0040_1000;
    let page_a = 0x5000_0000;
    for offset in [0u32, 31, 9] {
        let streamed = predictor.on_access(page_a + u64::from(offset) * 64, pc_read_row);
        assert!(streamed.is_empty(), "nothing is predicted while training");
    }
    // The transaction commits and the page's blocks are eventually evicted,
    // ending the generation and training the pattern history table.
    predictor.on_block_removed(page_a);
    println!("trained patterns in PHT : {}", predictor.pht_len());

    // A later transaction touches a page that has NEVER been visited.  The
    // trigger access (same code path, same in-page offset) predicts the rest
    // of the layout immediately.
    let page_b = 0x7000_0000;
    let streamed = predictor.on_access(page_b, pc_read_row);
    println!("trigger on new page      : {page_b:#x}");
    print!("streamed blocks          :");
    for addr in &streamed {
        print!(" +{}", (addr - page_b) / 64);
    }
    println!();
    assert!(
        streamed.contains(&(page_b + 31 * 64)),
        "slot index predicted"
    );
    assert!(
        streamed.contains(&(page_b + 9 * 64)),
        "tuple block predicted"
    );

    println!("\n--- Part 2: the full synthetic TPC-C workload ---");
    let cpus = 4;
    let accesses = 200_000;
    let generator = GeneratorConfig::default().with_cpus(cpus);
    let hierarchy = HierarchyConfig::scaled();
    for app in [Application::OltpDb2, Application::OltpOracle] {
        let mut base_sys = MultiCpuSystem::new(cpus, &hierarchy);
        let mut stream = app.stream(7, &generator);
        let baseline = memsim::run(
            &mut base_sys,
            &mut NullPrefetcher::new(),
            &mut stream,
            accesses,
        );

        let mut sms_sys = MultiCpuSystem::new(cpus, &hierarchy);
        let mut sms = SmsPrefetcher::new(cpus, &SmsConfig::paper_default());
        let mut stream = app.stream(7, &generator);
        let with = memsim::run(&mut sms_sys, &mut sms, &mut stream, accesses);

        let l1 = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L1);
        let l2 = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L2);
        println!(
            "{:<8} L1 coverage {:>5.1}%   off-chip coverage {:>5.1}%   overpredictions {:>5.1}%",
            app.short_name(),
            l1.coverage() * 100.0,
            l2.coverage() * 100.0,
            l1.overprediction_fraction() * 100.0,
        );
    }
}
