//! Prefetcher shootout: the practical SMS configuration versus GHB PC/DC
//! (256-entry and 16k-entry) on the full eleven-application suite — the
//! example-sized version of the paper's Figure 11.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use ghb::{GhbConfig, GhbPrefetcher};
use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, Prefetcher, RunSummary};
use sms::{CoverageLevel, CoverageStats, SmsConfig, SmsPrefetcher};
use trace::{Application, GeneratorConfig};

fn run(
    app: Application,
    prefetcher: &mut dyn Prefetcher,
    cpus: usize,
    accesses: usize,
) -> RunSummary {
    let generator = GeneratorConfig::default().with_cpus(cpus);
    let hierarchy = HierarchyConfig::scaled();
    let mut system = MultiCpuSystem::new(cpus, &hierarchy);
    let mut stream = app.stream(2006, &generator);
    memsim::run(&mut system, prefetcher, &mut stream, accesses)
}

fn main() {
    let cpus = 2;
    let accesses = 120_000;
    println!(
        "{:<8} {:>10} {:>10} {:>10}   (off-chip read-miss coverage)",
        "App", "GHB-256", "GHB-16k", "SMS"
    );
    let mut sms_total = 0.0;
    let mut ghb_total = 0.0;
    for app in Application::ALL {
        let baseline = run(app, &mut NullPrefetcher::new(), cpus, accesses);

        let mut ghb_small = GhbPrefetcher::new(cpus, &GhbConfig::paper_small());
        let small = run(app, &mut ghb_small, cpus, accesses);
        let mut ghb_large = GhbPrefetcher::new(cpus, &GhbConfig::paper_large());
        let large = run(app, &mut ghb_large, cpus, accesses);
        let mut sms = SmsPrefetcher::new(cpus, &SmsConfig::paper_default());
        let with_sms = run(app, &mut sms, cpus, accesses);

        let cov = |with: &RunSummary| {
            CoverageStats::from_runs(&baseline, with, CoverageLevel::L2).coverage()
        };
        let (c_small, c_large, c_sms) = (cov(&small), cov(&large), cov(&with_sms));
        sms_total += c_sms;
        ghb_total += c_large;
        println!(
            "{:<8} {:>9.1}% {:>9.1}% {:>9.1}%",
            app.short_name(),
            c_small * 100.0,
            c_large * 100.0,
            c_sms * 100.0
        );
    }
    let n = Application::ALL.len() as f64;
    println!(
        "\nmean off-chip coverage: SMS {:.1}%  vs  GHB-16k {:.1}%",
        sms_total / n * 100.0,
        ghb_total / n * 100.0
    );
}
