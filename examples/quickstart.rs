//! Quickstart: run Spatial Memory Streaming on a synthetic OLTP workload and
//! report how many primary-cache and off-chip read misses it eliminates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
use sms::{CoverageLevel, CoverageStats, SmsConfig, SmsPrefetcher};
use trace::{Application, GeneratorConfig};

fn main() {
    let cpus = 4;
    let accesses = 200_000;
    let seed = 42;

    let generator = GeneratorConfig::default().with_cpus(cpus);
    let hierarchy = HierarchyConfig::scaled();
    let app = Application::OltpDb2;

    // 1. Baseline: the system without any prefetching.
    let mut baseline_system = MultiCpuSystem::new(cpus, &hierarchy);
    let mut baseline_prefetcher = NullPrefetcher::new();
    let mut stream = app.stream(seed, &generator);
    let baseline = memsim::run(
        &mut baseline_system,
        &mut baseline_prefetcher,
        &mut stream,
        accesses,
    );

    // 2. The same trace with the paper's practical SMS configuration
    //    (2 kB regions, PC+offset indexing, 32/64 AGT, 16k x 16-way PHT).
    let mut sms_system = MultiCpuSystem::new(cpus, &hierarchy);
    let mut sms = SmsPrefetcher::new(cpus, &SmsConfig::paper_default());
    let mut stream = app.stream(seed, &generator);
    let with_sms = memsim::run(&mut sms_system, &mut sms, &mut stream, accesses);

    // 3. Coverage accounting, exactly as the paper's figures report it.
    let l1 = CoverageStats::from_runs(&baseline, &with_sms, CoverageLevel::L1);
    let l2 = CoverageStats::from_runs(&baseline, &with_sms, CoverageLevel::L2);

    println!("workload            : {app} ({accesses} accesses, {cpus} CPUs)");
    println!("baseline L1 misses  : {}", l1.baseline_misses);
    println!("L1 coverage         : {:.1}%", l1.coverage() * 100.0);
    println!(
        "L1 overpredictions  : {:.1}%",
        l1.overprediction_fraction() * 100.0
    );
    println!("off-chip coverage   : {:.1}%", l2.coverage() * 100.0);

    let stats = sms.total_stats();
    println!(
        "predictor activity  : {} generations observed, {} patterns trained, {} PHT hits",
        stats.triggers, stats.patterns_trained, stats.pht_hits
    );
}
