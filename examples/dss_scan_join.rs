//! Decision-support scans and joins: why code-based (PC+offset) indexing is
//! fundamentally stronger than address-based indexing.
//!
//! TPC-H style scans sweep enormous tables and touch every page exactly once.
//! An address-indexed predictor can only predict regions it has seen before,
//! so it is useless for such cold data; a PC-indexed predictor learns the
//! *code's* access layout from the first few pages and then predicts every
//! subsequent page — including ones never visited.  This example reproduces
//! that comparison (the essence of the paper's Figure 6) on the four DSS
//! queries.
//!
//! ```text
//! cargo run --release --example dss_scan_join
//! ```

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
use sms::{CoverageLevel, CoverageStats, IndexScheme, RegionConfig, SmsConfig, SmsPrefetcher};
use trace::{Application, GeneratorConfig};

fn coverage_with_scheme(
    app: Application,
    scheme: IndexScheme,
    cpus: usize,
    accesses: usize,
) -> CoverageStats {
    let generator = GeneratorConfig::default().with_cpus(cpus);
    let hierarchy = HierarchyConfig::scaled();

    let mut base_sys = MultiCpuSystem::new(cpus, &hierarchy);
    let mut stream = app.stream(11, &generator);
    let baseline = memsim::run(
        &mut base_sys,
        &mut NullPrefetcher::new(),
        &mut stream,
        accesses,
    );

    let mut sms_sys = MultiCpuSystem::new(cpus, &hierarchy);
    let config = SmsConfig::idealized(scheme, RegionConfig::paper_default());
    let mut sms = SmsPrefetcher::new(cpus, &config);
    let mut stream = app.stream(11, &generator);
    let with = memsim::run(&mut sms_sys, &mut sms, &mut stream, accesses);

    CoverageStats::from_runs(&baseline, &with, CoverageLevel::L1)
}

fn main() {
    let cpus = 2;
    let accesses = 150_000;
    let queries = [
        Application::DssQry1,
        Application::DssQry2,
        Application::DssQry16,
        Application::DssQry17,
    ];
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "Query", "Addr", "PC+addr", "PC", "PC+off"
    );
    for app in queries {
        let mut row = format!("{:<8}", app.short_name());
        for scheme in IndexScheme::ALL {
            let cov = coverage_with_scheme(app, scheme, cpus, accesses);
            row.push_str(&format!(" {:>11.1}%", cov.coverage() * 100.0));
        }
        println!("{row}");
    }
    println!(
        "\nScan-dominated queries visit each page once, so the address-indexed\n\
         predictor has no history to draw on; PC+offset predicts pages it has\n\
         never seen because the scan loop's layout repeats."
    );
}
