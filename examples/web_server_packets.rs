//! Web-server packet buffers: measures the spatial access density of the
//! SPECweb-style workloads, then shows the performance effect of SMS with the
//! cycle-approximate timing model (speedup and time breakdown — the
//! example-sized version of Figures 5, 12 and 13 for the web class).
//!
//! ```text
//! cargo run --release --example web_server_packets
//! ```

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
use sms::{DensityBin, DensityObserver, RegionConfig, SmsConfig, SmsPrefetcher};
use timing::{speedup_with_ci, BreakdownComparison, TimingConfig, TimingModel};
use trace::{Application, GeneratorConfig};

fn main() {
    let cpus = 2;
    let accesses = 150_000;
    let generator = GeneratorConfig::default().with_cpus(cpus);
    let hierarchy = HierarchyConfig::scaled();

    for app in [Application::WebApache, Application::WebZeus] {
        println!("=== {} ===", app.short_name());

        // Access density over 2 kB regions: packet buffers are touched in
        // sparse-to-medium patterns, interleaved across many connections.
        let mut observer = DensityObserver::new(cpus, RegionConfig::paper_default());
        let mut system = MultiCpuSystem::new(cpus, &hierarchy);
        let mut stream = app.stream(9, &generator);
        let _ = memsim::run(&mut system, &mut observer, &mut stream, accesses);
        let (l1_density, _) = observer.finish();
        println!("L1 miss density over 2kB regions:");
        for (bin, fraction) in DensityBin::PAPER_BINS.iter().zip(l1_density.fractions()) {
            if fraction > 0.005 {
                println!("  {:<12} {:>5.1}%", bin.label(), fraction * 100.0);
            }
        }

        // Timing: baseline versus SMS.
        let timing = TimingConfig::table1().with_system_busy_fraction(0.30);
        let model = TimingModel::new(hierarchy, cpus, timing);
        let mut base = NullPrefetcher::new();
        let mut stream = app.stream(9, &generator);
        let (base_result, _) = model.evaluate(&mut base, &mut stream, accesses, 20);
        let mut sms = SmsPrefetcher::new(cpus, &SmsConfig::paper_default());
        let mut stream = app.stream(9, &generator);
        let (sms_result, _) = model.evaluate(&mut sms, &mut stream, accesses, 20);

        let ci = speedup_with_ci(&base_result, &sms_result);
        let cmp = BreakdownComparison::new(&base_result, &sms_result);
        println!("speedup: {ci}");
        println!("normalized time (base = 1.000):");
        println!(
            "  base: off-chip {:.3}  on-chip {:.3}  busy {:.3}  other {:.3}",
            cmp.base.offchip_read,
            cmp.base.onchip_read,
            cmp.base.user_busy + cmp.base.system_busy,
            cmp.base.other + cmp.base.store_buffer,
        );
        println!(
            "  SMS : off-chip {:.3}  on-chip {:.3}  busy {:.3}  other {:.3}  (total {:.3})",
            cmp.enhanced.offchip_read,
            cmp.enhanced.onchip_read,
            cmp.enhanced.user_busy + cmp.enhanced.system_busy,
            cmp.enhanced.other + cmp.enhanced.store_buffer,
            cmp.enhanced.total(),
        );
        println!();
    }
}
