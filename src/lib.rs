//! Umbrella package for the Spatial Memory Streaming reproduction.
//!
//! This crate carries the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`), and re-exports every workspace crate so
//! downstream users can depend on a single package:
//!
//! * [`sms`] — the SMS predictor itself (AGT, PHT, streamer, oracle).
//! * [`memsim`] — the multi-CPU cache-hierarchy simulator.
//! * [`trace`] — deterministic synthetic workload generators.
//! * [`ghb`] — the Global History Buffer comparison prefetcher.
//! * [`timing`] — the first-order timing/speedup model.
//! * [`stats`] — confidence intervals, sampling and summaries.
//! * [`experiments`] — runners that regenerate the paper's figures.
//! * [`server`] — the resident job server with its content-addressed
//!   result cache (`sms-experiments serve` / `submit`).

pub use experiments;
pub use ghb;
pub use memsim;
pub use server;
pub use sms;
pub use stats;
pub use timing;
pub use trace;
