//! Telemetry must observe, never perturb: metrics collection (disabled vs.
//! enabled) and the batched vs. pre-batching driver loops must all produce
//! byte-identical simulation results, and the collected metrics must be
//! consistent with the results they describe.

use engine::{EngineConfig, PrefetcherSpec, Registry, SimJob};
use ghb::GhbConfig;
use memsim::{HierarchyConfig, MultiCpuSystem};
use metrics::MetricsConfig;
use sms::SmsConfig;
use timing::TimingConfig;
use trace::{Application, GeneratorConfig, TraceSource};

const CPUS: usize = 2;
const SEED: u64 = 2006;
const ACCESSES: usize = 10_000;

/// A job list covering every execution path: baseline, SMS, GHB, timing.
fn job_list() -> Vec<SimJob> {
    let base = memsim::SimJob::synthetic(
        Application::OltpDb2,
        GeneratorConfig::default().with_cpus(CPUS),
        SEED,
        CPUS,
        HierarchyConfig::scaled(),
        PrefetcherSpec::null(),
        ACCESSES,
    );
    vec![
        SimJob::new(base.clone()),
        SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ..base.clone()
        }),
        SimJob::new(memsim::SimJob {
            source: TraceSource::synthetic(
                Application::Ocean,
                GeneratorConfig::default().with_cpus(CPUS),
                SEED,
            ),
            prefetcher: PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ..base.clone()
        }),
        SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ..base
        })
        .with_timing(TimingConfig::table1(), 4),
    ]
}

#[test]
fn metrics_collection_disabled_vs_enabled_is_byte_identical() {
    let jobs = job_list();
    for workers in [1, 3] {
        let config = EngineConfig::with_workers(workers);
        let (disabled, _) = engine::run_jobs_metered(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::disabled(),
        )
        .expect("jobs prepare");
        let (enabled, collected) = engine::run_jobs_metered(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::enabled(),
        )
        .expect("jobs prepare");

        // Byte-identical, not merely `==`: serialize both result lists.
        let a = serde_json::to_string(&disabled).expect("serialize");
        let b = serde_json::to_string(&enabled).expect("serialize");
        assert_eq!(
            a, b,
            "{workers} workers: collecting metrics must not alter a single result byte"
        );

        // And the plain (unmetered) entry point agrees too.
        let plain = engine::run_jobs_with(&jobs, &config);
        assert_eq!(
            serde_json::to_string(&plain).expect("serialize"),
            a,
            "{workers} workers: run_jobs_with must match the metered paths"
        );

        // The collected telemetry describes the run it observed.
        assert_eq!(collected.jobs.len(), jobs.len());
        assert_eq!(collected.workers.len(), workers);
        assert_eq!(
            collected.total_accesses,
            enabled.iter().map(|r| r.summary.accesses).sum::<u64>()
        );
        for (result, job) in enabled.iter().zip(&collected.jobs) {
            assert_eq!(job.job_index, result.job_index);
            assert_eq!(job.accesses, result.summary.accesses);
            assert!(job.elapsed_seconds > 0.0);
            assert!(job.accesses_per_sec > 0.0);
        }
        assert!(collected.total_seconds > 0.0);
        assert!(collected.report().validate().is_ok());
    }
}

#[test]
fn segmented_metrics_collection_is_byte_identical_and_counts_segments() {
    // Telemetry neutrality holds through the segment pipeline too: metrics
    // on/off must not change a byte, and the per-job metrics must report the
    // segment count and stage timings the pipeline actually ran.
    let jobs = job_list();
    for workers in [1, 2, 3] {
        let config = EngineConfig::with_workers(workers).with_segment_size(1_000);
        let (disabled, _) = engine::run_jobs_metered(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::disabled(),
        )
        .expect("jobs prepare");
        let (enabled, collected) = engine::run_jobs_metered(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::enabled(),
        )
        .expect("jobs prepare");
        let a = serde_json::to_string(&disabled).expect("serialize");
        let b = serde_json::to_string(&enabled).expect("serialize");
        assert_eq!(
            a, b,
            "{workers} workers segmented: metrics must not alter a result byte"
        );
        // The serial unsegmented path produces the same bytes again.
        let serial = engine::run_jobs_with(&jobs, &EngineConfig::serial());
        assert_eq!(serde_json::to_string(&serial).expect("serialize"), a);

        for job in &collected.jobs {
            assert_eq!(
                job.segments,
                (ACCESSES as u64).div_ceil(1_000),
                "every 10k-access job splits into 10 segments of 1000"
            );
            assert!(job.elapsed_seconds > 0.0);
            assert!(
                job.pull_seconds > 0.0,
                "the pull stage reads the whole trace"
            );
            assert!(
                job.account_seconds > 0.0,
                "the account stage replays every tape"
            );
        }
        assert!(collected.report().validate().is_ok());
    }
}

#[test]
fn tracing_enabled_vs_disabled_is_byte_identical() {
    // The PR 4 telemetry contract extends to span tracing: recording spans
    // must never alter a single result byte, across the plain, segmented,
    // and speculative execution paths.
    let jobs = job_list();
    for config in [
        EngineConfig::serial(),
        EngineConfig::with_workers(3),
        EngineConfig::with_workers(2).with_segment_size(1_000),
        EngineConfig::with_workers(4)
            .with_segment_size(1_000)
            .with_speculation(2),
    ] {
        let (untraced, _) = engine::run_jobs_observed(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::disabled(),
            &tracelog::Trace::disabled(),
        )
        .expect("jobs prepare");
        let trace = tracelog::Trace::enabled();
        let (traced, _) = engine::run_jobs_observed(
            &jobs,
            &config,
            Registry::builtin(),
            &MetricsConfig::enabled(),
            &trace,
        )
        .expect("jobs prepare");
        assert_eq!(
            serde_json::to_string(&untraced).expect("serialize"),
            serde_json::to_string(&traced).expect("serialize"),
            "{config:?}: tracing must not alter a single result byte"
        );
        let chrome = trace.to_chrome_json().expect("enabled trace exports");
        let check =
            tracelog::check_chrome_trace(&chrome, &["job"]).expect("traced run yields valid JSON");
        assert!(
            check.spans as usize >= jobs.len(),
            "every job records at least its own span"
        );
    }
}

#[test]
fn batched_and_unbatched_drivers_agree_for_every_builtin_prefetcher() {
    for spec in [
        PrefetcherSpec::null(),
        PrefetcherSpec::sms(&SmsConfig::paper_default()),
        PrefetcherSpec::ghb(&GhbConfig::paper_small()),
    ] {
        for app in [Application::Ocean, Application::DssQry1] {
            let generator = GeneratorConfig::default().with_cpus(CPUS);
            let registry = Registry::builtin();

            let mut batched_system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
            let mut batched_prefetcher = registry.build(&spec, CPUS).expect("built-in plugin");
            let mut stream = app.stream(SEED, &generator);
            let batched = memsim::run(
                &mut batched_system,
                &mut batched_prefetcher,
                &mut stream,
                ACCESSES,
            );

            let mut unbatched_system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
            let mut unbatched_prefetcher = registry.build(&spec, CPUS).expect("built-in plugin");
            let mut stream = app.stream(SEED, &generator);
            let unbatched = memsim::run_unbatched(
                &mut unbatched_system,
                &mut unbatched_prefetcher,
                &mut stream,
                ACCESSES,
            );

            assert_eq!(
                serde_json::to_string(&batched).expect("serialize"),
                serde_json::to_string(&unbatched).expect("serialize"),
                "{}/{app}: batched loop must not alter a single summary byte",
                spec.plugin
            );
        }
    }
}

#[test]
fn driver_metrics_reconcile_with_the_summary() {
    let job = memsim::SimJob::synthetic(
        Application::Sparse,
        GeneratorConfig::default().with_cpus(CPUS),
        SEED,
        CPUS,
        HierarchyConfig::scaled(),
        memsim::NullPrefetcher::new(),
        ACCESSES,
    );
    let (summary, _, driver) =
        memsim::run_job_metered(&job, &MetricsConfig::enabled()).expect("synthetic source");
    assert_eq!(summary.accesses, ACCESSES as u64);
    assert_eq!(driver.cache_ops, summary.accesses + driver.prefetch_issues);
    assert!(driver.elapsed_seconds > 0.0);
    assert!(driver.accesses_per_sec > 0.0);
}
