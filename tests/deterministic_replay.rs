//! Deterministic-replay regression tests: the trace generators and the cache
//! simulator are pinned to exact, platform-independent behavior.  The same
//! `GeneratorConfig` seed must produce a byte-identical `RunSummary` for every
//! application, the raw access streams themselves are pinned with golden
//! hashes so that any accidental change to the generator RNG (or to the order
//! in which generators consume random draws) is caught immediately, and the
//! parallel engine must reproduce the serial path bit for bit.

use engine::{EngineConfig, PrefetcherSpec, Registry, SimJob};
use ghb::GhbConfig;
use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, RunSummary};
use sms::SmsConfig;
use timing::TimingConfig;
use trace::{AccessKind, Application, GeneratorConfig, TraceSource};

const CPUS: usize = 2;
const SEED: u64 = 2006;
const ACCESSES: usize = 10_000;

/// FNV-1a over a byte string (used to pin serialized results).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn run_baseline(app: Application) -> RunSummary {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
    let mut stream = app.stream(SEED, &generator);
    memsim::run(
        &mut system,
        &mut NullPrefetcher::new(),
        &mut stream,
        ACCESSES,
    )
}

/// FNV-1a over the first `n` accesses of an application's stream.
fn stream_hash(app: Application, seed: u64, n: usize) -> u64 {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for access in app.stream(seed, &generator).take(n) {
        fnv(access.cpu);
        for b in access.pc.to_le_bytes() {
            fnv(b);
        }
        for b in access.addr.to_le_bytes() {
            fnv(b);
        }
        fnv(match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    hash
}

#[test]
fn same_seed_gives_byte_identical_summaries() {
    for app in Application::ALL {
        let first = run_baseline(app);
        let second = run_baseline(app);
        assert_eq!(first, second, "{app}: summaries must be identical");
        // Byte-identical, not merely `==`: serialize both and compare text.
        let a = serde_json::to_string(&first).expect("serialize");
        let b = serde_json::to_string(&second).expect("serialize");
        assert_eq!(a, b, "{app}: serialized summaries must match byte for byte");
    }
}

/// A mixed job list exercising every execution path of the engine: plain
/// baselines, SMS, GHB, a density probe, and a timing-model job.
fn engine_job_list() -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (i, app) in [
        Application::OltpDb2,
        Application::DssQry1,
        Application::WebApache,
        Application::Ocean,
        Application::Sparse,
    ]
    .into_iter()
    .enumerate()
    {
        let base = memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(CPUS),
            SEED + i as u64,
            CPUS,
            HierarchyConfig::scaled(),
            PrefetcherSpec::null(),
            ACCESSES,
        );
        jobs.push(SimJob::new(base.clone()));
        jobs.push(SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ..base.clone()
        }));
        jobs.push(SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ..base.clone()
        }));
        jobs.push(
            SimJob::new(memsim::SimJob {
                prefetcher: PrefetcherSpec::sms(&SmsConfig::paper_default()),
                ..base
            })
            .with_timing(TimingConfig::table1(), 8),
        );
    }
    jobs
}

#[test]
fn parallel_engine_matches_serial_bit_for_bit() {
    let jobs = engine_job_list();
    let serial = engine::run_jobs_with(&jobs, &EngineConfig::serial());
    let parallel = engine::run_jobs_with(&jobs, &EngineConfig::with_workers(4));
    assert_eq!(serial.len(), jobs.len());
    assert_eq!(
        serial, parallel,
        "4-worker engine results must be bit-identical to the serial path"
    );
    // Byte-identical, not merely `==`: serialize both result lists.
    let a = serde_json::to_string(&serial).expect("serialize serial");
    let b = serde_json::to_string(&parallel).expect("serialize parallel");
    assert_eq!(a, b, "serialized results must match byte for byte");
    for (i, result) in serial.iter().enumerate() {
        assert_eq!(result.job_index, i, "results must come back in job order");
        // Well-formed jobs pair generator and system CPU counts, so the
        // engine must never silently drop accesses.
        assert_eq!(
            result.summary.skipped_accesses, 0,
            "job {i} silently skipped accesses"
        );
    }
}

#[test]
fn segment_parallel_engine_matches_serial_bit_for_bit() {
    // The segment pipeline (intra-job sharding with deferred classification
    // and per-segment state hand-off) must reproduce the serial bits over
    // the full mixed job list — baselines, SMS, GHB and timing jobs — for
    // every pipeline shape: inline (1 thread), two- and three-stage helper
    // topologies, speculative run-ahead at several depths, and with an odd
    // segment size that leaves a partial final segment.
    let jobs = engine_job_list();
    let serial = engine::run_jobs_with(&jobs, &EngineConfig::serial());
    let serial_json = serde_json::to_string(&serial).expect("serialize serial");
    for (workers, segment_size, speculate) in [
        (1, 1_000, 0),
        (2, 1_000, 0),
        (4, 1_000, 0),
        (4, 777, 0),
        (4, 50_000, 0),
        (2, 1_000, 2),
        (4, 777, 4),
        (8, 1_000, 1),
    ] {
        let segmented = engine::run_jobs_with(
            &jobs,
            &EngineConfig::with_workers(workers)
                .with_segment_size(segment_size)
                .with_speculation(speculate),
        );
        let segmented_json = serde_json::to_string(&segmented).expect("serialize segmented");
        assert_eq!(
            serial_json, segmented_json,
            "workers={workers} segment_size={segment_size} speculate={speculate}: \
             segmented engine results must be byte-identical to the serial path"
        );
    }
}

#[test]
fn segmented_sms_run_reproduces_the_pinned_golden_hash() {
    // The same golden summary hash `registry_built_sms_run_is_pinned` pins
    // for the serial registry path must come out of the segment pipeline:
    // segmentation is an execution strategy, never a behavior change.
    const GOLDEN_SUMMARY_HASH: u64 = 0x2c60632b11e41c1c;

    for (workers, segment_size, speculate) in [
        (1, 2_048, 0),
        (3, 2_048, 0),
        (2, 3_333, 0),
        (4, 2_048, 4),
        (2, 3_333, 1),
    ] {
        let results = engine::run_jobs_with(
            &[pinned_sms_job()],
            &EngineConfig::with_workers(workers)
                .with_segment_size(segment_size)
                .with_speculation(speculate),
        );
        let json = serde_json::to_string(&results[0].summary).expect("serialize summary");
        let got = fnv1a(json.as_bytes());
        assert_eq!(
            got, GOLDEN_SUMMARY_HASH,
            "workers={workers} segment_size={segment_size} speculate={speculate}: \
             segmented SMS summary drifted from the pinned serial hash \
             (got {got:#018x}; summary {json})"
        );
    }
}

#[test]
fn different_seeds_give_different_streams() {
    for app in Application::ALL {
        assert_ne!(
            stream_hash(app, 1, 2_000),
            stream_hash(app, 2, 2_000),
            "{app}: different seeds must not collide"
        );
    }
}

#[test]
fn generator_rng_behavior_is_pinned() {
    // Golden hashes of the first 5000 accesses of every application at seed
    // 2006 with two CPUs.  These values pin the exact RNG draw sequence of
    // the trace generators: if this test fails, either the generators or the
    // vendored RNG changed behavior, which silently invalidates every
    // recorded experiment result.  Regenerate with `stream_hash` only for an
    // intentional, documented change.
    let golden: &[(Application, u64)] = &[
        (Application::OltpDb2, 0xb49e82debbdbaeee),
        (Application::OltpOracle, 0x3651da0dbb981d55),
        (Application::DssQry1, 0xb038bde79d21dc4a),
        (Application::DssQry2, 0xa606d6820b625421),
        (Application::DssQry16, 0x5697b65326638474),
        (Application::DssQry17, 0x2b5a8f5d1265a6b9),
        (Application::WebApache, 0x2ed996a00550ee5d),
        (Application::WebZeus, 0xeff93d638ec1692b),
        (Application::Em3d, 0x7911901f610c2663),
        (Application::Ocean, 0x179367d198dd7506),
        (Application::Sparse, 0xcf425f782fd6f995),
    ];
    for &(app, expected) in golden {
        let got = stream_hash(app, SEED, 5_000);
        assert_eq!(
            got, expected,
            "{app}: stream hash drifted (got {got:#018x})"
        );
    }
}

/// The SMS job every registry path must reproduce exactly: OLTP/DB2 at seed
/// 2006, two CPUs, the paper-default practical configuration.
fn pinned_sms_job() -> SimJob {
    SimJob::new(memsim::SimJob::synthetic(
        Application::OltpDb2,
        GeneratorConfig::default().with_cpus(CPUS),
        SEED,
        CPUS,
        HierarchyConfig::scaled(),
        PrefetcherSpec::sms_paper_default(),
        ACCESSES,
    ))
}

#[test]
fn registry_built_sms_run_is_pinned() {
    // Golden hash of the serialized run summary of `pinned_sms_job`.  This
    // pins the registry → plugin → SmsPrefetcher build path to the exact
    // simulation behavior of the pre-registry engine (PR 2): if it fails,
    // either the simulator, the generator RNG, or the plugin construction
    // changed behavior.  Regenerate (print `fnv1a` of the summary JSON) only
    // for an intentional, documented change.
    const GOLDEN_SUMMARY_HASH: u64 = 0x2c60632b11e41c1c;

    let results = engine::run_jobs_with(&[pinned_sms_job()], &EngineConfig::serial());
    let json = serde_json::to_string(&results[0].summary).expect("serialize summary");
    let got = fnv1a(json.as_bytes());
    assert_eq!(
        got, GOLDEN_SUMMARY_HASH,
        "registry-built SMS summary drifted (got {got:#018x}; summary {json})"
    );

    // A registry whose "sms" entry was replaced by an externally-registered
    // plugin must reproduce the same bits — plugin identity is behavioral,
    // not nominal.
    let mut registry = Registry::with_builtins();
    let _ = registry.register(std::sync::Arc::new(DelegatingSmsPlugin));
    let custom = engine::run_jobs_in(&[pinned_sms_job()], &EngineConfig::serial(), &registry)
        .expect("custom-registered sms plugin");
    assert_eq!(
        results, custom,
        "a custom-registered SMS plugin must reproduce the built-in bit for bit"
    );
}

/// An externally-registered plugin that builds the same SMS prefetcher the
/// built-in does: exercises the open registration seam end to end.
struct DelegatingSmsPlugin;

impl engine::PrefetcherPlugin for DelegatingSmsPlugin {
    fn name(&self) -> &str {
        "sms"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<engine::BuiltPrefetcher, engine::PluginError> {
        Registry::builtin()
            .get("sms")
            .expect("built-in sms plugin")
            .build(params, num_cpus)
    }
}

/// Property-based byte-identity matrix for speculative segment-parallel
/// execution: random traces x segment sizes (a single access, odd sizes,
/// sizes larger than the whole trace) x worker counts x speculation depths
/// must reproduce the serial `RunSummary` bytes, the pinned golden SMS hash
/// must survive any speculative configuration, and an adversarial
/// forced-mispredict schedule must recover to the serial bytes through the
/// discard-and-replay path.
mod speculative_properties {
    use super::*;
    use engine::SegmentPlan;
    use metrics::MetricsConfig;
    use proptest::prelude::*;

    /// A random job drawn by the strategies below: application, generator
    /// seed, access budget, and one of the three main prefetcher families.
    fn random_job(app_idx: usize, seed: u64, accesses: usize, prefetcher_idx: usize) -> SimJob {
        let app = Application::ALL[app_idx % Application::ALL.len()];
        let prefetcher = match prefetcher_idx % 3 {
            0 => PrefetcherSpec::null(),
            1 => PrefetcherSpec::sms_paper_default(),
            _ => PrefetcherSpec::ghb(&GhbConfig::paper_small()),
        };
        SimJob::new(memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(CPUS),
            seed,
            CPUS,
            HierarchyConfig::scaled(),
            prefetcher,
            accesses,
        ))
    }

    /// Resolves a segment-size choice into the adversarial shapes the matrix
    /// must include: one access per segment, an odd size smaller than the
    /// trace, and a size larger than the whole trace.
    fn segment_size_for(choice: usize, odd: usize, accesses: usize) -> usize {
        match choice % 3 {
            0 => 1,
            1 => (odd | 1).min(accesses.saturating_sub(1).max(1)),
            _ => accesses + 1 + odd,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// The central property: every speculative configuration reproduces
        /// the serial results bit for bit, serialized bytes included.
        #[test]
        fn speculative_runs_reproduce_serial_bits(
            (app_idx, prefetcher_idx) in (0usize..11, 0usize..3),
            seed in 0u64..1_000_000,
            accesses in 500usize..2_500,
            choice in 0usize..3,
            odd in 1usize..3_001,
            workers in 1usize..9,
            depth in 0usize..5,
        ) {
            let job = random_job(app_idx, seed, accesses, prefetcher_idx);
            let serial =
                engine::run_jobs_with(std::slice::from_ref(&job), &EngineConfig::serial());
            let segment_size = segment_size_for(choice, odd, accesses);
            let speculative = engine::run_jobs_with(
                std::slice::from_ref(&job),
                &EngineConfig::with_workers(workers)
                    .with_segment_size(segment_size)
                    .with_speculation(depth),
            );
            prop_assert_eq!(&serial, &speculative);
            let a = serde_json::to_string(&serial).expect("serialize serial");
            let b = serde_json::to_string(&speculative).expect("serialize speculative");
            prop_assert_eq!(a, b);
        }

        /// The adversarial half: a fault-injection schedule forces
        /// verification failures on the speculative path, and the
        /// discard-and-replay recovery still reproduces the serial bytes
        /// while reporting the mispredicts it survived.
        #[test]
        fn forced_mispredicts_recover_to_serial_bits(
            (app_idx, seed) in (0usize..11, 0u64..1_000_000),
            accesses in 1_000usize..3_000,
            segment_size in 100usize..600,
            every in 1u64..4,
            depth in 1usize..5,
        ) {
            // SMS probes are forkable, so the injection schedule always has
            // a rollback point and actually fires.
            let job = random_job(app_idx, seed, accesses, 1);
            let serial =
                engine::run_jobs_with(std::slice::from_ref(&job), &EngineConfig::serial());
            // Injection fires at segment indices `every-1, 2*every-1, ...`;
            // clamp the period to the segment count so at least one fires.
            let segments = accesses.div_ceil(segment_size) as u64;
            let every = every.min(segments);
            let plan = SegmentPlan::new(segment_size, 4)
                .with_speculation(depth)
                .with_mispredict_every(every);
            let (result, job_metrics) = engine::run_job_segmented(
                0,
                &job,
                Registry::builtin(),
                &MetricsConfig::enabled(),
                plan,
            )
            .expect("segmented job runs");
            prop_assert_eq!(&serial[0], &result);
            let a = serde_json::to_string(&serial[0]).expect("serialize serial");
            let b = serde_json::to_string(&result).expect("serialize speculative");
            prop_assert_eq!(a, b);
            prop_assert!(
                job_metrics.spec_mispredicts > 0,
                "fault injection must force at least one failed verification"
            );
            prop_assert!(job_metrics.spec_replayed_accesses > 0);
            prop_assert!(job_metrics.spec_commits > 0);
        }

        /// The pinned golden SMS summary hash survives any speculative
        /// configuration: speculation is an execution strategy, never a
        /// behavior change.
        #[test]
        fn speculative_sms_reproduces_the_pinned_golden_hash(
            workers in 2usize..9,
            segment_size in 1usize..15_000,
            depth in 1usize..5,
        ) {
            const GOLDEN_SUMMARY_HASH: u64 = 0x2c60632b11e41c1c;
            let results = engine::run_jobs_with(
                &[pinned_sms_job()],
                &EngineConfig::with_workers(workers)
                    .with_segment_size(segment_size)
                    .with_speculation(depth),
            );
            let json = serde_json::to_string(&results[0].summary).expect("serialize summary");
            let got = fnv1a(json.as_bytes());
            prop_assert_eq!(
                got,
                GOLDEN_SUMMARY_HASH,
                "workers={} segment_size={} depth={}: speculative SMS summary \
                 drifted from the pinned serial hash (got {:#018x})",
                workers,
                segment_size,
                depth,
                got
            );
        }
    }
}

#[test]
fn file_backed_trace_source_replays_bit_identically() {
    // Record the exact stream a synthetic job consumes, replay it from a
    // binary trace file through the streaming reader, and require the
    // bit-identical summary and probe report.
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let recorded: Vec<_> = Application::OltpDb2
        .stream(SEED, &generator)
        .take(ACCESSES)
        .collect();
    let path = std::env::temp_dir().join(format!(
        "sms-deterministic-replay-{}.trace",
        std::process::id()
    ));
    trace::io::write_binary(std::fs::File::create(&path).expect("temp file"), &recorded)
        .expect("write trace");

    let synthetic = pinned_sms_job();
    let mut replayed = pinned_sms_job();
    replayed.sim.source = TraceSource::binary_file(path.to_string_lossy());

    let a = engine::run_jobs_with(&[synthetic], &EngineConfig::serial());
    let b = engine::run_jobs_in(&[replayed], &EngineConfig::serial(), Registry::builtin())
        .expect("file-backed job");
    std::fs::remove_file(&path).ok();

    assert_eq!(a[0].summary.accesses, ACCESSES as u64);
    let a_json = serde_json::to_string(&a).expect("serialize");
    let b_json = serde_json::to_string(&b).expect("serialize");
    assert_eq!(
        a_json, b_json,
        "file replay must be byte-identical to the synthetic path"
    );
}
