//! Deterministic-replay regression tests: the trace generators and the cache
//! simulator are pinned to exact, platform-independent behavior.  The same
//! `GeneratorConfig` seed must produce a byte-identical `RunSummary` for every
//! application, the raw access streams themselves are pinned with golden
//! hashes so that any accidental change to the generator RNG (or to the order
//! in which generators consume random draws) is caught immediately, and the
//! parallel engine must reproduce the serial path bit for bit.

use engine::{EngineConfig, PrefetcherSpec, SimJob};
use ghb::GhbConfig;
use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, RunSummary};
use sms::SmsConfig;
use timing::TimingConfig;
use trace::{AccessKind, Application, GeneratorConfig};

const CPUS: usize = 2;
const SEED: u64 = 2006;
const ACCESSES: usize = 10_000;

fn run_baseline(app: Application) -> RunSummary {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
    let mut stream = app.stream(SEED, &generator);
    memsim::run(
        &mut system,
        &mut NullPrefetcher::new(),
        &mut stream,
        ACCESSES,
    )
}

/// FNV-1a over the first `n` accesses of an application's stream.
fn stream_hash(app: Application, seed: u64, n: usize) -> u64 {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for access in app.stream(seed, &generator).take(n) {
        fnv(access.cpu);
        for b in access.pc.to_le_bytes() {
            fnv(b);
        }
        for b in access.addr.to_le_bytes() {
            fnv(b);
        }
        fnv(match access.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    hash
}

#[test]
fn same_seed_gives_byte_identical_summaries() {
    for app in Application::ALL {
        let first = run_baseline(app);
        let second = run_baseline(app);
        assert_eq!(first, second, "{app}: summaries must be identical");
        // Byte-identical, not merely `==`: serialize both and compare text.
        let a = serde_json::to_string(&first).expect("serialize");
        let b = serde_json::to_string(&second).expect("serialize");
        assert_eq!(a, b, "{app}: serialized summaries must match byte for byte");
    }
}

/// A mixed job list exercising every execution path of the engine: plain
/// baselines, SMS, GHB, a density probe, and a timing-model job.
fn engine_job_list() -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (i, app) in [
        Application::OltpDb2,
        Application::DssQry1,
        Application::WebApache,
        Application::Ocean,
        Application::Sparse,
    ]
    .into_iter()
    .enumerate()
    {
        let base = memsim::SimJob {
            app,
            generator: GeneratorConfig::default().with_cpus(CPUS),
            seed: SEED + i as u64,
            cpus: CPUS,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::Null,
            accesses: ACCESSES,
        };
        jobs.push(SimJob::new(base.clone()));
        jobs.push(SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::Sms(SmsConfig::paper_default()),
            ..base.clone()
        }));
        jobs.push(SimJob::new(memsim::SimJob {
            prefetcher: PrefetcherSpec::Ghb(GhbConfig::paper_small()),
            ..base.clone()
        }));
        jobs.push(
            SimJob::new(memsim::SimJob {
                prefetcher: PrefetcherSpec::Sms(SmsConfig::paper_default()),
                ..base
            })
            .with_timing(TimingConfig::table1(), 8),
        );
    }
    jobs
}

#[test]
fn parallel_engine_matches_serial_bit_for_bit() {
    let jobs = engine_job_list();
    let serial = engine::run_jobs_with(&jobs, &EngineConfig::serial());
    let parallel = engine::run_jobs_with(&jobs, &EngineConfig::with_workers(4));
    assert_eq!(serial.len(), jobs.len());
    assert_eq!(
        serial, parallel,
        "4-worker engine results must be bit-identical to the serial path"
    );
    // Byte-identical, not merely `==`: serialize both result lists.
    let a = serde_json::to_string(&serial).expect("serialize serial");
    let b = serde_json::to_string(&parallel).expect("serialize parallel");
    assert_eq!(a, b, "serialized results must match byte for byte");
    for (i, result) in serial.iter().enumerate() {
        assert_eq!(result.job_index, i, "results must come back in job order");
        // Well-formed jobs pair generator and system CPU counts, so the
        // engine must never silently drop accesses.
        assert_eq!(
            result.summary.skipped_accesses, 0,
            "job {i} silently skipped accesses"
        );
    }
}

#[test]
fn different_seeds_give_different_streams() {
    for app in Application::ALL {
        assert_ne!(
            stream_hash(app, 1, 2_000),
            stream_hash(app, 2, 2_000),
            "{app}: different seeds must not collide"
        );
    }
}

#[test]
fn generator_rng_behavior_is_pinned() {
    // Golden hashes of the first 5000 accesses of every application at seed
    // 2006 with two CPUs.  These values pin the exact RNG draw sequence of
    // the trace generators: if this test fails, either the generators or the
    // vendored RNG changed behavior, which silently invalidates every
    // recorded experiment result.  Regenerate with `stream_hash` only for an
    // intentional, documented change.
    let golden: &[(Application, u64)] = &[
        (Application::OltpDb2, 0xb49e82debbdbaeee),
        (Application::OltpOracle, 0x3651da0dbb981d55),
        (Application::DssQry1, 0xb038bde79d21dc4a),
        (Application::DssQry2, 0xa606d6820b625421),
        (Application::DssQry16, 0x5697b65326638474),
        (Application::DssQry17, 0x2b5a8f5d1265a6b9),
        (Application::WebApache, 0x2ed996a00550ee5d),
        (Application::WebZeus, 0xeff93d638ec1692b),
        (Application::Em3d, 0x7911901f610c2663),
        (Application::Ocean, 0x179367d198dd7506),
        (Application::Sparse, 0xcf425f782fd6f995),
    ];
    for &(app, expected) in golden {
        let got = stream_hash(app, SEED, 5_000);
        assert_eq!(
            got, expected,
            "{app}: stream hash drifted (got {got:#018x})"
        );
    }
}
