//! Cross-crate invariants checked with property-based testing: the cache
//! simulator, the predictors and the coverage accounting must agree with each
//! other on randomly generated inputs, not just on the curated workloads.

use memsim::{CacheConfig, HierarchyConfig, MultiCpuSystem, NullPrefetcher};
use proptest::prelude::*;
use sms::{
    ActiveGenerationTable, AgtConfig, RegionConfig, SmsConfig, SmsPrefetcher, SpatialPattern,
};
use trace::{AccessKind, MemAccess};

/// Strategy producing a short random access trace confined to a small address
/// space so that conflicts, evictions and sharing all occur.
fn trace_strategy(cpus: u8) -> impl Strategy<Value = Vec<MemAccess>> {
    proptest::collection::vec(
        (
            0..cpus,
            0u64..64,        // pc index
            0u64..(1 << 16), // address within 64 KiB
            proptest::bool::weighted(0.2),
        )
            .prop_map(|(cpu, pc, addr, is_write)| MemAccess {
                cpu,
                pc: 0x4000 + pc * 8,
                addr,
                kind: if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }),
        1..400,
    )
}

fn tiny_hierarchy() -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig::new(2 * 1024, 2, 64),
        l2: CacheConfig::new(8 * 1024, 4, 64),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache-statistics identities hold on arbitrary traces.
    #[test]
    fn run_summary_identities(trace in trace_strategy(2)) {
        let mut system = MultiCpuSystem::new(2, &tiny_hierarchy());
        let mut prefetcher = NullPrefetcher::new();
        let n = trace.len();
        let summary = memsim::run(&mut system, &mut prefetcher, &mut trace.into_iter(), n);
        prop_assert_eq!(summary.accesses, n as u64);
        prop_assert_eq!(summary.l1.reads + summary.l1.writes, summary.l1.accesses);
        prop_assert_eq!(summary.l1.read_misses + summary.l1.write_misses, summary.l1.misses);
        prop_assert!(summary.l1.misses <= summary.l1.accesses);
        // Without a prefetcher there can be no prefetch activity.
        prop_assert_eq!(summary.l1.prefetch_hits, 0);
        prop_assert_eq!(summary.prefetch_requests, 0);
        // The L2 only sees L1 misses.
        prop_assert!(summary.l2.accesses <= summary.l1.misses);
        // Read miss classification covers every L1 read miss.
        prop_assert_eq!(summary.l1_breakdown.total(), summary.l1.read_misses);
    }

    /// Attaching SMS never changes how much work is simulated, and its
    /// coverage accounting stays within bounds.
    #[test]
    fn sms_preserves_work_and_bounds(trace in trace_strategy(2)) {
        let n = trace.len();
        let mut base_sys = MultiCpuSystem::new(2, &tiny_hierarchy());
        let baseline = memsim::run(
            &mut base_sys,
            &mut NullPrefetcher::new(),
            &mut trace.clone().into_iter(),
            n,
        );
        let mut sms_sys = MultiCpuSystem::new(2, &tiny_hierarchy());
        let mut sms = SmsPrefetcher::new(2, &SmsConfig::paper_default());
        let with = memsim::run(&mut sms_sys, &mut sms, &mut trace.into_iter(), n);
        prop_assert_eq!(baseline.accesses, with.accesses);
        prop_assert_eq!(baseline.l1.reads, with.l1.reads);
        // Demand misses eliminated can never exceed the useful prefetches
        // (plus a small slack for second-order replacement-order effects).
        let covered = baseline.l1.read_misses as i64 - with.l1.read_misses as i64;
        prop_assert!(covered <= with.l1.prefetch_hits as i64 + 8);
    }

    /// AGT generations never record blocks outside their region and always
    /// contain the trigger block.
    #[test]
    fn agt_patterns_stay_in_region(offsets in proptest::collection::vec(0u32..32, 2..20)) {
        let region = RegionConfig::paper_default();
        let mut agt = ActiveGenerationTable::new(region, AgtConfig::unbounded());
        let base = 0x8_0000u64;
        for (i, &o) in offsets.iter().enumerate() {
            agt.record_access(base + u64::from(o) * 64, 0x4000 + i as u64);
        }
        let trained = agt.end_generation(base + u64::from(offsets[0]) * 64);
        if offsets.iter().any(|&o| o != offsets[0]) {
            let trained = trained.expect("two distinct blocks must train");
            prop_assert!(trained.pattern.get(trained.trigger_offset));
            prop_assert_eq!(trained.trigger_offset, offsets[0]);
            for o in trained.pattern.iter_set() {
                prop_assert!(offsets.contains(&o));
            }
            // Every accessed offset is recorded.
            for &o in &offsets {
                prop_assert!(trained.pattern.get(o));
            }
        } else {
            prop_assert!(trained.is_none());
        }
    }

    /// Spatial patterns round-trip through offset lists.
    #[test]
    fn pattern_offset_round_trip(offsets in proptest::collection::vec(0u32..128, 0..64)) {
        let pattern = SpatialPattern::from_offsets(128, &offsets);
        let mut expected: Vec<u32> = offsets.clone();
        expected.sort_unstable();
        expected.dedup();
        let got: Vec<u32> = pattern.iter_set().collect();
        prop_assert_eq!(got, expected);
    }
}
