//! The Chrome-trace export must be structurally valid and must actually
//! account for the run it claims to describe: for a segmented job the stage
//! spans have to cover (nearly) all of the job's measured wall-clock, the
//! speculative path has to leave its speculation markers, and the job
//! server has to record the full submission lifecycle.

use engine::{EngineConfig, JobList, PrefetcherSpec, Registry, SimJob};
use memsim::HierarchyConfig;
use metrics::{MetricsConfig, Stopwatch};
use sms::SmsConfig;
use trace::{Application, GeneratorConfig};
use tracelog::{check_chrome_trace, span_total_us, Trace};

const CPUS: usize = 2;
const SEED: u64 = 2006;
const ACCESSES: usize = 60_000;
const SEGMENT: usize = 6_000;

fn sms_job() -> SimJob {
    SimJob::new(memsim::SimJob::synthetic(
        Application::OltpDb2,
        GeneratorConfig::default().with_cpus(CPUS),
        SEED,
        CPUS,
        HierarchyConfig::scaled(),
        PrefetcherSpec::sms(&SmsConfig::paper_default()),
        ACCESSES,
    ))
}

#[test]
fn segmented_job_spans_cover_the_measured_wall_clock() {
    let jobs = vec![sms_job()];
    let config = EngineConfig::serial().with_segment_size(SEGMENT);
    let trace = Trace::enabled();
    let watch = Stopwatch::started();
    let (results, _) = engine::run_jobs_observed(
        &jobs,
        &config,
        Registry::builtin(),
        &MetricsConfig::disabled(),
        &trace,
    )
    .expect("job prepares");
    let wall_us = (watch.elapsed_seconds() * 1e6) as u64;
    assert_eq!(results.len(), 1);

    let chrome = trace.to_chrome_json().expect("enabled trace exports");
    let check = check_chrome_trace(&chrome, &["job", "seg.pull", "seg.simulate", "seg.account"])
        .expect("valid chrome trace");
    assert_eq!(check.dropped, 0, "one job must not overflow the ring");
    assert!(
        check.spans as u64 > 3 * (ACCESSES / SEGMENT) as u64,
        "one job span plus three stage spans per segment, got {}",
        check.spans
    );

    // The job span accounts for the run's wall-clock, and the prepare /
    // stage / finalize spans account for the job span: tracing that loses
    // more than 5% of the time it claims to observe is not worth reading.
    let job_us = span_total_us(&chrome, "job").expect("job span");
    let stage_us = span_total_us(&chrome, "job.prepare").expect("prepare span")
        + span_total_us(&chrome, "seg.pull").expect("pull spans")
        + span_total_us(&chrome, "seg.simulate").expect("simulate spans")
        + span_total_us(&chrome, "seg.account").expect("account spans")
        + span_total_us(&chrome, "job.finalize").expect("finalize span");
    assert!(
        job_us as f64 >= 0.95 * wall_us as f64,
        "job span covers {job_us} of {wall_us} measured us"
    );
    assert!(
        stage_us as f64 >= 0.95 * job_us as f64,
        "stage spans cover {stage_us} of {job_us} job us"
    );
}

#[test]
fn speculative_run_records_speculation_markers() {
    let jobs = vec![sms_job()];
    let config = EngineConfig::with_workers(4)
        .with_segment_size(SEGMENT)
        .with_speculation(2);
    let trace = Trace::enabled();
    let (results, _) = engine::run_jobs_observed(
        &jobs,
        &config,
        Registry::builtin(),
        &MetricsConfig::disabled(),
        &trace,
    )
    .expect("job prepares");
    assert_eq!(results.len(), 1);

    let chrome = trace.to_chrome_json().expect("enabled trace exports");
    let check = check_chrome_trace(&chrome, &["job", "seg.pull", "seg.speculate"])
        .expect("valid chrome trace");
    assert!(check.spans > 0);
    // Commits are instants, not spans, so they are asserted on the document
    // text rather than the span-name set.
    assert!(
        chrome.contains("\"spec.commit\""),
        "a speculative run must commit at least one verified segment"
    );
}

#[test]
fn server_trace_records_the_submission_lifecycle() {
    let socket = std::env::temp_dir().join(format!("sms-trace-{}.sock", std::process::id()));
    let trace = Trace::enabled();
    let server = server::Server::start(server::ServerConfig {
        unix_socket: Some(socket.clone()),
        trace: trace.clone(),
        ..server::ServerConfig::default()
    })
    .expect("server starts");
    let endpoint = server::Endpoint::Unix(socket);
    let list = JobList::new(vec![sms_job()]);
    let options = server::SubmitOptions::default();

    let cold = server::client::submit(&endpoint, &list, &options, &mut |_| {})
        .expect("cold submission succeeds");
    assert!(!cold.done.cache_hit);
    let replay = server::client::submit(&endpoint, &list, &options, &mut |_| {})
        .expect("identical resubmission succeeds");
    assert!(replay.done.cache_hit, "second submission replays the cache");

    server::client::shutdown(&endpoint).expect("shutdown");
    let metrics = server.wait();
    assert_eq!(metrics.submissions, 2);

    let chrome = trace.to_chrome_json().expect("enabled trace exports");
    let check = check_chrome_trace(&chrome, &["submission", "submit.accept", "submit.stream"])
        .expect("valid chrome trace");
    assert!(check.spans >= 5, "accept + stream per submission + one run");
    assert!(
        chrome.contains("\"cache.miss\"") && chrome.contains("\"cache.hit\""),
        "both cache outcomes leave their instants"
    );
    assert!(
        chrome.contains("\"queue_depth\""),
        "queue depth is recorded as a counter"
    );
}
