//! The deterministic chaos harness: seeded fault plans driven through a
//! live in-process server.
//!
//! Every case pins the same three properties of the fault-tolerant serving
//! stack:
//!
//! 1. **the server never hangs or dies** — after every injected fault the
//!    same server instance answers a healthy follow-up submission;
//! 2. **every fault surfaces as a stable structured error** — a pinned
//!    `ErrorFrame` code, never a hangup or a panic;
//! 3. **non-faulted work is unaffected** — the delivered result prefix is
//!    byte-identical to a direct serial engine run of the same jobs.
//!
//! Determinism is the point: fault plans are drawn from seeded ChaCha
//! ([`faultinject::FaultPlan`]), so a failure here is a constant to bisect,
//! not a flake to shrug at.

use engine::{EngineConfig, JobList, PrefetcherSpec, Registry, SimJob};
use faultinject::{Fault, FaultPlan};
use memsim::HierarchyConfig;
use server::{client, Endpoint, ErrorFrame, Server, ServerConfig, SubmitOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trace::{Application, GeneratorConfig};

/// Applications rotated across a plan's jobs so the matrix is not one
/// workload eight times.
const APPS: [Application; 4] = [
    Application::OltpDb2,
    Application::Ocean,
    Application::Sparse,
    Application::DssQry1,
];

fn unique_socket(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "sms-chaos-{tag}-{}-{}.sock",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn job(index: usize, prefetcher: PrefetcherSpec, accesses: usize) -> SimJob {
    SimJob::new(memsim::SimJob::synthetic(
        APPS[index % APPS.len()],
        GeneratorConfig::default().with_cpus(2),
        2006 + index as u64,
        2,
        HierarchyConfig::scaled(),
        prefetcher,
        accesses,
    ))
}

/// The job list a fault plan describes: one job per fault, in order.
fn plan_jobs(plan: &FaultPlan, accesses: usize) -> JobList {
    JobList::new(
        plan.faults
            .iter()
            .enumerate()
            .map(|(index, fault)| job(index, fault.spec(), accesses))
            .collect(),
    )
}

fn start_chaos_server(tag: &str) -> (Server, Endpoint) {
    let socket = unique_socket(tag);
    let server = Server::start(ServerConfig {
        unix_socket: Some(socket.clone()),
        registry: Some(Arc::new(faultinject::registry())),
        ..ServerConfig::default()
    })
    .expect("chaos server starts");
    (server, Endpoint::Unix(socket))
}

/// A healthy two-job submission the server must answer after every fault.
fn healthy_list(tag: u64) -> JobList {
    JobList::new(vec![
        job(0, PrefetcherSpec::null(), 1_000 + tag as usize),
        job(1, PrefetcherSpec::sms_paper_default(), 1_000 + tag as usize),
    ])
}

fn assert_server_answers(endpoint: &Endpoint, tag: u64) {
    let outcome = client::submit(
        endpoint,
        &healthy_list(tag),
        &SubmitOptions::default(),
        &mut |_| {},
    )
    .expect("server must answer a healthy submission after a fault");
    assert_eq!(outcome.frames.len(), 2);
}

#[test]
fn seeded_panic_plans_fail_cleanly_and_leave_the_prefix_intact() {
    let (server, endpoint) = start_chaos_server("panics");
    let registry = faultinject::registry();
    for seed in [11u64, 12, 13] {
        let mut plan = FaultPlan::generate(seed, 6, 0.4, 0.2);
        // Guarantee the case under test even for a seed that rolled clean.
        if plan.first_panicking_job().is_none() {
            let slot = (seed as usize) % plan.faults.len();
            plan.faults[slot] = Fault::Panic { after: 3 };
        }
        let first_panic = plan.first_panicking_job().expect("plan has a panic");
        let list = plan_jobs(&plan, 2_000);

        // Serial, in-order execution makes the delivered prefix exact.
        let options = SubmitOptions {
            client: format!("chaos-{seed}"),
            workers: 1,
            ..SubmitOptions::default()
        };
        let mut streamed = Vec::new();
        let err = client::submit(&endpoint, &list, &options, &mut |frame| {
            streamed.push(frame.result.clone());
        })
        .expect_err("a panicking job must fail the submission");
        match err {
            client::ClientError::Server(frame) => {
                assert_eq!(frame.code, ErrorFrame::ENGINE, "seed {seed}");
                assert!(
                    frame.message.contains(&format!(
                        "job {first_panic}: panicked: injected chaos panic"
                    )),
                    "seed {seed}: {}",
                    frame.message
                );
            }
            other => panic!("seed {seed}: expected structured error, got {other:?}"),
        }

        // The delivered prefix is byte-identical to a direct serial run of
        // the same (non-faulted) jobs.
        let prefix = &list.jobs[..first_panic];
        let direct = engine::run_jobs_in(prefix, &EngineConfig::serial(), &registry)
            .expect("prefix jobs are healthy");
        let direct_json = serde_json::to_string(&direct).unwrap();
        let served_json = serde_json::to_string(&streamed).unwrap();
        assert_eq!(served_json, direct_json, "seed {seed}: prefix must match");

        // Property 1: the same server answers the next healthy client.
        assert_server_answers(&endpoint, seed);
    }
    let metrics = server.shutdown();
    assert!(metrics.report().validate().is_ok());
}

#[test]
fn delay_faults_slow_jobs_down_but_corrupt_nothing() {
    let (server, endpoint) = start_chaos_server("delays");
    let registry = faultinject::registry();
    let plan = FaultPlan::generate(21, 4, 0.0, 0.75);
    let list = plan_jobs(&plan, 2_000);

    let outcome = client::submit(&endpoint, &list, &SubmitOptions::default(), &mut |_| {})
        .expect("delayed jobs still complete");
    let direct =
        engine::run_jobs_in(&list.jobs, &EngineConfig::serial(), &registry).expect("direct run");
    let direct_json = serde_json::to_string(&direct).unwrap();
    let served: Vec<engine::JobResult> = outcome.frames.iter().map(|f| f.result.clone()).collect();
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        direct_json,
        "a fault that only sleeps must not change a byte"
    );
    assert_server_answers(&endpoint, 21);
    server.shutdown();
}

#[test]
fn delay_faults_plus_a_deadline_get_deadline_exceeded_not_a_hang() {
    let (server, endpoint) = start_chaos_server("deadline");
    // Every access sleeps: ~100 ms per job, far over a 40 ms deadline.
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            Fault::Delay {
                every: 1,
                micros: 50,
            };
            6
        ],
    };
    let list = plan_jobs(&plan, 2_000);
    let options = SubmitOptions {
        workers: 1,
        timeout_ms: 40,
        ..SubmitOptions::default()
    };
    let err = client::submit(&endpoint, &list, &options, &mut |_| {})
        .expect_err("the deadline must fire");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::DEADLINE_EXCEEDED)
        }
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    assert_server_answers(&endpoint, 40);
    let metrics = server.shutdown();
    assert_eq!(metrics.deadline_cancellations, 1);
}

#[test]
fn corrupt_trace_files_are_structured_engine_errors() {
    let (server, endpoint) = start_chaos_server("trace");
    let path = std::env::temp_dir().join(format!("sms-chaos-corrupt-{}.bin", std::process::id()));
    faultinject::write_corrupt_trace(&path).expect("write corrupt trace");

    let mut bad_job = job(0, PrefetcherSpec::null(), 2_000);
    bad_job.sim.source = trace::TraceSource::binary_file(path.to_string_lossy());
    let list = JobList::new(vec![job(1, PrefetcherSpec::null(), 2_000), bad_job]);

    let options = SubmitOptions {
        workers: 1,
        ..SubmitOptions::default()
    };
    let mut streamed = 0usize;
    let err = client::submit(&endpoint, &list, &options, &mut |_| {
        streamed += 1;
    })
    .expect_err("unreadable trace must fail the submission");
    match err {
        client::ClientError::Server(frame) => {
            assert_eq!(frame.code, ErrorFrame::ENGINE);
            assert!(frame.message.contains("job 1"), "{}", frame.message);
        }
        other => panic!("expected structured engine error, got {other:?}"),
    }
    assert_eq!(streamed, 1, "the healthy job's result streams first");
    std::fs::remove_file(&path).ok();
    assert_server_answers(&endpoint, 7);
    server.shutdown();
}

#[test]
fn dropped_connections_cancel_cleanly_and_the_server_keeps_serving() {
    use server::{Frame, Request, SubmitRequest};
    use std::io::BufReader;
    use std::os::unix::net::UnixStream;

    let (server, endpoint) = start_chaos_server("drop");
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    // Slow delay jobs so the run is mid-flight when the client vanishes.
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            Fault::Delay {
                every: 1,
                micros: 100,
            };
            8
        ],
    };
    let request = Request::Submit(SubmitRequest {
        client: "vanishing".to_string(),
        priority: 0,
        workers: 1,
        segment_size: 0,
        speculate: 0,
        timeout_ms: None,
        spec: serde_json::to_value(&plan_jobs(&plan, 3_000)).unwrap(),
    });
    let mut stream = UnixStream::connect(path).expect("connect");
    server::protocol::write_line(&mut stream, &request).expect("send");
    let mut reader = BufReader::new(stream);
    let accepted: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("accepted");
    assert!(matches!(accepted, Frame::Accepted(_)));
    let first: Frame = server::protocol::read_line(&mut reader)
        .expect("read")
        .expect("first result");
    assert!(matches!(first, Frame::Result(_)));
    drop(reader); // vanish mid-stream

    // The server notices, cancels, and keeps serving — no hang, no death.
    assert_server_answers(&endpoint, 3);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let metrics = server.metrics();
        if metrics.disconnect_cancellations >= 1 && metrics.running == 0 {
            assert!(metrics.jobs_served < 8 + 2, "run was cut short");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for the disconnect cancellation"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    server.shutdown();
}

#[test]
fn an_idle_chaos_registry_changes_no_bytes() {
    // The fault seams are zero-cost when unused: the same healthy jobs run
    // byte-identically whether or not the chaos plugin is registered.
    let list = healthy_list(0);
    let config = EngineConfig::with_workers(2);
    let with_builtins =
        engine::run_jobs_in(&list.jobs, &config, Registry::builtin()).expect("builtin run");
    let with_chaos = engine::run_jobs_in(&list.jobs, &config, &faultinject::registry())
        .expect("chaos-registry run");
    assert_eq!(
        serde_json::to_string(&with_builtins).unwrap(),
        serde_json::to_string(&with_chaos).unwrap(),
        "registering the chaos plugin must not perturb healthy runs"
    );
}
