//! End-to-end integration tests: every application of the suite runs through
//! the full stack (generator -> cache system -> SMS predictor -> coverage
//! accounting) and produces sane, reproducible results.

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, RunSummary};
use sms::{CoverageLevel, CoverageStats, OracleObserver, RegionConfig, SmsConfig, SmsPrefetcher};
use trace::{Application, GeneratorConfig};

const CPUS: usize = 2;
const ACCESSES: usize = 25_000;
const SEED: u64 = 99;

fn baseline(app: Application) -> RunSummary {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
    let mut stream = app.stream(SEED, &generator);
    memsim::run(
        &mut system,
        &mut NullPrefetcher::new(),
        &mut stream,
        ACCESSES,
    )
}

fn with_sms(app: Application) -> RunSummary {
    let generator = GeneratorConfig::default().with_cpus(CPUS);
    let mut system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
    let mut sms = SmsPrefetcher::new(CPUS, &SmsConfig::paper_default());
    let mut stream = app.stream(SEED, &generator);
    memsim::run(&mut system, &mut sms, &mut stream, ACCESSES)
}

#[test]
fn every_application_runs_and_sms_covers_misses() {
    for app in Application::ALL {
        let base = baseline(app);
        assert_eq!(base.accesses, ACCESSES as u64, "{app}: wrong access count");
        debug_assert_eq!(
            base.skipped_accesses, 0,
            "{app}: no access may be silently dropped"
        );
        assert!(base.l1.read_misses > 0, "{app}: baseline must miss");

        let sms = with_sms(app);
        let cov = CoverageStats::from_runs(&base, &sms, CoverageLevel::L1);
        assert!(
            cov.coverage() > 0.05,
            "{app}: SMS should cover at least a few percent of L1 misses (got {:.3})",
            cov.coverage()
        );
        assert!(
            cov.coverage() <= 1.0 + 1e-9,
            "{app}: coverage cannot exceed 100%"
        );
    }
}

#[test]
fn baseline_runs_are_deterministic() {
    let a = baseline(Application::WebZeus);
    let b = baseline(Application::WebZeus);
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn sms_runs_are_deterministic() {
    let a = with_sms(Application::OltpOracle);
    let b = with_sms(Application::OltpOracle);
    assert_eq!(a, b);
}

#[test]
fn oracle_opportunity_bounds_real_coverage() {
    // The oracle's miss reduction (one miss per generation) is an upper bound
    // on what any real spatial predictor at the same region size can achieve.
    for app in [
        Application::OltpDb2,
        Application::DssQry2,
        Application::Sparse,
    ] {
        let generator = GeneratorConfig::default().with_cpus(CPUS);
        let mut system = MultiCpuSystem::new(CPUS, &HierarchyConfig::scaled());
        let mut oracle = OracleObserver::new(CPUS, RegionConfig::paper_default(), true);
        let mut stream = app.stream(SEED, &generator);
        let base = memsim::run(&mut system, &mut oracle, &mut stream, ACCESSES);

        let sms = with_sms(app);
        let cov = CoverageStats::from_runs(&base, &sms, CoverageLevel::L1);
        let opportunity = oracle.l1().opportunity_fraction();
        assert!(
            cov.coverage() <= opportunity + 0.05,
            "{app}: SMS coverage {:.3} exceeds oracle opportunity {:.3}",
            cov.coverage(),
            opportunity
        );
    }
}

#[test]
fn sms_write_traffic_is_accounted() {
    // Stream requests are read requests; they must never increase the demand
    // write miss count.
    let base = baseline(Application::DssQry1);
    let sms = with_sms(Application::DssQry1);
    assert!(sms.l1.write_misses <= base.l1.write_misses + base.l1.write_misses / 10 + 16);
}

#[test]
fn off_chip_misses_are_a_subset_of_l1_misses() {
    for app in [Application::WebApache, Application::Em3d] {
        let base = baseline(app);
        assert!(base.l2.read_misses <= base.l1.read_misses);
        assert!(base.l2.accesses <= base.l1.misses);
    }
}
