//! Integration tests over the experiment runners: each figure's result must
//! be internally consistent (fractions bounded, series complete, qualitative
//! orderings from the paper preserved).

use experiments::common::ExperimentConfig;
use experiments::{
    fig05_density, fig06_indexing, fig10_region_size, fig11_ghb_comparison, fig12_speedup,
};
use sms::IndexScheme;
use trace::{Application, ApplicationClass};

fn tiny() -> ExperimentConfig {
    ExperimentConfig::tiny()
}

#[test]
fn fig5_density_fractions_are_well_formed() {
    let result = fig05_density::run(&tiny(), &[Application::OltpDb2, Application::Sparse]);
    for entry in &result.per_app {
        for hist in [&entry.l1, &entry.l2] {
            let fractions = hist.fractions();
            assert!(fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
            let sum: f64 = fractions.iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn fig6_pc_offset_is_best_or_close_everywhere() {
    let result = fig06_indexing::run(&tiny(), true);
    for class in ApplicationClass::ALL {
        let pc_off = fig06_indexing::coverage_of(&result, class, IndexScheme::PcOffset);
        for scheme in IndexScheme::ALL {
            let other = fig06_indexing::coverage_of(&result, class, scheme);
            assert!(
                pc_off >= other - 0.15,
                "{class}: PC+offset ({pc_off:.2}) should be competitive with {} ({other:.2})",
                scheme.label()
            );
        }
    }
}

#[test]
fn fig10_has_a_point_for_every_class_and_size() {
    let result = fig10_region_size::run(&tiny(), true);
    assert_eq!(
        result.points.len(),
        ApplicationClass::ALL.len() * fig10_region_size::REGION_SIZES.len()
    );
    for p in &result.points {
        assert!(p.coverage >= -1.0 && p.coverage <= 1.0);
    }
}

#[test]
fn fig11_sms_is_competitive_with_ghb_on_average() {
    let apps = [
        Application::OltpDb2,
        Application::DssQry2,
        Application::Ocean,
    ];
    let result = fig11_ghb_comparison::run(&tiny(), &apps);
    let mean = |p: fig11_ghb_comparison::Fig11Prefetcher| {
        apps.iter()
            .map(|&a| fig11_ghb_comparison::coverage_of(&result, a, p))
            .sum::<f64>()
            / apps.len() as f64
    };
    let sms = mean(fig11_ghb_comparison::Fig11Prefetcher::Sms);
    let ghb = mean(fig11_ghb_comparison::Fig11Prefetcher::Ghb16k);
    assert!(
        sms > ghb - 0.05,
        "SMS mean off-chip coverage ({sms:.2}) should not trail GHB-16k ({ghb:.2})"
    );
}

#[test]
fn fig12_speedups_are_positive_and_bounded() {
    let result = fig12_speedup::run(&tiny(), &[Application::Sparse, Application::WebApache]);
    for p in &result.points {
        assert!(
            p.aggregate > 0.5 && p.aggregate < 20.0,
            "{}: {}",
            p.app,
            p.aggregate
        );
        assert!(p.speedup.half_width >= 0.0);
        assert!(p.speedup.low() <= p.speedup.mean && p.speedup.mean <= p.speedup.high());
    }
    assert!(result.geometric_mean > 0.9);
}
