//! The serializable report envelope shared by every telemetry producer.

use serde::{Deserialize, Serialize};

/// A self-describing telemetry report: a schema version for the envelope, a
/// stable `kind` tag naming the payload schema, and the kind-specific
/// payload.
///
/// This mirrors the engine's open `ProbeReport {kind, data}` design so
/// external tooling reads one shape everywhere: per-run engine metrics
/// (`kind: "engine-run"`), the bench pipeline's `BENCH_*.json`
/// (`kind: "bench"`), and any report a future producer defines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Version of this envelope (`kind` + `data`) format itself.
    pub schema_version: u32,
    /// Stable tag naming the payload schema.
    pub kind: String,
    /// Kind-specific payload.
    pub data: serde_json::Value,
}

impl MetricsReport {
    /// Current envelope schema version.
    ///
    /// History: **1** — PR 4 (first envelopes: `engine-run`, `bench`);
    /// **2** — PR 5 (bench payloads gained required segment-parallel and
    /// warm-up fields, and the `bench-diff` kind was added);
    /// **3** — PR 6 (bench payloads gained required speculative-run fields
    /// and the recorded speculation depth);
    /// **4** — PR 7 (bench payloads gained the required per-figure
    /// `parallel_spread` sample-spread field and the recorded `repeats`
    /// count from `bench --repeat`);
    /// **5** — PR 8 (bench payloads gained required served-through-a-local-
    /// server columns — cold round trip and cache-hit replay — and the
    /// `server` kind was added for the job server's counters).  An
    /// old-versioned `BENCH_*.json` must fail validation with this version
    /// error rather than a confusing field-level decode error;
    /// `bench --against` still *reads* old reports leniently for throughput
    /// comparison;
    /// **6** — PR 9 (log2-bucketed [`crate::Histogram`]s joined the
    /// payloads: `engine-run` job entries gained per-stage segment-latency
    /// histograms, the `server` kind gained cache-eviction/byte counters, a
    /// running-jobs gauge, per-client quota usage and a queue-wait
    /// histogram, and bench figures gained per-configuration warm-up
    /// wall-clock fields).
    pub const SCHEMA_VERSION: u32 = 6;

    /// A report of the given kind carrying `payload` serialized as JSON.
    pub fn new<T: Serialize + ?Sized>(kind: &str, payload: &T) -> Self {
        Self {
            schema_version: Self::SCHEMA_VERSION,
            kind: kind.to_string(),
            data: serde_json::to_value(payload).expect("value-tree serialization cannot fail"),
        }
    }

    /// Decodes the payload as `T` if this report has the given kind.
    ///
    /// A kind mismatch yields `None`; a matching kind whose payload fails to
    /// decode is reported as an error (the report is corrupt, not merely of
    /// another kind).
    ///
    /// # Errors
    ///
    /// The deserialization failure message when the kind matches but the
    /// payload does not decode as `T`.
    pub fn decode<T: Deserialize>(&self, kind: &str) -> Result<Option<T>, String> {
        if self.kind != kind {
            return Ok(None);
        }
        serde_json::from_value(&self.data)
            .map(Some)
            .map_err(|e| format!("report kind {kind:?}: payload failed to decode: {e}"))
    }

    /// Validates the envelope itself: a supported schema version, a
    /// non-empty kind, and a non-null payload.
    ///
    /// Payload schemas validate themselves (e.g. the bench report's own
    /// `validate`); this only guards the envelope contract that external
    /// tooling relies on.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported metrics schema version {} (this build reads version {})",
                self.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        if self.kind.is_empty() {
            return Err("metrics report kind must not be empty".to_string());
        }
        if self.data == serde_json::Value::Null {
            return Err(format!("metrics report {:?} has no payload", self.kind));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Payload {
        events: u64,
        rate: f64,
    }

    fn sample() -> MetricsReport {
        MetricsReport::new(
            "test",
            &Payload {
                events: 7,
                rate: 3.5,
            },
        )
    }

    #[test]
    fn round_trips_and_validates() {
        let report = sample();
        assert!(report.validate().is_ok());
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let payload: Payload = back.decode("test").unwrap().expect("matching kind");
        assert_eq!(payload.events, 7);
    }

    #[test]
    fn kind_mismatch_is_none_not_error() {
        let report = sample();
        let other: Option<Payload> = report.decode("other").unwrap();
        assert!(other.is_none());
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let mut report = sample();
        report.data = serde_json::Value::String("not an object".to_string());
        let err = report.decode::<Payload>("test").unwrap_err();
        assert!(err.contains("failed to decode"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_envelopes() {
        let mut report = sample();
        report.schema_version = 99;
        assert!(report
            .validate()
            .unwrap_err()
            .contains("unsupported metrics schema version 99"));

        let mut report = sample();
        report.kind.clear();
        assert!(report.validate().unwrap_err().contains("kind"));

        let mut report = sample();
        report.data = serde_json::Value::Null;
        assert!(report.validate().unwrap_err().contains("no payload"));
    }
}
