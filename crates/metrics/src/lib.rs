//! Performance telemetry for the SMS reproduction.
//!
//! The simulator's own hot path deserves the same measurement discipline the
//! paper applies to the memory system it models.  This crate provides the
//! three primitives the rest of the workspace instruments itself with:
//!
//! * **counters and wall-clock timers** that are *zero-cost when disabled*:
//!   a [`Stopwatch`] built disabled never touches the clock, and the
//!   monomorphized no-op meter pattern (see [`collect`]) lets hot loops
//!   compile the instrumentation away entirely;
//! * **throughput meters** ([`ThroughputMeter`], [`per_sec`]) that turn an
//!   event count and an elapsed wall-clock interval into events/second;
//! * a **serializable report envelope** ([`MetricsReport`]) — a
//!   schema-versioned `{kind, data}` pair, mirroring the engine's open
//!   `ProbeReport` design — so every telemetry producer (per-job driver
//!   metrics, whole-run engine metrics, the bench pipeline's
//!   `BENCH_*.json`) writes the same self-describing JSON shape.
//!
//! Telemetry never feeds back into simulation: collecting metrics must not
//! (and, by construction here, cannot) perturb simulated results.  The
//! integration tests pin that property by comparing serialized results with
//! collection enabled and disabled byte for byte.
//!
//! # Example
//!
//! ```
//! use metrics::{per_sec, MetricsConfig, MetricsReport, Stopwatch};
//!
//! let config = MetricsConfig::enabled();
//! let watch = Stopwatch::start_if(config.enabled);
//! let simulated_accesses: u64 = 10_000;
//! // ... do the work being measured ...
//! let seconds = watch.elapsed_seconds();
//! let report = MetricsReport::new("example", &per_sec(simulated_accesses, seconds));
//! assert_eq!(report.kind, "example");
//! assert!(report.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect;
pub mod histogram;
pub mod report;

pub use collect::{per_sec, Counter, MetricsConfig, Stopwatch, Throughput, ThroughputMeter};
pub use histogram::Histogram;
pub use report::MetricsReport;
