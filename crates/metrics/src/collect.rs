//! Collection primitives: counters, wall-clock stopwatches and throughput
//! meters.
//!
//! Everything here is built around one rule: **disabled collection must cost
//! nothing**.  A [`Stopwatch`] constructed disabled never calls
//! `Instant::now`, and code instrumenting a hot loop should follow the
//! monomorphized-meter pattern — define a small meter trait for the loop's
//! events, implement it for `()` with empty bodies, and make the loop generic
//! over the meter — so the disabled variant compiles to exactly the
//! uninstrumented loop (this is what `memsim`'s driver does).

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Whether telemetry is collected at all.
///
/// Carried explicitly (rather than read from a global) so tests can prove
/// that enabled and disabled runs produce byte-identical simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsConfig {
    /// Collect timings and counters when `true`; skip all clock reads when
    /// `false`.
    pub enabled: bool,
}

impl MetricsConfig {
    /// Collection on.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }

    /// Collection off: timers read as zero and never touch the clock.
    pub fn disabled() -> Self {
        Self { enabled: false }
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A wall-clock timer that is free when disabled.
///
/// A disabled stopwatch holds no start instant, reports zero elapsed time and
/// never calls `Instant::now` — constructing and querying it is a couple of
/// register moves.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a running stopwatch.
    pub fn started() -> Self {
        Self {
            start: Some(Instant::now()),
        }
    }

    /// A stopwatch that never reads the clock and always reports zero.
    pub fn disabled() -> Self {
        Self { start: None }
    }

    /// Starts a stopwatch iff `enabled` (the usual constructor, fed from
    /// [`MetricsConfig::enabled`]).
    pub fn start_if(enabled: bool) -> Self {
        if enabled {
            Self::started()
        } else {
            Self::disabled()
        }
    }

    /// Whether this stopwatch is actually timing.
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Seconds elapsed since the start; `0.0` for a disabled stopwatch.
    pub fn elapsed_seconds(&self) -> f64 {
        match self.start {
            Some(start) => start.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }
}

/// An event rate: how many events happened over how much wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Number of events observed.
    pub count: u64,
    /// Wall-clock seconds over which they were observed.
    pub seconds: f64,
    /// Events per second (`0.0` when no time was observed).
    pub per_sec: f64,
}

/// Events per second, `0.0` when `seconds` is not a positive measurement
/// (disabled stopwatches report zero elapsed time).
pub fn per_sec(count: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

/// A counter paired with a stopwatch: record events while the work runs, then
/// [`finish`](ThroughputMeter::finish) into a [`Throughput`].
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeter {
    count: Counter,
    watch: Stopwatch,
}

impl ThroughputMeter {
    /// Starts a meter; disabled meters never read the clock and finish with
    /// zero throughput.
    pub fn start_if(enabled: bool) -> Self {
        Self {
            count: Counter::new(),
            watch: Stopwatch::start_if(enabled),
        }
    }

    /// Records `n` events.
    #[inline]
    pub fn record(&mut self, n: u64) {
        self.count.add(n);
    }

    /// Stops the clock and computes the rate.
    pub fn finish(self) -> Throughput {
        let seconds = self.watch.elapsed_seconds();
        Throughput {
            count: self.count.get(),
            seconds,
            per_sec: per_sec(self.count.get(), seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn disabled_stopwatch_reads_zero() {
        let w = Stopwatch::disabled();
        assert!(!w.is_enabled());
        assert_eq!(w.elapsed_seconds(), 0.0);
        assert!(!Stopwatch::start_if(false).is_enabled());
    }

    #[test]
    fn enabled_stopwatch_advances() {
        let w = Stopwatch::start_if(true);
        assert!(w.is_enabled());
        assert!(w.elapsed_seconds() >= 0.0);
        // Monotonic: a later reading is never smaller.
        let first = w.elapsed_seconds();
        assert!(w.elapsed_seconds() >= first);
    }

    #[test]
    fn per_sec_handles_zero_time() {
        assert_eq!(per_sec(100, 0.0), 0.0);
        assert_eq!(per_sec(100, -1.0), 0.0);
        assert!((per_sec(100, 2.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_meter_finishes_at_zero_rate() {
        let mut m = ThroughputMeter::start_if(false);
        m.record(1_000);
        let t = m.finish();
        assert_eq!(t.count, 1_000);
        assert_eq!(t.seconds, 0.0);
        assert_eq!(t.per_sec, 0.0);
    }

    #[test]
    fn config_defaults_to_disabled() {
        assert!(!MetricsConfig::default().enabled);
        assert!(MetricsConfig::enabled().enabled);
        assert!(!MetricsConfig::disabled().enabled);
    }
}
