//! Log2-bucketed latency histograms.
//!
//! A [`Histogram`] counts `u64` samples (the workspace records microseconds)
//! into power-of-two buckets: bucket 0 holds the value 0 and bucket *i* ≥ 1
//! holds the half-open range `[2^(i-1), 2^i)`.  The layout is fixed —
//! [`Histogram::BUCKETS`] covers the full `u64` range — so two histograms
//! always merge bucket-by-bucket, and merging is commutative and associative
//! by construction.  Count, min, max, sum and estimated percentiles are all
//! derivable from the serialized form.
//!
//! The struct is `Copy` (one fixed-size array, no heap) so it can ride in
//! the same by-value telemetry types (`JobMetrics`, `SegmentTelemetry`) the
//! engine already moves across threads, and recording is a bounds-free array
//! increment — cheap enough for per-segment and per-batch call sites.
//!
//! Serialization is sparse: only non-empty buckets appear, as
//! `[[index, count], ...]` pairs, so an empty histogram costs a few bytes in
//! a report rather than 65 zeroes.

use serde::{de, Deserialize, Serialize, Value};

/// A mergeable log2-bucketed histogram over `u64` samples.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; Histogram::BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl Histogram {
    /// Number of buckets: the value 0 plus one bucket per power of two up to
    /// the full `u64` range.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; Histogram::BUCKETS],
        }
    }

    /// The bucket index `value` falls into: 0 for the value 0, else
    /// `1 + floor(log2(value))`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `index` (0, 1, 2, 4, 8, ...).
    pub fn bucket_floor(index: usize) -> u64 {
        match index {
            0 => 0,
            i => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Folds another histogram into this one, bucket by bucket.  Merging is
    /// commutative: `a.merge(b)` and `b.merge(a)` produce equal histograms.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts:
    /// the upper edge of the bucket containing the quantile rank, clamped to
    /// the observed max.  Exact for values that share a bucket; otherwise an
    /// upper bound within 2x (the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(index, count)` pairs (the serialized form).
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .sparse_buckets()
            .into_iter()
            .map(|(i, n)| Value::Array(vec![Value::UInt(i as u64), Value::UInt(n)]))
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("min".to_string(), Value::UInt(self.min)),
            ("max".to_string(), Value::UInt(self.max)),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }
}

fn value_u64(v: &Value, what: &str) -> Result<u64, de::Error> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(de::Error::custom(&format!(
            "histogram {what} must be a non-negative integer, got {other:?}"
        ))),
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::custom("histogram must be an object"))?;
        let mut hist = Histogram::new();
        hist.count = value_u64(serde::field(obj, "count"), "count")?;
        hist.sum = value_u64(serde::field(obj, "sum"), "sum")?;
        hist.min = value_u64(serde::field(obj, "min"), "min")?;
        hist.max = value_u64(serde::field(obj, "max"), "max")?;
        let buckets = serde::field(obj, "buckets")
            .as_array()
            .ok_or_else(|| de::Error::custom("histogram buckets must be an array"))?;
        for pair in buckets {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                de::Error::custom("histogram bucket must be an [index, count] pair")
            })?;
            let index = value_u64(&pair[0], "bucket index")? as usize;
            if index >= Histogram::BUCKETS {
                return Err(de::Error::custom(&format!(
                    "histogram bucket index {index} out of range"
                )));
            }
            hist.buckets[index] = value_u64(&pair[1], "bucket count")?;
        }
        Ok(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_pinned() {
        // The serialized format depends on these exact edges; a change here
        // is a report schema change and must bump the envelope version.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(2), 2);
        assert_eq!(Histogram::bucket_floor(11), 1024);
        // Every value lands in the bucket whose floor is <= it.
        for v in [0u64, 1, 2, 5, 100, 4096, u64::MAX / 2] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_floor(i) <= v);
            if i + 1 < Histogram::BUCKETS {
                assert!(v < Histogram::bucket_floor(i + 1));
            }
        }
    }

    #[test]
    fn records_and_derives_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.p50(), 0);
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.sum(), 1100);
        assert!((h.mean() - 220.0).abs() < 1e-9);
        // Median falls in the [16,32) bucket; the estimate is its upper edge.
        assert_eq!(h.p50(), 31);
        assert_eq!(h.p99(), 1000, "p99 clamps to the observed max");
    }

    #[test]
    fn merge_is_commutative_and_matches_recording_everything() {
        let xs = [0u64, 1, 1, 7, 90, 4096, 5, 65_000];
        let ys = [2u64, 2, 300, 12, 0];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs {
            a.record(x);
        }
        for &y in &ys {
            b.record(y);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        let mut all = Histogram::new();
        for &v in xs.iter().chain(ys.iter()) {
            all.record(v);
        }
        assert_eq!(ab, all, "merge equals recording the union");
        let mut with_empty = a;
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, a, "empty is the merge identity");
    }

    #[test]
    fn serializes_sparsely_and_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 500] {
            h.record(v);
        }
        let value = h.to_value();
        let buckets = value.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets.len(), 3, "only non-empty buckets serialize");
        let json = serde_json::to_string(&value).unwrap();
        let back = Histogram::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.p50(), 3);

        let empty_json = serde_json::to_string(&Histogram::new().to_value()).unwrap();
        let back = Histogram::from_value(&serde_json::from_str(&empty_json).unwrap()).unwrap();
        assert_eq!(back, Histogram::new());
    }

    #[test]
    fn deserialize_rejects_malformed_buckets() {
        let bad = serde_json::from_str(
            "{\"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1, \"buckets\": [[99, 1]]}",
        )
        .unwrap();
        assert!(Histogram::from_value(&bad).is_err());
        let bad = serde_json::from_str("{\"count\": 1, \"buckets\": [[1]]}").unwrap();
        assert!(Histogram::from_value(&bad).is_err());
    }
}
