//! Figure 9: PHT storage sensitivity of the logical sectored trainer versus
//! the AGT.

use crate::common::{classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob, TrainingSpec};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, TrainerKind};
use stats::mean;
use trace::ApplicationClass;

/// PHT sizes swept (`None` = unbounded).
pub const PHT_SIZES: [Option<usize>; 5] = [Some(256), Some(1024), Some(4096), Some(16384), None];

/// Coverage at one (class, trainer, PHT size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhtTrainingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Training structure (LS or AGT).
    pub trainer: TrainerKind,
    /// PHT entries (`None` = unbounded).
    pub pht_entries: Option<usize>,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the Figure 9 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// One point per (class, trainer, size).
    pub points: Vec<PhtTrainingPoint>,
}

fn capacity(entries: Option<usize>) -> PhtCapacity {
    match entries {
        Some(entries) => PhtCapacity::Bounded {
            entries,
            associativity: 16,
        },
        None => PhtCapacity::Unbounded,
    }
}

/// The trainers this figure compares, in figure order.
const TRAINERS: [TrainerKind; 2] = [TrainerKind::LogicalSectored, TrainerKind::Agt];

/// The engine jobs this figure declares: per class, one baseline per
/// application followed by one training run per (trainer, PHT size,
/// application).
pub fn jobs(config: &ExperimentConfig, representative_only: bool) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for trainer in TRAINERS {
            for &entries in &PHT_SIZES {
                for &app in &apps {
                    jobs.push(config.job(
                        app,
                        PrefetcherSpec::training(&TrainingSpec {
                            trainer,
                            region: RegionConfig::paper_default(),
                            index_scheme: IndexScheme::PcOffset,
                            pht: capacity(entries),
                            l1_capacity_bytes: config.hierarchy.l1.capacity_bytes,
                        }),
                    ));
                }
            }
        }
    }
    jobs
}

/// Runs the Figure 9 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig9Result {
    let results = config.run_jobs(&jobs(config, representative_only));
    from_results(config, representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    results: &[JobResult],
) -> Fig9Result {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = Fig9Result::default();
    for (class, apps) in &classes {
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for trainer in TRAINERS {
            for &entries in &PHT_SIZES {
                let coverages: Vec<f64> = baselines
                    .iter()
                    .map(|baseline| {
                        let with = cursor.next().expect("training run");
                        config
                            .coverage(&baseline.summary, &with.summary, CoverageLevel::L1)
                            .coverage()
                    })
                    .collect();
                result.points.push(PhtTrainingPoint {
                    class: *class,
                    trainer,
                    pht_entries: entries,
                    coverage: mean(&coverages),
                });
            }
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig9Result) -> Table {
    let mut headers = vec!["Class".to_string(), "Trainer".to_string()];
    headers.extend(PHT_SIZES.iter().map(|s| match s {
        Some(n) => format!("{n}"),
        None => "infinite".to_string(),
    }));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 9: coverage vs PHT size, LS vs AGT training",
        &headers_ref,
    );
    for class in ApplicationClass::ALL {
        for trainer in [TrainerKind::LogicalSectored, TrainerKind::Agt] {
            let points: Vec<&PhtTrainingPoint> = result
                .points
                .iter()
                .filter(|p| p.class == class && p.trainer == trainer)
                .collect();
            if points.is_empty() {
                continue;
            }
            let mut row = vec![class.to_string(), trainer.label().to_string()];
            for &entries in &PHT_SIZES {
                let cov = points
                    .iter()
                    .find(|p| p.pht_entries == entries)
                    .map(|p| p.coverage)
                    .unwrap_or(0.0);
                row.push(Table::pct(cov));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agt_needs_no_more_pht_storage_than_ls_for_same_coverage() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 4 * 2 * PHT_SIZES.len());
        // At the largest bounded size the AGT's coverage should be at least
        // in the same ballpark as LS for OLTP (the class with the most
        // interleaving, where LS fragments patterns).
        let find = |trainer: TrainerKind, entries: Option<usize>| {
            result
                .points
                .iter()
                .find(|p| {
                    p.class == ApplicationClass::Oltp
                        && p.trainer == trainer
                        && p.pht_entries == entries
                })
                .map(|p| p.coverage)
                .unwrap()
        };
        let agt = find(TrainerKind::Agt, Some(16384));
        let ls = find(TrainerKind::LogicalSectored, Some(16384));
        assert!(
            agt >= ls - 0.05,
            "AGT coverage at 16k ({agt:.2}) should not trail LS ({ls:.2}) appreciably"
        );
        assert!(table(&result).to_string().contains("LS"));
    }
}
