//! Figure 9: PHT storage sensitivity of the logical sectored trainer versus
//! the AGT.

use crate::common::{class_applications, ExperimentConfig};
use crate::report::Table;
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, TrainerKind, TrainingPrefetcher};
use stats::mean;
use trace::ApplicationClass;

/// PHT sizes swept (`None` = unbounded).
pub const PHT_SIZES: [Option<usize>; 5] = [Some(256), Some(1024), Some(4096), Some(16384), None];

/// Coverage at one (class, trainer, PHT size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhtTrainingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Training structure (LS or AGT).
    pub trainer: TrainerKind,
    /// PHT entries (`None` = unbounded).
    pub pht_entries: Option<usize>,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the Figure 9 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// One point per (class, trainer, size).
    pub points: Vec<PhtTrainingPoint>,
}

fn capacity(entries: Option<usize>) -> PhtCapacity {
    match entries {
        Some(entries) => PhtCapacity::Bounded {
            entries,
            associativity: 16,
        },
        None => PhtCapacity::Unbounded,
    }
}

/// Runs the Figure 9 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig9Result {
    let trainers = [TrainerKind::LogicalSectored, TrainerKind::Agt];
    let mut result = Fig9Result::default();
    for class in ApplicationClass::ALL {
        let apps = class_applications(class, representative_only);
        let baselines: Vec<_> = apps.iter().map(|&app| config.run_baseline(app)).collect();
        for trainer in trainers {
            for &entries in &PHT_SIZES {
                let mut coverages = Vec::new();
                for (app, baseline) in apps.iter().zip(&baselines) {
                    let mut prefetcher = TrainingPrefetcher::new(
                        config.cpus,
                        trainer,
                        RegionConfig::paper_default(),
                        IndexScheme::PcOffset,
                        capacity(entries),
                        config.hierarchy.l1.capacity_bytes,
                    );
                    let with = config.run_with(*app, &mut prefetcher);
                    coverages.push(
                        config
                            .coverage(baseline, &with, CoverageLevel::L1)
                            .coverage(),
                    );
                }
                result.points.push(PhtTrainingPoint {
                    class,
                    trainer,
                    pht_entries: entries,
                    coverage: mean(&coverages),
                });
            }
        }
    }
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig9Result) -> Table {
    let mut headers = vec!["Class".to_string(), "Trainer".to_string()];
    headers.extend(PHT_SIZES.iter().map(|s| match s {
        Some(n) => format!("{n}"),
        None => "infinite".to_string(),
    }));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 9: coverage vs PHT size, LS vs AGT training",
        &headers_ref,
    );
    for class in ApplicationClass::ALL {
        for trainer in [TrainerKind::LogicalSectored, TrainerKind::Agt] {
            let points: Vec<&PhtTrainingPoint> = result
                .points
                .iter()
                .filter(|p| p.class == class && p.trainer == trainer)
                .collect();
            if points.is_empty() {
                continue;
            }
            let mut row = vec![class.to_string(), trainer.label().to_string()];
            for &entries in &PHT_SIZES {
                let cov = points
                    .iter()
                    .find(|p| p.pht_entries == entries)
                    .map(|p| p.coverage)
                    .unwrap_or(0.0);
                row.push(Table::pct(cov));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agt_needs_no_more_pht_storage_than_ls_for_same_coverage() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 4 * 2 * PHT_SIZES.len());
        // At the largest bounded size the AGT's coverage should be at least
        // in the same ballpark as LS for OLTP (the class with the most
        // interleaving, where LS fragments patterns).
        let find = |trainer: TrainerKind, entries: Option<usize>| {
            result
                .points
                .iter()
                .find(|p| {
                    p.class == ApplicationClass::Oltp
                        && p.trainer == trainer
                        && p.pht_entries == entries
                })
                .map(|p| p.coverage)
                .unwrap()
        };
        let agt = find(TrainerKind::Agt, Some(16384));
        let ls = find(TrainerKind::LogicalSectored, Some(16384));
        assert!(
            agt >= ls - 0.05,
            "AGT coverage at 16k ({agt:.2}) should not trail LS ({ls:.2}) appreciably"
        );
        assert!(table(&result).to_string().contains("LS"));
    }
}
