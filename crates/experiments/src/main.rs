//! `sms-experiments`: regenerate the tables and figures of
//! *Spatial Memory Streaming* (ISCA 2006), and run arbitrary serialized job
//! lists through the engine.
//!
//! Usage:
//!
//! ```text
//! sms-experiments <experiment> [--quick] [--jobs N] [--segment-size N]
//!                 [--speculate N] [--json <path>] [--out <path>]
//!                 [--emit-spec <path>] [--trace-out <path>]
//! sms-experiments --figure <experiment> [same flags]
//! sms-experiments run --spec <jobs.json> [--jobs N] [--segment-size N]
//!                 [--speculate N] [--timeout MS] [--out <path>]
//!                 [--trace-out <path>]
//! sms-experiments list [--json]
//! sms-experiments bench [--quick] [--jobs N] [--segment-size N]
//!                 [--speculate N] [--repeat N] [--name NAME] [--out <path>]
//!                 [--trace-out <path>]
//!                 [--against OLD.json [--threshold F] [--diff-out <path>]]
//! sms-experiments bench --check <path>
//! sms-experiments serve (--socket PATH | --tcp ADDR) [--quota N] [--jobs N]
//!                 [--cache-max-entries N] [--cache-max-bytes N]
//!                 [--queue-max N] [--cache-dir DIR]
//!                 [--metrics-out <path>] [--trace-out <path>]
//! sms-experiments submit (--socket PATH | --tcp ADDR) --spec <jobs.json>
//!                 [--client NAME] [--priority N] [--jobs N]
//!                 [--segment-size N] [--speculate N] [--timeout MS]
//!                 [--retries N] [--out <path>] [--expect-cache-hit]
//! sms-experiments submit (--socket PATH | --tcp ADDR) --status [--json]
//! sms-experiments submit (--socket PATH | --tcp ADDR) --shutdown
//! sms-experiments trace-check <trace.json> [--require NAME]...
//!
//! experiments: all, table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
//!              agt-size, fig11, fig12, fig13 (leading zeros accepted: fig05)
//! list           print the experiments and the registered prefetcher plugins
//!                (--json: the machine-readable catalog)
//! run --spec P   execute a serialized engine job list (see --emit-spec)
//! bench          measure serial / job-parallel / segment-parallel /
//!                speculative throughput of the experiment suite and the
//!                batched hot path; write a schema-versioned
//!                BENCH_<name>.json
//! bench --check  validate an existing bench report against its schema
//! serve          start the resident job server on a unix-domain socket
//!                and/or loopback TCP; submissions stream back results as
//!                jobs finish, identical resubmissions are answered from the
//!                content-addressed result cache, and graceful shutdown
//!                drains the queue (--quota caps jobs queued+running per
//!                client; --cache-max-entries / --cache-max-bytes bound the
//!                result cache with LRU eviction, 0 = unlimited;
//!                --metrics-out writes the server's counters as a metrics
//!                report on exit)
//! submit         send a serialized job list to a running server; prints the
//!                same table and writes the same --out file as `run --spec`,
//!                byte for byte (--expect-cache-hit fails unless the reply
//!                came from the cache; --status prints a human-readable
//!                summary of the server's counters, or the raw metrics
//!                report with --json; --shutdown asks the server to drain
//!                and exit)
//! trace-check P  validate a Chrome trace-event file produced by --trace-out:
//!                well-formed JSON, spans paired and monotonic, and every
//!                --require NAME present among the span names (repeatable)
//! bench --against OLD.json
//!                additionally diff per-figure throughput against a previous
//!                report; exit non-zero when any figure drops below
//!                --threshold (default 0.8) of its old throughput, and write
//!                the diff next to the report (or to --diff-out PATH)
//! --figure NAME  name the experiment as a flag instead of positionally
//! --quick        use shorter traces and representative applications per class
//! --jobs N       engine worker threads (default: all hardware threads;
//!                1 forces the serial path)
//! --segment-size N
//!                run every job through the intra-job segment pipeline with
//!                N accesses per segment (results are bit-identical; long
//!                jobs stop pinning one worker)
//! --speculate N  let the segment pipeline simulate up to N segments ahead
//!                of the verified commit frontier (implies --segment-size at
//!                a default size when not given; results stay bit-identical
//!                because every speculative segment is verified against the
//!                authoritative state before it commits)
//! --timeout MS   (run, submit) deadline for the whole job list in
//!                milliseconds: a run that exceeds it is cancelled at the
//!                next job boundary and fails with a structured
//!                deadline-exceeded error instead of hanging; results
//!                finished before the deadline are still printed (0 = none)
//! --retries N    (submit) reconnect and resubmit up to N times after a
//!                connection-level failure, with exponential backoff.  Safe:
//!                submissions are content-addressed, so work the server
//!                already finished replays from its result cache instead of
//!                recomputing.  Structured refusals are never retried
//! --queue-max N  (serve) bound the submission queue: submissions arriving
//!                when N are already queued are shed with a structured
//!                `overloaded` error instead of growing the backlog without
//!                limit; cache hits are still answered (0 = unbounded)
//! --cache-dir DIR
//!                (serve) persist the result cache in DIR as checksummed
//!                entry files and reload them on start, so a restarted
//!                server answers repeat submissions from disk; corrupt or
//!                truncated entries are skipped and recomputed, never fatal
//! --repeat N     (bench) measure each figure N times and record best-of-N
//!                wall-clock per configuration plus the relative spread of
//!                the parallel-throughput samples (default 1)
//! --trace-out PATH
//!                record spans of the run (workers, jobs, segment pipeline
//!                stages, server submissions) and write them as Chrome
//!                trace-event JSON — load the file at https://ui.perfetto.dev
//!                or chrome://tracing.  Tracing is off (and costs nothing)
//!                without this flag, and simulated results are bit-identical
//!                either way
//! --json PATH    additionally dump the figure-level results as JSON
//! --out PATH     dump the raw engine JobResults as JSON (byte-identical to
//!                what `run --spec` produces for the same jobs)
//! --emit-spec P  write the exact engine jobs the experiment would run as a
//!                JSON spec file instead of running them
//! ```

use engine::{EngineConfig, JobList, JobResult, Registry};
use experiments::catalog::{catalog, figure_jobs, EXPERIMENTS};
use experiments::common::ExperimentConfig;
use experiments::{
    agt_size, bench, fig04_block_size, fig05_density, fig06_indexing, fig07_pht_size,
    fig08_training, fig09_pht_training, fig10_region_size, fig11_ghb_comparison, fig12_speedup,
    fig13_breakdown, table1,
};
use serde::Serialize;
use server::{Endpoint, Server, ServerConfig, ServerMetrics, SubmitOptions};
use std::path::PathBuf;
use std::process::ExitCode;
use timing::TimingConfig;
use trace::Application;
use tracelog::Trace;

#[derive(Debug, Default, Serialize)]
struct JsonDump {
    fig4: Option<fig04_block_size::Fig4Result>,
    fig5: Option<fig05_density::Fig5Result>,
    fig6: Option<fig06_indexing::Fig6Result>,
    fig7: Option<fig07_pht_size::Fig7Result>,
    fig8: Option<fig08_training::Fig8Result>,
    fig9: Option<fig09_pht_training::Fig9Result>,
    fig10: Option<fig10_region_size::Fig10Result>,
    agt_size: Option<agt_size::AgtSizeResult>,
    fig11: Option<fig11_ghb_comparison::Fig11Result>,
    fig12: Option<fig12_speedup::Fig12Result>,
    fig13: Option<fig13_breakdown::Fig13Result>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sms-experiments <all|table1|fig4|fig5|fig6|fig7|fig8|fig9|fig10|agt-size|fig11|fig12|fig13> \
         [--quick] [--jobs N] [--segment-size N] [--speculate N] [--json PATH] [--out PATH] [--emit-spec PATH] [--trace-out PATH]\n\
       \x20      sms-experiments run --spec JOBS.json [--jobs N] [--segment-size N] [--speculate N] [--timeout MS] [--out PATH] [--trace-out PATH]\n\
       \x20      sms-experiments list [--json]\n\
       \x20      sms-experiments bench [--quick] [--jobs N] [--segment-size N] [--speculate N] [--repeat N] [--name NAME] [--out PATH]\n\
       \x20                            [--trace-out PATH] [--against OLD.json [--threshold F] [--diff-out PATH]]\n\
       \x20      sms-experiments bench --check PATH\n\
       \x20      sms-experiments serve (--socket PATH | --tcp ADDR) [--quota N] [--jobs N] [--cache-max-entries N]\n\
       \x20                            [--cache-max-bytes N] [--queue-max N] [--cache-dir DIR] [--metrics-out PATH] [--trace-out PATH]\n\
       \x20      sms-experiments submit (--socket PATH | --tcp ADDR) --spec JOBS.json [--client NAME] [--priority N]\n\
       \x20                             [--jobs N] [--segment-size N] [--speculate N] [--timeout MS] [--retries N]\n\
       \x20                             [--out PATH] [--expect-cache-hit]\n\
       \x20      sms-experiments submit (--socket PATH | --tcp ADDR) --status [--json] | --shutdown\n\
       \x20      sms-experiments trace-check TRACE.json [--require NAME]..."
    );
    ExitCode::from(2)
}

/// Writes the spans recorded in `trace` as Chrome trace-event JSON (the
/// `--trace-out` output, loadable at <https://ui.perfetto.dev>).
fn write_trace(trace: &Trace, path: &str) -> Result<(), ExitCode> {
    match trace.write_chrome_trace(std::path::Path::new(path)) {
        Ok(true) => {
            println!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
            Ok(())
        }
        // Unreachable from the CLI — the trace is enabled whenever
        // --trace-out is given — but a disabled trace is not an error.
        Ok(false) => Ok(()),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Canonicalizes an experiment name: lowercase, zero-padded figure numbers
/// accepted ("fig05" and "fig5" both select Figure 5).
fn normalize_experiment(name: &str) -> String {
    let name = name.to_ascii_lowercase();
    match name.strip_prefix("fig").and_then(|n| n.parse::<u32>().ok()) {
        Some(number) => format!("fig{number}"),
        None => name,
    }
}

/// Prints the experiments and the plugins of the built-in registry —
/// human-readable by default, the machine-readable catalog with `--json`.
fn list(json: bool) -> ExitCode {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&catalog()).expect("catalog serializes")
        );
        return ExitCode::SUCCESS;
    }
    println!("experiments:");
    for name in EXPERIMENTS {
        println!("  {name}");
    }
    println!("\nprefetcher plugins (built-in registry):");
    let registry = Registry::builtin();
    for name in registry.names() {
        let description = registry.get(name).map(|p| p.description()).unwrap_or("");
        if description.is_empty() {
            println!("  {name}");
        } else {
            println!("  {name:<14} {description}");
        }
    }
    ExitCode::SUCCESS
}

/// Flags of the `bench` subcommand beyond the shared ones.
struct BenchFlags<'a> {
    check: Option<&'a str>,
    name: Option<&'a str>,
    out: Option<&'a str>,
    segment_size: Option<usize>,
    speculate: Option<usize>,
    repeat: usize,
    against: Option<&'a str>,
    threshold: f64,
    diff_out: Option<&'a str>,
}

/// Runs the bench pipeline (`bench`), validates an existing report
/// (`bench --check PATH`), and optionally diffs against a previous report
/// (`bench --against OLD.json`).
fn run_bench_command(
    flags: &BenchFlags<'_>,
    quick: bool,
    workers: usize,
    trace: &Trace,
    trace_out: Option<&str>,
) -> ExitCode {
    if let Some(path) = flags.check {
        return match read_bench_report(path) {
            Ok(report) => {
                println!(
                    "{path}: valid bench report {:?} ({} figures, {} jobs)",
                    report.name,
                    report.figures.len(),
                    report.totals.jobs
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let name = flags.name.unwrap_or("bench").to_string();
    let default_out = format!("BENCH_{name}.json");
    let out = flags.out.unwrap_or(&default_out);
    let report = match bench::run_bench_observed(
        &bench::BenchOptions {
            name,
            workers,
            quick,
            figures: Vec::new(),
            segment_size: flags.segment_size,
            speculate: flags.speculate,
            repeat: flags.repeat,
        },
        trace,
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = trace_out {
        if let Err(code) = write_trace(trace, path) {
            return code;
        }
    }
    print!("{}", bench::render(&report));
    // The report validates its own schema before it is written; a report
    // that cannot satisfy its contract (e.g. nondeterministic parallel
    // results) must fail the run, not be uploaded.
    if let Err(e) = report.validate() {
        eprintln!("bench report failed schema validation: {e}");
        return ExitCode::FAILURE;
    }
    let json =
        serde_json::to_string_pretty(&report.into_envelope()).expect("bench report serializes");
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("bench report written to {out}");

    // Regression gate: diff per-figure throughput against the old report,
    // write the diff artifact either way, and only then fail on regression.
    if let Some(against_path) = flags.against {
        let old_json = match std::fs::read_to_string(against_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("failed to read {against_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let diff = match bench::diff_reports(&report, &old_json, flags.threshold) {
            Ok(diff) => diff,
            Err(e) => {
                eprintln!("{against_path}: cannot compare: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", bench::render_diff(&diff));
        let default_diff_out = format!("{out}.diff.json");
        let diff_out = flags.diff_out.unwrap_or(&default_diff_out);
        let diff_json =
            serde_json::to_string_pretty(&diff.into_envelope()).expect("bench diff serializes");
        if let Err(e) = std::fs::write(diff_out, diff_json) {
            eprintln!("failed to write {diff_out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench diff written to {diff_out}");
        if diff.regressed {
            eprintln!(
                "bench regression: at least one figure fell below {:.2}x of {:?}",
                diff.threshold, diff.against
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Loads and fully validates a bench report file (envelope + payload).
fn read_bench_report(path: &str) -> Result<bench::BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let envelope: metrics::MetricsReport =
        serde_json::from_str(&text).map_err(|e| format!("not a metrics report: {e}"))?;
    bench::BenchReport::from_envelope(&envelope)
}

/// Header of the per-job summary table shared by `run --spec` and `submit`
/// (the two must stay byte-identical on stdout).
const SPEC_TABLE_HEADER: &str =
    "job  prefetcher     source                accesses  L1 MPKI  L2 MPKI  prefetches";

/// Prints one row of the per-job summary table (shared by `run --spec` and
/// `submit`).
fn print_spec_row(job: &engine::SimJob, result: &JobResult) {
    println!(
        "{:<4} {:<14} {:<21} {:>8}  {:>7.2}  {:>7.2}  {:>10}",
        result.job_index,
        job.sim.prefetcher.plugin,
        job.sim.source.describe(),
        result.summary.accesses,
        result.summary.l1_read_mpki(),
        result.summary.l2_read_mpki(),
        result.summary.prefetch_requests,
    );
}

/// Prints a job's warnings to stderr (shared by `run --spec` and `submit`).
fn print_spec_warnings(result: &JobResult) {
    for warning in &result.warnings {
        eprintln!(
            "warning: job {} [{}]: {}",
            result.job_index, warning.kind, warning.message
        );
    }
}

/// Flags of the `serve` subcommand beyond the shared ones.
struct ServeFlags {
    socket: Option<String>,
    tcp: Option<String>,
    quota: usize,
    cache_max_entries: usize,
    cache_max_bytes: u64,
    queue_max: usize,
    cache_dir: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

/// Starts the resident job server (`serve`) and blocks until a client asks
/// it to shut down, then optionally writes the server's counters as a
/// metrics report and its recorded spans as a Chrome trace.
fn run_serve(flags: &ServeFlags, workers: usize, trace: &Trace) -> ExitCode {
    let server = match Server::start(ServerConfig {
        unix_socket: flags.socket.clone().map(PathBuf::from),
        tcp: flags.tcp.clone(),
        quota: flags.quota,
        workers,
        cache_max_entries: flags.cache_max_entries,
        cache_max_bytes: flags.cache_max_bytes,
        queue_max: flags.queue_max,
        cache_dir: flags.cache_dir.clone().map(PathBuf::from),
        trace: trace.clone(),
        ..ServerConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = server.unix_socket() {
        println!("serving on unix:{}", path.display());
    }
    if let Some(addr) = server.tcp_addr() {
        println!("serving on tcp:{addr}");
    }
    if flags.quota > 0 {
        println!("per-client quota: {} jobs queued or running", flags.quota);
    }
    if flags.cache_max_entries > 0 || flags.cache_max_bytes > 0 {
        println!(
            "result cache budget: {} entries, {} bytes (0 = unlimited)",
            flags.cache_max_entries, flags.cache_max_bytes
        );
    }
    if flags.queue_max > 0 {
        println!(
            "submission queue bound: {} (excess submissions are shed as `overloaded`)",
            flags.queue_max
        );
    }
    if let Some(dir) = &flags.cache_dir {
        let m = server.metrics();
        println!(
            "result cache persisted in {dir}: {} entries reloaded, {} skipped as corrupt",
            m.cache_loaded, m.cache_load_skipped
        );
    }
    println!("waiting for submissions; stop with `sms-experiments submit --shutdown`");
    let metrics = server.wait();
    println!(
        "served {} submissions / {} jobs ({} cache hits, {} misses, {} evictions); \
         max queue depth {}",
        metrics.submissions,
        metrics.jobs_served,
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.cache_evictions,
        metrics.max_queue_depth,
    );
    if metrics.deadline_cancellations > 0
        || metrics.disconnect_cancellations > 0
        || metrics.overload_rejections > 0
    {
        println!(
            "faults tolerated: {} deadline cancellations, {} client disconnects, {} overload sheds",
            metrics.deadline_cancellations,
            metrics.disconnect_cancellations,
            metrics.overload_rejections,
        );
    }
    if let Some(path) = &flags.metrics_out {
        let json = serde_json::to_string_pretty(&metrics.report())
            .expect("server metrics report serializes");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("server metrics written to {path}");
    }
    if let Some(path) = &flags.trace_out {
        if let Err(code) = write_trace(trace, path) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Flags of the `submit` subcommand beyond the shared ones.
struct SubmitFlags {
    socket: Option<String>,
    tcp: Option<String>,
    spec: Option<String>,
    client: String,
    priority: i64,
    timeout_ms: u64,
    retries: usize,
    expect_cache_hit: bool,
    status: bool,
    status_json: bool,
    shutdown: bool,
    out: Option<String>,
}

/// Renders the server's counters as the human-readable `submit --status`
/// summary (`--json` keeps the raw metrics report for scripts).
fn render_status(m: &ServerMetrics) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "queue depth       {:>10}  (max seen {})",
        m.queue_depth, m.max_queue_depth
    );
    let _ = writeln!(out, "running           {:>10}", m.running);
    let _ = writeln!(
        out,
        "submissions       {:>10}  ({} jobs served, {} results streamed)",
        m.submissions, m.jobs_served, m.results_streamed
    );
    let _ = writeln!(
        out,
        "cache             {:>10}  hits, {} misses ({} entries / {} bytes resident)",
        m.cache_hits, m.cache_misses, m.cache_entries, m.cache_bytes
    );
    let _ = writeln!(
        out,
        "cache evictions   {:>10}  ({} bytes reclaimed)",
        m.cache_evictions, m.cache_evicted_bytes
    );
    let _ = writeln!(out, "quota rejections  {:>10}", m.quota_rejections);
    let _ = writeln!(
        out,
        "overload sheds    {:>10}  (queue at its bound on arrival)",
        m.overload_rejections
    );
    let _ = writeln!(
        out,
        "cancellations     {:>10}  deadline, {} client-disconnect",
        m.deadline_cancellations, m.disconnect_cancellations
    );
    if m.cache_loaded > 0 || m.cache_load_skipped > 0 || m.cache_persist_failures > 0 {
        let _ = writeln!(
            out,
            "persistent cache  {:>10}  entries reloaded, {} skipped as corrupt, {} persist failures",
            m.cache_loaded, m.cache_load_skipped, m.cache_persist_failures
        );
    }
    if m.queue_wait_us.count() > 0 {
        let _ = writeln!(
            out,
            "queue wait (us)   {:>10}  p50, {} p90, {} p99, {} max over {} submissions",
            m.queue_wait_us.p50(),
            m.queue_wait_us.p90(),
            m.queue_wait_us.p99(),
            m.queue_wait_us.max().unwrap_or(0),
            m.queue_wait_us.count()
        );
    }
    if m.clients.is_empty() {
        let _ = writeln!(out, "clients           {:>10}  with active jobs", 0);
    } else {
        let _ = writeln!(out, "clients with active jobs:");
        for client in &m.clients {
            let _ = writeln!(
                out,
                "  {:<24} {:>6} jobs",
                client.client, client.active_jobs
            );
        }
    }
    out
}

/// Sends a serialized job list to a running server (`submit`), streaming the
/// same per-job table `run --spec` prints as result frames arrive.  Also
/// carries the server's control verbs (`--status`, `--shutdown`).
fn run_submit(
    flags: &SubmitFlags,
    workers: usize,
    segment_size: usize,
    speculate: usize,
) -> ExitCode {
    let endpoint = match (&flags.socket, &flags.tcp) {
        (Some(path), None) => Endpoint::Unix(PathBuf::from(path)),
        (None, Some(addr)) => Endpoint::Tcp(addr.clone()),
        (Some(_), Some(_)) => {
            eprintln!("submit takes --socket PATH or --tcp ADDR, not both");
            return usage();
        }
        (None, None) => {
            eprintln!("submit requires the server endpoint: --socket PATH or --tcp ADDR");
            return usage();
        }
    };
    if flags.status {
        return match server::client::status(&endpoint) {
            Ok(report) if flags.status_json => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report)
                        .expect("server metrics report serializes")
                );
                ExitCode::SUCCESS
            }
            Ok(report) => match report.decode::<ServerMetrics>(server::REPORT_KIND) {
                Ok(Some(metrics)) => {
                    print!("{}", render_status(&metrics));
                    ExitCode::SUCCESS
                }
                Ok(None) => {
                    eprintln!(
                        "{endpoint}: unexpected report kind {:?} (try --status --json)",
                        report.kind
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("{endpoint}: undecodable status report: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{endpoint}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if flags.shutdown {
        return match server::client::shutdown(&endpoint) {
            Ok(ack) => {
                println!(
                    "server shutting down ({} submissions draining)",
                    ack.draining
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{endpoint}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(spec_path) = &flags.spec else {
        eprintln!("submit requires --spec JOBS.json (or --status / --shutdown)");
        return usage();
    };
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The spec is validated client-side first so a bad file gets the same
    // error `run --spec` prints, without a server round trip.
    let list = match JobList::from_json(&text) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let options = SubmitOptions {
        client: flags.client.clone(),
        priority: flags.priority,
        workers,
        segment_size,
        speculate,
        timeout_ms: flags.timeout_ms,
        retries: flags.retries,
    };
    // Rows stream as frames arrive; the header waits for the first frame so
    // a refused submission leaves stdout untouched.
    let mut header_printed = false;
    let mut print_frame = |frame: &server::JobFrame| {
        if !header_printed {
            println!("{SPEC_TABLE_HEADER}");
            header_printed = true;
        }
        if let Some(job) = list.jobs.get(frame.result.job_index) {
            print_spec_row(job, &frame.result);
        }
    };
    let outcome = match server::client::submit(&endpoint, &list, &options, &mut print_frame) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("{endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !header_printed {
        // `run --spec` prints the header even for an empty job list.
        println!("{SPEC_TABLE_HEADER}");
    }
    for frame in &outcome.frames {
        print_spec_warnings(&frame.result);
    }
    if outcome.done.cache_hit {
        // Informational only, and on stderr: stdout stays byte-identical to
        // `run --spec` whether or not the cache answered.
        eprintln!(
            "note: answered from the server's result cache ({} jobs)",
            outcome.done.jobs
        );
    }
    if flags.expect_cache_hit && !outcome.done.cache_hit {
        eprintln!("--expect-cache-hit: the submission was computed, not replayed from the cache");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &flags.out {
        let results: Vec<JobResult> = outcome.frames.iter().map(|f| f.result.clone()).collect();
        if let Err(code) = write_results(path, &results) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Flags of the `run` subcommand beyond the shared ones.
struct RunFlags<'a> {
    spec_path: &'a str,
    timeout_ms: u64,
    out: Option<&'a str>,
    trace_out: Option<&'a str>,
}

/// Executes a serialized job list (`run --spec`), printing a per-job summary
/// table and optionally dumping the raw results.
fn run_spec(
    flags: &RunFlags<'_>,
    workers: usize,
    segment_size: usize,
    speculate: usize,
    trace: &Trace,
) -> ExitCode {
    let RunFlags {
        spec_path,
        timeout_ms,
        out,
        trace_out,
    } = *flags;
    let text = match std::fs::read_to_string(spec_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("failed to read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `from_json` checks the spec version before decoding jobs, so a
    // future-versioned spec gets the actionable version error rather than a
    // confusing field-level parse failure.
    let list = match JobList::from_json(&text) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The streamed entry point is used even without a deadline so the two
    // paths cannot drift; an un-cancelled token makes it byte-identical to
    // the plain run.
    let cancel = engine::CancelToken::new();
    let watchdog_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watchdog = (timeout_ms > 0).then(|| {
        let cancel = cancel.clone();
        let done = std::sync::Arc::clone(&watchdog_done);
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
        std::thread::spawn(move || {
            while !done.load(std::sync::atomic::Ordering::SeqCst) {
                let now = std::time::Instant::now();
                if now >= deadline {
                    cancel.cancel();
                    return;
                }
                std::thread::park_timeout(deadline - now);
            }
        })
    });
    let mut results: Vec<JobResult> = Vec::new();
    let outcome = engine::run_jobs_streamed_observed(
        &list.jobs,
        &EngineConfig::with_workers(workers)
            .with_segment_size(segment_size)
            .with_speculation(speculate),
        Registry::builtin(),
        &metrics::MetricsConfig::disabled(),
        trace,
        &cancel,
        &mut |result, _| results.push(result),
    );
    if let Some(handle) = watchdog {
        watchdog_done.store(true, std::sync::atomic::Ordering::SeqCst);
        handle.thread().unpark();
        handle.join().expect("deadline watchdog never panics");
    }
    let timed_out = match outcome {
        Ok((delivered, _)) => delivered < list.jobs.len(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{SPEC_TABLE_HEADER}");
    for (job, result) in list.jobs.iter().zip(&results) {
        print_spec_row(job, result);
    }
    for result in &results {
        print_spec_warnings(result);
    }
    if timed_out {
        // Partial results were printed above but are not dumped to --out: a
        // truncated dump must not masquerade as the full run.
        eprintln!(
            "deadline exceeded: {} of {} jobs finished within {timeout_ms} ms; \
             the run was cancelled at the next job boundary",
            results.len(),
            list.jobs.len(),
        );
        if let Some(path) = trace_out {
            if let Err(code) = write_trace(trace, path) {
                return code;
            }
        }
        return ExitCode::FAILURE;
    }
    if let Some(path) = out {
        if let Err(code) = write_results(path, &results) {
            return code;
        }
    }
    if let Some(path) = trace_out {
        if let Err(code) = write_trace(trace, path) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Writes raw engine results as pretty JSON (the `--out` format, shared by
/// `run --spec` and direct figure runs so the two are byte-comparable).
fn write_results(path: &str, results: &[JobResult]) -> Result<(), ExitCode> {
    let json = serde_json::to_string_pretty(results).expect("results serialize");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    println!("\nraw engine results written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // The experiment (or subcommand) is named positionally or via --figure.
    let experiment = match flag_value("--figure") {
        Some(name) => name,
        None => match args.first() {
            Some(first) if !first.starts_with("--") => first.clone(),
            _ => return usage(),
        },
    };
    let experiment = normalize_experiment(&experiment);
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = flag_value("--json");
    let out_path = flag_value("--out");
    let emit_spec_path = flag_value("--emit-spec");
    let trace_out = flag_value("--trace-out");
    if trace_out.is_none() && args.iter().any(|a| a == "--trace-out") {
        eprintln!("--trace-out requires the output path for the chrome trace");
        return usage();
    }
    // Tracing is enabled only when there is somewhere to write it; a
    // disabled trace records nothing and costs nothing on the hot paths.
    let run_trace = if trace_out.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };
    let workers = match flag_value("--jobs") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--jobs expects a number, got {n:?}");
                return usage();
            }
        },
        None => 0,
    };
    let segment_size = match flag_value("--segment-size") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--segment-size expects a number of accesses, got {n:?}");
                return usage();
            }
        },
        None => 0,
    };
    let speculate = match flag_value("--speculate") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--speculate expects a number of segments, got {n:?}");
                return usage();
            }
        },
        None => 0,
    };
    let timeout_ms = match flag_value("--timeout") {
        Some(n) => match n.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--timeout expects a deadline in milliseconds, got {n:?}");
                return usage();
            }
        },
        None => 0,
    };

    if experiment == "list" {
        return list(args.iter().any(|a| a == "--json"));
    }
    if experiment == "trace-check" {
        // The file is named positionally right after the subcommand.
        let path = match args.get(1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("trace-check requires the trace file to validate");
                return usage();
            }
        };
        let required: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == "--require")
            .filter_map(|(i, _)| args.get(i + 1))
            .map(String::as_str)
            .collect();
        if required.len() != args.iter().filter(|a| *a == "--require").count() {
            eprintln!("--require expects a span name after each occurrence");
            return usage();
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match tracelog::check_chrome_trace(&text, &required) {
            Ok(check) => {
                println!(
                    "{path}: valid chrome trace: {} events, {} spans ({} distinct names), \
                     ends at {} us, {} events dropped to ring overflow",
                    check.events,
                    check.spans,
                    check.span_names.len(),
                    check.end_us,
                    check.dropped,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if experiment == "run" {
        let Some(spec_path) = flag_value("--spec") else {
            eprintln!("run requires --spec JOBS.json");
            return usage();
        };
        return run_spec(
            &RunFlags {
                spec_path: &spec_path,
                timeout_ms,
                out: out_path.as_deref(),
                trace_out: trace_out.as_deref(),
            },
            workers,
            segment_size,
            speculate,
            &run_trace,
        );
    }
    if experiment == "serve" {
        let quota = match flag_value("--quota") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--quota expects a number of jobs, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        let cache_max_entries = match flag_value("--cache-max-entries") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--cache-max-entries expects a number of entries, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        let cache_max_bytes = match flag_value("--cache-max-bytes") {
            Some(n) => match n.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--cache-max-bytes expects a number of bytes, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        let queue_max = match flag_value("--queue-max") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--queue-max expects a number of submissions, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        return run_serve(
            &ServeFlags {
                socket: flag_value("--socket"),
                tcp: flag_value("--tcp"),
                quota,
                cache_max_entries,
                cache_max_bytes,
                queue_max,
                cache_dir: flag_value("--cache-dir"),
                metrics_out: flag_value("--metrics-out"),
                trace_out,
            },
            workers,
            &run_trace,
        );
    }
    if experiment == "submit" {
        let priority = match flag_value("--priority") {
            Some(n) => match n.parse::<i64>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--priority expects an integer, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        let retries = match flag_value("--retries") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--retries expects a retry count, got {n:?}");
                    return usage();
                }
            },
            None => 0,
        };
        return run_submit(
            &SubmitFlags {
                socket: flag_value("--socket"),
                tcp: flag_value("--tcp"),
                spec: flag_value("--spec"),
                client: flag_value("--client").unwrap_or_else(|| "anonymous".to_string()),
                priority,
                timeout_ms,
                retries,
                expect_cache_hit: args.iter().any(|a| a == "--expect-cache-hit"),
                status: args.iter().any(|a| a == "--status"),
                status_json: args.iter().any(|a| a == "--json"),
                shutdown: args.iter().any(|a| a == "--shutdown"),
                out: out_path,
            },
            workers,
            segment_size,
            speculate,
        );
    }
    if experiment == "bench" {
        let check = flag_value("--check");
        // A bare `--check` (path forgotten) must error, not fall through to
        // a full bench run that would overwrite the previous report.
        if check.is_none() && args.iter().any(|a| a == "--check") {
            eprintln!("bench --check requires the report path to validate");
            return usage();
        }
        let against = flag_value("--against");
        if against.is_none() && args.iter().any(|a| a == "--against") {
            eprintln!("bench --against requires the previous report path");
            return usage();
        }
        let threshold = match flag_value("--threshold") {
            Some(t) => match t.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => t,
                _ => {
                    eprintln!("--threshold expects a positive number, got {t:?}");
                    return usage();
                }
            },
            None => 0.8,
        };
        let repeat = match flag_value("--repeat") {
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("--repeat expects a pass count of at least 1, got {n:?}");
                    return usage();
                }
            },
            None => 1,
        };
        let name = flag_value("--name");
        let diff_out = flag_value("--diff-out");
        return run_bench_command(
            &BenchFlags {
                check: check.as_deref(),
                name: name.as_deref(),
                out: out_path.as_deref(),
                segment_size: if segment_size > 0 {
                    Some(segment_size)
                } else {
                    None
                },
                speculate: if speculate > 0 { Some(speculate) } else { None },
                repeat,
                against: against.as_deref(),
                threshold,
                diff_out: diff_out.as_deref(),
            },
            quick,
            workers,
            &run_trace,
            trace_out.as_deref(),
        );
    }
    if !EXPERIMENTS.contains(&experiment.as_str()) {
        match engine::closest_match(&experiment, EXPERIMENTS.into_iter()) {
            Some(suggestion) => {
                eprintln!("unknown experiment {experiment:?} (did you mean {suggestion:?}?)")
            }
            None => eprintln!(
                "unknown experiment {experiment:?}; `sms-experiments list` shows the choices"
            ),
        }
        return ExitCode::from(2);
    }

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    }
    .with_workers(workers)
    .with_segment_size(segment_size)
    .with_speculation(speculate);
    // Quick runs restrict class-level experiments to representative
    // applications; full runs use the whole suite.
    let representative_only = quick;
    let want = |name: &str| experiment == "all" || experiment == name;

    // With --emit-spec, collect the exact jobs the selected experiment would
    // run and write them as a spec file instead of executing anything.
    if let Some(path) = emit_spec_path {
        let mut jobs = Vec::new();
        let mut fig12_emitted = false;
        for name in EXPERIMENTS {
            if !want(name) {
                continue;
            }
            // Figures 12 and 13 share one job list; emit it once.
            if name == "fig12" || name == "fig13" {
                if fig12_emitted {
                    continue;
                }
                fig12_emitted = true;
            }
            if let Some(figure_jobs) = figure_jobs(name, &config, representative_only) {
                jobs.extend(figure_jobs);
            }
        }
        if jobs.is_empty() {
            eprintln!("{experiment}: declares no engine jobs (nothing to emit)");
            return ExitCode::FAILURE;
        }
        let json = serde_json::to_string_pretty(&JobList::new(jobs)).expect("jobs serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("engine job spec written to {path}");
        return ExitCode::SUCCESS;
    }

    let mut dump = JsonDump::default();
    let mut raw_results: Vec<JobResult> = Vec::new();
    // Runs one experiment's job list through the engine and, with --out,
    // accumulates the raw results.  Accumulated job indices are shifted to
    // continue across experiments, so a multi-figure --out dump is
    // byte-identical to `run --spec` over the same figures' emitted spec
    // (which concatenates the job lists into one continuously-indexed run).
    let mut run_figure = |name: &str| -> Vec<JobResult> {
        let jobs = figure_jobs(name, &config, representative_only).expect("experiment with jobs");
        let results = config.run_jobs_traced(&jobs, &run_trace);
        if out_path.is_some() {
            let offset = raw_results.len();
            raw_results.extend(results.iter().cloned().map(|mut r| {
                r.job_index += offset;
                r
            }));
        }
        results
    };

    if want("table1") {
        println!(
            "{}",
            table1::system_table(&config.hierarchy, &TimingConfig::table1(), config.cpus)
        );
        println!("{}", table1::application_table());
    }
    if want("fig4") {
        let results = run_figure("fig4");
        let r = fig04_block_size::from_results(representative_only, &results);
        println!("{}", fig04_block_size::table(&r));
        dump.fig4 = Some(r);
    }
    if want("fig5") {
        let apps = experiments::common::apps_or_all(&[]);
        let results = run_figure("fig5");
        let r = fig05_density::from_results(&apps, &results);
        println!("{}", fig05_density::table(&r));
        dump.fig5 = Some(r);
    }
    if want("fig6") {
        let results = run_figure("fig6");
        let r = fig06_indexing::from_results(&config, representative_only, &results);
        println!("{}", fig06_indexing::table(&r));
        dump.fig6 = Some(r);
    }
    if want("fig7") {
        let results = run_figure("fig7");
        let r = fig07_pht_size::from_results(&config, representative_only, &[], &results);
        println!("{}", fig07_pht_size::table(&r));
        dump.fig7 = Some(r);
    }
    if want("fig8") {
        let results = run_figure("fig8");
        let r = fig08_training::from_results(&config, representative_only, &results);
        println!("{}", fig08_training::table(&r));
        dump.fig8 = Some(r);
    }
    if want("fig9") {
        let results = run_figure("fig9");
        let r = fig09_pht_training::from_results(&config, representative_only, &results);
        println!("{}", fig09_pht_training::table(&r));
        dump.fig9 = Some(r);
    }
    if want("fig10") {
        let results = run_figure("fig10");
        let r = fig10_region_size::from_results(&config, representative_only, &results);
        println!("{}", fig10_region_size::table(&r));
        dump.fig10 = Some(r);
    }
    if want("agt-size") {
        let results = run_figure("agt-size");
        let r = agt_size::from_results(&config, representative_only, &results);
        println!("{}", agt_size::table(&r));
        dump.agt_size = Some(r);
    }
    if want("fig11") {
        let apps = experiments::common::apps_or_all(&[]);
        let results = run_figure("fig11");
        let r = fig11_ghb_comparison::from_results(&config, &apps, &results);
        println!("{}", fig11_ghb_comparison::table(&r));
        dump.fig11 = Some(r);
    }
    if want("fig12") || want("fig13") {
        // Figures 12 and 13 post-process the same (baseline, SMS) timing
        // evaluations, so an `all` run executes the job list only once.
        let apps = Application::ALL;
        let results = run_figure("fig12");
        let evaluations = fig12_speedup::evaluations_from_results(&results);
        if want("fig12") {
            let r = fig12_speedup::from_evaluations(&apps, &evaluations);
            println!("{}", fig12_speedup::table(&r));
            dump.fig12 = Some(r);
        }
        if want("fig13") {
            let r = fig13_breakdown::from_evaluations(&apps, &evaluations);
            println!("{}", fig13_breakdown::table(&r));
            dump.fig13 = Some(r);
        }
    }

    if let Some(path) = out_path {
        if let Err(code) = write_results(&path, &raw_results) {
            return code;
        }
    }
    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("\nraw results written to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = trace_out {
        if let Err(code) = write_trace(&run_trace, &path) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
