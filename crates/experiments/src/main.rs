//! `sms-experiments`: regenerate the tables and figures of
//! *Spatial Memory Streaming* (ISCA 2006).
//!
//! Usage:
//!
//! ```text
//! sms-experiments <experiment> [--quick] [--jobs N] [--json <path>]
//! sms-experiments --figure <experiment> [--quick] [--jobs N] [--json <path>]
//!
//! experiments: all, table1, fig4, fig5, fig6, fig7, fig8, fig9, fig10,
//!              agt-size, fig11, fig12, fig13 (leading zeros accepted: fig05)
//! --figure NAME  name the experiment as a flag instead of positionally
//! --quick        use shorter traces and representative applications per class
//! --jobs N       engine worker threads (default: all hardware threads;
//!                1 forces the serial path)
//! --json PATH    additionally dump the raw results as JSON
//! ```

use experiments::common::ExperimentConfig;
use experiments::{
    agt_size, fig04_block_size, fig05_density, fig06_indexing, fig07_pht_size, fig08_training,
    fig09_pht_training, fig10_region_size, fig11_ghb_comparison, fig12_speedup, fig13_breakdown,
    table1,
};
use serde::Serialize;
use sms::PhtCapacity;
use std::process::ExitCode;
use timing::TimingConfig;
use trace::Application;

#[derive(Debug, Default, Serialize)]
struct JsonDump {
    fig4: Option<fig04_block_size::Fig4Result>,
    fig5: Option<fig05_density::Fig5Result>,
    fig6: Option<fig06_indexing::Fig6Result>,
    fig7: Option<fig07_pht_size::Fig7Result>,
    fig8: Option<fig08_training::Fig8Result>,
    fig9: Option<fig09_pht_training::Fig9Result>,
    fig10: Option<fig10_region_size::Fig10Result>,
    agt_size: Option<agt_size::AgtSizeResult>,
    fig11: Option<fig11_ghb_comparison::Fig11Result>,
    fig12: Option<fig12_speedup::Fig12Result>,
    fig13: Option<fig13_breakdown::Fig13Result>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sms-experiments <all|table1|fig4|fig5|fig6|fig7|fig8|fig9|fig10|agt-size|fig11|fig12|fig13> [--quick] [--jobs N] [--json PATH]"
    );
    ExitCode::from(2)
}

/// Canonicalizes an experiment name: lowercase, zero-padded figure numbers
/// accepted ("fig05" and "fig5" both select Figure 5).
fn normalize_experiment(name: &str) -> String {
    let name = name.to_ascii_lowercase();
    match name.strip_prefix("fig").and_then(|n| n.parse::<u32>().ok()) {
        Some(number) => format!("fig{number}"),
        None => name,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    // The experiment is named positionally or via --figure.
    let experiment = match flag_value("--figure") {
        Some(name) => name,
        None => match args.first() {
            Some(first) if !first.starts_with("--") => first.clone(),
            _ => return usage(),
        },
    };
    let experiment = normalize_experiment(&experiment);
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = flag_value("--json");
    let workers = match flag_value("--jobs") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--jobs expects a number, got {n:?}");
                return usage();
            }
        },
        None => 0,
    };

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    }
    .with_workers(workers);
    // Quick runs restrict class-level experiments to representative
    // applications; full runs use the whole suite.
    let representative_only = quick;
    let mut dump = JsonDump::default();

    let known = [
        "all", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "agt-size",
        "fig11", "fig12", "fig13",
    ];
    if !known.contains(&experiment.as_str()) {
        return usage();
    }
    let want = |name: &str| experiment == "all" || experiment == name;

    if want("table1") {
        println!(
            "{}",
            table1::system_table(&config.hierarchy, &TimingConfig::table1(), config.cpus)
        );
        println!("{}", table1::application_table());
    }
    if want("fig4") {
        let r = fig04_block_size::run(&config, representative_only);
        println!("{}", fig04_block_size::table(&r));
        dump.fig4 = Some(r);
    }
    if want("fig5") {
        let r = fig05_density::run(&config, &[]);
        println!("{}", fig05_density::table(&r));
        dump.fig5 = Some(r);
    }
    if want("fig6") {
        let r = fig06_indexing::run(&config, representative_only);
        println!("{}", fig06_indexing::table(&r));
        dump.fig6 = Some(r);
    }
    if want("fig7") {
        let r = fig07_pht_size::run(&config, representative_only, &[]);
        println!("{}", fig07_pht_size::table(&r));
        dump.fig7 = Some(r);
    }
    if want("fig8") {
        let r = fig08_training::run(&config, representative_only, PhtCapacity::Unbounded);
        println!("{}", fig08_training::table(&r));
        dump.fig8 = Some(r);
    }
    if want("fig9") {
        let r = fig09_pht_training::run(&config, representative_only);
        println!("{}", fig09_pht_training::table(&r));
        dump.fig9 = Some(r);
    }
    if want("fig10") {
        let r = fig10_region_size::run(&config, representative_only);
        println!("{}", fig10_region_size::table(&r));
        dump.fig10 = Some(r);
    }
    if want("agt-size") {
        let r = agt_size::run(&config, representative_only);
        println!("{}", agt_size::table(&r));
        dump.agt_size = Some(r);
    }
    if want("fig11") {
        let r = fig11_ghb_comparison::run(&config, &[]);
        println!("{}", fig11_ghb_comparison::table(&r));
        dump.fig11 = Some(r);
    }
    if want("fig12") || want("fig13") {
        // Figures 12 and 13 post-process the same (baseline, SMS) timing
        // evaluations, so an `all` run executes the job list only once.
        let apps = Application::ALL;
        let evaluations = fig12_speedup::evaluate_apps(&config, &apps);
        if want("fig12") {
            let r = fig12_speedup::from_evaluations(&apps, &evaluations);
            println!("{}", fig12_speedup::table(&r));
            dump.fig12 = Some(r);
        }
        if want("fig13") {
            let r = fig13_breakdown::from_evaluations(&apps, &evaluations);
            println!("{}", fig13_breakdown::table(&r));
            dump.fig13 = Some(r);
        }
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&dump) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("\nraw results written to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize results: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
