//! The bench pipeline: `sms-experiments bench`.
//!
//! Runs the job-bearing experiments at a reduced scale through the engine
//! four ways — serial, job-parallel at `N` workers, **segment-parallel**
//! (same `N` workers with the intra-job segment pipeline), and
//! **speculative** (the segment pipeline with run-ahead speculation, every
//! segment verified against the authoritative state before commit) —
//! measures per-figure throughput and speedup with the engine's own
//! telemetry,
//! measures the batched stream-request hot path against the kept
//! pre-batching driver loop, measures the **served** path (each figure's
//! job list submitted to a local resident job server over its unix-domain
//! socket — a cold round trip that prices the protocol + scheduling
//! overhead, then best-of-N cache-hit replays that price the
//! content-addressed result cache), and emits everything as a
//! schema-versioned `BENCH_<name>.json` — the perf trajectory the ROADMAP's
//! scaling work measures itself against.
//!
//! Each figure's measurement starts with an unmeasured **warm-up** pass, so
//! cold-start costs (page faults, allocator growth, file cache) no longer
//! land entirely on whichever configuration happens to run first.
//!
//! The report is wrapped in the shared [`MetricsReport`] envelope
//! (`kind: "bench"`) and validates its own schema ([`BenchReport::validate`]);
//! CI fails the bench job when validation fails.  [`diff_reports`] compares
//! a fresh report against a previously recorded one (`bench --against`) and
//! flags per-figure throughput regressions, tolerating older report schemas
//! by reading only the fields it needs.

use crate::catalog::{figure_jobs, job_bearing_experiments};
use crate::common::ExperimentConfig;
use engine::{
    run_jobs_metered, run_jobs_observed, EngineConfig, JobList, JobResult, PrefetcherSpec, Registry,
};
use memsim::MultiCpuSystem;
use metrics::{per_sec, MetricsConfig, MetricsReport, Stopwatch};
use serde::{Deserialize, Serialize};
use trace::{Application, TraceSource};
use tracelog::Trace;

/// The [`MetricsReport`] kind tag of a serialized bench report.
pub const REPORT_KIND: &str = "bench";

/// How `sms-experiments bench` was invoked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOptions {
    /// Report name (lands in the report and the default output filename).
    pub name: String,
    /// Parallel worker count to compare against serial (`0` = one per
    /// available hardware thread).
    pub workers: usize,
    /// Reduced scale: tiny traces and representative applications per class
    /// (the CI configuration).
    pub quick: bool,
    /// Restrict the measured experiments (empty = every job-bearing
    /// experiment).  Used by tests; the CLI always measures the full suite.
    pub figures: Vec<String>,
    /// Accesses per segment for the segment-parallel measurement (`None` =
    /// a scale-derived default).
    pub segment_size: Option<usize>,
    /// Speculation depth for the speculative measurement (`None` = the
    /// default depth of 4 segments ahead of the commit frontier).
    pub speculate: Option<usize>,
    /// Measured passes per figure (`bench --repeat N`, minimum 1).  Each
    /// figure records best-of-N wall-clock per configuration plus the
    /// relative spread of its parallel-throughput samples, so noisy hosts
    /// can be recognized in the payload instead of guessed at.
    pub repeat: usize,
}

impl BenchOptions {
    /// The default invocation: full job-bearing suite, auto worker count.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            workers: 0,
            quick: false,
            figures: Vec::new(),
            segment_size: None,
            speculate: None,
            repeat: 1,
        }
    }
}

/// The experiment scale a bench report was measured at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchScale {
    /// Simulated processors per job.
    pub cpus: usize,
    /// Demand accesses per job.
    pub accesses: usize,
    /// Whether class-level figures used representative applications only.
    pub representative_only: bool,
    /// Accesses per segment used by the segment-parallel measurement.
    pub segment_size: usize,
    /// Run-ahead depth used by the speculative measurement.
    pub speculation: usize,
    /// Measured passes per figure; recorded timings are best-of-`repeats`.
    pub repeats: usize,
}

/// Throughput and speedup of one experiment's job list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureBench {
    /// Experiment name.
    pub figure: String,
    /// Jobs in the experiment's list.
    pub jobs: usize,
    /// Demand accesses simulated across the list (serial run).
    pub accesses: u64,
    /// Wall-clock seconds of the 1-worker run.
    pub serial_seconds: f64,
    /// Wall-clock seconds of the N-worker run.
    pub parallel_seconds: f64,
    /// Accesses/second of the 1-worker run.
    pub serial_accesses_per_sec: f64,
    /// Accesses/second of the N-worker run.
    pub parallel_accesses_per_sec: f64,
    /// `serial_seconds / parallel_seconds`.
    pub speedup: f64,
    /// Whether the N-worker results were bit-identical to the serial run
    /// (must always be `true`; recorded so the report proves it).
    pub deterministic: bool,
    /// Total wall-clock seconds of the unmeasured warm-up passes that
    /// precede the measured runs (the ordering-bias fix: cold-start cost
    /// lands here, not on whichever measured configuration runs first).
    /// The sum of the four per-configuration warm-up timings below.
    pub warmup_seconds: f64,
    /// Wall-clock seconds of the serial configuration's warm-up pass.  This
    /// and the three fields below are required as of envelope schema
    /// version 6; older reports recorded only the parallel warm-up total.
    pub warmup_serial_seconds: f64,
    /// Wall-clock seconds of the N-worker configuration's warm-up pass.
    pub warmup_parallel_seconds: f64,
    /// Wall-clock seconds of the segment-parallel configuration's warm-up
    /// pass.
    pub warmup_segmented_seconds: f64,
    /// Wall-clock seconds of the speculative configuration's warm-up pass.
    pub warmup_speculative_seconds: f64,
    /// Wall-clock seconds of the N-worker segment-parallel run.
    pub segmented_seconds: f64,
    /// Accesses/second of the segment-parallel run.
    pub segmented_accesses_per_sec: f64,
    /// `serial_seconds / segmented_seconds` — the intra-job pipeline's
    /// speedup over the serial run.
    pub segmented_speedup: f64,
    /// Whether the segment-parallel results were bit-identical to the
    /// serial run (must always be `true`).
    pub segmented_deterministic: bool,
    /// Wall-clock seconds of the speculative segment-parallel run (the
    /// segment pipeline with run-ahead speculation).  This and the fields
    /// below are required as of envelope schema version 3; `bench --against`
    /// reads pre-speculation reports leniently without them.
    pub speculative_seconds: f64,
    /// Accesses/second of the speculative run.
    pub speculative_accesses_per_sec: f64,
    /// `serial_seconds / speculative_seconds`.
    pub speculative_speedup: f64,
    /// Whether the speculative results were bit-identical to the serial run
    /// (must always be `true` — speculation commits only verified segments).
    pub speculative_deterministic: bool,
    /// Speculative segments that passed fingerprint verification and were
    /// committed, summed over the figure's jobs (must be nonzero: the
    /// speculative configuration has to actually speculate).
    pub speculation_commits: u64,
    /// Relative spread of the parallel-throughput samples across the
    /// repeated passes: `(max - min) / max`, `0.0` when a single pass was
    /// measured.  Required as of envelope schema version 4; a large spread
    /// means the host was noisy and the best-of-N numbers should be read
    /// with care.
    pub parallel_spread: f64,
    /// Wall-clock seconds of the cold served round trip: the figure's job
    /// list submitted to a local resident job server over its unix-domain
    /// socket, results streamed back frame by frame.  Includes protocol
    /// encode/decode and queue scheduling on top of the engine run, so the
    /// gap to `parallel_seconds` prices the serving overhead.  This and the
    /// fields below are required as of envelope schema version 5;
    /// `bench --against` reads pre-server reports leniently without them.
    pub served_seconds: f64,
    /// Accesses/second of the cold served round trip.
    pub served_accesses_per_sec: f64,
    /// `serial_seconds / served_seconds`.
    pub served_speedup: f64,
    /// Whether the served results were bit-identical to the serial run and
    /// the cold submission actually computed (must always be `true`).
    pub served_deterministic: bool,
    /// Best-of-`repeats` wall-clock seconds of resubmitting the identical
    /// spec: answered from the server's content-addressed result cache
    /// without touching the engine, so this prices pure replay throughput.
    pub served_cached_seconds: f64,
    /// Accesses/second of the cache-hit replay.
    pub served_cached_accesses_per_sec: f64,
    /// Whether every resubmission was answered from the cache with results
    /// bit-identical to the cold round trip (must always be `true`).
    pub served_cache_hit: bool,
}

/// The measured batched-vs-unbatched driver hot-path comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotPathBench {
    /// Stable name of the optimization being measured.
    pub optimization: String,
    /// Workload driven through both loops.
    pub workload: String,
    /// Demand accesses per measured pass.
    pub accesses: u64,
    /// Best-of-N wall-clock seconds of the pre-batching loop.
    pub before_seconds: f64,
    /// Best-of-N wall-clock seconds of the batched loop.
    pub after_seconds: f64,
    /// Accesses/second of the pre-batching loop.
    pub before_accesses_per_sec: f64,
    /// Accesses/second of the batched loop.
    pub after_accesses_per_sec: f64,
    /// `after_accesses_per_sec / before_accesses_per_sec`.
    pub speedup: f64,
    /// Whether both loops produced bit-identical summaries (must be `true`).
    pub identical_results: bool,
}

/// Whole-suite aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchTotals {
    /// Jobs across all measured experiments.
    pub jobs: u64,
    /// Demand accesses across all measured experiments (serial run).
    pub accesses: u64,
    /// Total 1-worker wall-clock seconds.
    pub serial_seconds: f64,
    /// Total N-worker wall-clock seconds.
    pub parallel_seconds: f64,
    /// Whole-suite parallel speedup.
    pub speedup: f64,
    /// Whole-suite N-worker throughput in accesses/second.
    pub parallel_accesses_per_sec: f64,
    /// Total segment-parallel wall-clock seconds.
    pub segmented_seconds: f64,
    /// Whole-suite segment-parallel speedup over serial.
    pub segmented_speedup: f64,
    /// Total speculative wall-clock seconds.
    pub speculative_seconds: f64,
    /// Whole-suite speculative speedup over serial.
    pub speculative_speedup: f64,
    /// Total cold served wall-clock seconds.
    pub served_seconds: f64,
    /// Whole-suite cold served speedup over serial (below the parallel
    /// speedup by exactly the serving overhead).
    pub served_speedup: f64,
    /// Total cache-hit replay wall-clock seconds.
    pub served_cached_seconds: f64,
    /// Whole-suite cache-hit replay speedup over serial.
    pub served_cached_speedup: f64,
}

/// The payload of a `BENCH_<name>.json` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report name (from `--name` / the default).
    pub name: String,
    /// Parallel worker count measured against serial.
    pub workers: usize,
    /// Hardware threads available on the measuring host — context for the
    /// recorded speedups (a 1-core container cannot show thread-level
    /// parallelism; segment-parallel gains there come from the pipeline's
    /// phase-batched cache locality alone).
    pub host_threads: usize,
    /// Scale the suite ran at.
    pub scale: BenchScale,
    /// Per-experiment throughput and speedup, in catalog order.
    pub figures: Vec<FigureBench>,
    /// Whole-suite aggregates.
    pub totals: BenchTotals,
    /// The batched stream-request hot-path comparison.
    pub hot_path: HotPathBench,
}

impl BenchReport {
    /// Wraps the report in the shared schema-versioned envelope
    /// (`kind: "bench"`).
    pub fn into_envelope(&self) -> MetricsReport {
        MetricsReport::new(REPORT_KIND, self)
    }

    /// Decodes and validates a report from its envelope.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant: a bad envelope, a
    /// kind other than `"bench"`, an undecodable payload, or a payload that
    /// fails [`BenchReport::validate`].
    pub fn from_envelope(envelope: &MetricsReport) -> Result<Self, String> {
        envelope.validate()?;
        let report: BenchReport = envelope.decode(REPORT_KIND)?.ok_or_else(|| {
            format!(
                "expected report kind {REPORT_KIND:?}, got {:?}",
                envelope.kind
            )
        })?;
        report.validate()?;
        Ok(report)
    }

    /// Validates the payload schema: the structural invariants external
    /// tooling (and CI) may rely on.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("bench report has no name".to_string());
        }
        if self.workers == 0 {
            return Err("bench report must record a resolved worker count".to_string());
        }
        if self.figures.is_empty() {
            return Err("bench report measured no experiments".to_string());
        }
        for figure in &self.figures {
            let f = &figure.figure;
            if figure.jobs == 0 || figure.accesses == 0 {
                return Err(format!("{f}: empty measurement"));
            }
            if !(figure.serial_seconds > 0.0
                && figure.parallel_seconds > 0.0
                && figure.segmented_seconds > 0.0
                && figure.speculative_seconds > 0.0)
            {
                return Err(format!("{f}: missing wall-clock timings"));
            }
            if !(figure.serial_accesses_per_sec > 0.0
                && figure.parallel_accesses_per_sec > 0.0
                && figure.segmented_accesses_per_sec > 0.0
                && figure.speculative_accesses_per_sec > 0.0)
            {
                return Err(format!("{f}: missing throughput"));
            }
            if !figure.speedup.is_finite() || figure.speedup <= 0.0 {
                return Err(format!("{f}: bad speedup {}", figure.speedup));
            }
            if !figure.segmented_speedup.is_finite() || figure.segmented_speedup <= 0.0 {
                return Err(format!(
                    "{f}: bad segmented speedup {}",
                    figure.segmented_speedup
                ));
            }
            if !figure.deterministic {
                return Err(format!(
                    "{f}: parallel results diverged from the serial run"
                ));
            }
            if !figure.segmented_deterministic {
                return Err(format!(
                    "{f}: segment-parallel results diverged from the serial run"
                ));
            }
            if !figure.speculative_speedup.is_finite() || figure.speculative_speedup <= 0.0 {
                return Err(format!(
                    "{f}: bad speculative speedup {}",
                    figure.speculative_speedup
                ));
            }
            if !figure.speculative_deterministic {
                return Err(format!(
                    "{f}: speculative results diverged from the serial run"
                ));
            }
            if figure.speculation_commits == 0 {
                return Err(format!(
                    "{f}: speculative run committed no speculative segments"
                ));
            }
            if !(figure.parallel_spread.is_finite() && (0.0..1.0).contains(&figure.parallel_spread))
            {
                return Err(format!("{f}: bad sample spread {}", figure.parallel_spread));
            }
            if !(figure.warmup_serial_seconds > 0.0
                && figure.warmup_parallel_seconds > 0.0
                && figure.warmup_segmented_seconds > 0.0
                && figure.warmup_speculative_seconds > 0.0)
            {
                return Err(format!("{f}: missing per-configuration warm-up timings"));
            }
            if !(figure.served_seconds > 0.0 && figure.served_cached_seconds > 0.0) {
                return Err(format!("{f}: missing served wall-clock timings"));
            }
            if !(figure.served_accesses_per_sec > 0.0
                && figure.served_cached_accesses_per_sec > 0.0)
            {
                return Err(format!("{f}: missing served throughput"));
            }
            if !figure.served_speedup.is_finite() || figure.served_speedup <= 0.0 {
                return Err(format!("{f}: bad served speedup {}", figure.served_speedup));
            }
            if !figure.served_deterministic {
                return Err(format!("{f}: served results diverged from the serial run"));
            }
            if !figure.served_cache_hit {
                return Err(format!(
                    "{f}: an identical resubmission was not answered from the result cache"
                ));
            }
        }
        if self.scale.repeats == 0 {
            return Err("bench report must record the measured repeat count".to_string());
        }
        let jobs: u64 = self.figures.iter().map(|f| f.jobs as u64).sum();
        let accesses: u64 = self.figures.iter().map(|f| f.accesses).sum();
        if self.totals.jobs != jobs || self.totals.accesses != accesses {
            return Err("bench totals do not match the per-figure rows".to_string());
        }
        if !(self.totals.speedup.is_finite() && self.totals.speedup > 0.0) {
            return Err("bench totals have no speedup".to_string());
        }
        let hot = &self.hot_path;
        if !(hot.before_accesses_per_sec > 0.0 && hot.after_accesses_per_sec > 0.0) {
            return Err("hot-path comparison has no throughput".to_string());
        }
        if !hot.identical_results {
            return Err("hot-path comparison changed simulated results".to_string());
        }
        Ok(())
    }
}

/// Runs the bench suite and builds the report.
///
/// # Errors
///
/// The engine's message for a job that failed to prepare (cannot happen for
/// catalog-declared jobs unless the build is broken — surfaced rather than
/// panicking so the CLI exits cleanly).
pub fn run_bench(options: &BenchOptions) -> Result<BenchReport, String> {
    run_bench_observed(options, &Trace::disabled())
}

/// [`run_bench`] with span tracing: the measured engine passes and the
/// resident bench server share `trace`, so a `bench --trace-out` run yields
/// one Chrome-trace document covering workers, segment stages, and the
/// served round trips.  The unmeasured warm-up passes stay untraced — they
/// exist to absorb cold-start noise, not to be looked at.  With a disabled
/// trace this *is* [`run_bench`].
///
/// # Errors
///
/// As [`run_bench`].
pub fn run_bench_observed(options: &BenchOptions, trace: &Trace) -> Result<BenchReport, String> {
    let (config, representative_only) = if options.quick {
        (ExperimentConfig::tiny(), true)
    } else {
        (ExperimentConfig::quick(), false)
    };
    let workers = resolve_workers(options.workers);
    let figures: Vec<String> = if options.figures.is_empty() {
        job_bearing_experiments()
            .into_iter()
            .map(str::to_string)
            .collect()
    } else {
        options.figures.clone()
    };

    let segment_size = options
        .segment_size
        .filter(|&s| s > 0)
        .unwrap_or_else(|| (config.accesses / 6).max(10_000));
    let speculation = options.speculate.filter(|&d| d > 0).unwrap_or(4);
    let repeats = options.repeat.max(1);
    let registry = Registry::builtin();
    let collect = MetricsConfig::enabled();

    // One resident job server for the whole bench run: each figure's cold
    // submission prices the protocol + scheduling overhead, each identical
    // resubmission the content-addressed result cache.  The socket name
    // carries the pid and a counter so concurrent benches (e.g. the test
    // suite running in one process) cannot collide.
    static BENCH_SERVER_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let socket = std::env::temp_dir().join(format!(
        "sms-bench-{}-{}.sock",
        std::process::id(),
        BENCH_SERVER_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let bench_server = server::Server::start(server::ServerConfig {
        unix_socket: Some(socket.clone()),
        tcp: None,
        quota: 0,
        workers,
        cache_max_entries: 0,
        cache_max_bytes: 0,
        trace: trace.clone(),
        ..server::ServerConfig::default()
    })
    .map_err(|e| format!("bench job server failed to start: {e}"))?;
    let endpoint = server::Endpoint::Unix(socket);
    let submit_options = server::SubmitOptions {
        client: "bench".to_string(),
        workers,
        ..server::SubmitOptions::default()
    };

    // The measuring loop runs inside a closure so the bench server is shut
    // down (queue drained, socket file removed) on the error path too.
    let measure = || -> Result<Vec<FigureBench>, String> {
        let mut rows = Vec::with_capacity(figures.len());
        for name in &figures {
            let jobs = figure_jobs(name, &config, representative_only)
                .ok_or_else(|| format!("{name}: not a job-bearing experiment"))?;
            // Unmeasured warm-up of *each* configuration: pages, the
            // allocator, thread stacks and per-configuration code paths are
            // hot before any measured pass, so measurement order stops
            // biasing the serial-vs-parallel ratio.  Each pass is timed
            // individually — the report records per-configuration warm-up
            // wall-clock next to host_threads, so a suspicious measured
            // number can be cross-checked against its own cold pass.
            let warm = |config: &EngineConfig| -> Result<f64, String> {
                let watch = Stopwatch::started();
                run_jobs_metered(&jobs, config, registry, &MetricsConfig::disabled())
                    .map_err(|e| e.to_string())?;
                Ok(watch.elapsed_seconds())
            };
            let warmup_serial_seconds = warm(&EngineConfig::serial())?;
            let warmup_parallel_seconds = warm(&EngineConfig::with_workers(workers))?;
            let warmup_segmented_seconds =
                warm(&EngineConfig::with_workers(workers).with_segment_size(segment_size))?;
            let warmup_speculative_seconds = warm(
                &EngineConfig::with_workers(workers)
                    .with_segment_size(segment_size)
                    .with_speculation(speculation),
            )?;
            let warmup_seconds = warmup_serial_seconds
                + warmup_parallel_seconds
                + warmup_segmented_seconds
                + warmup_speculative_seconds;

            // Best-of-N measurement: every configuration runs `repeats` times,
            // the minimum wall-clock per configuration is recorded, and the
            // relative spread of the parallel-throughput samples lands in the
            // payload so a noisy host is visible instead of guessed at.
            // Determinism must hold on *every* pass, not just the fastest one.
            let mut accesses = 0u64;
            let mut baseline: Vec<JobResult> = Vec::new();
            let mut serial_seconds = f64::INFINITY;
            let mut parallel_seconds = f64::INFINITY;
            let mut segmented_seconds = f64::INFINITY;
            let mut speculative_seconds = f64::INFINITY;
            let mut deterministic = true;
            let mut segmented_deterministic = true;
            let mut speculative_deterministic = true;
            let mut speculation_commits = 0u64;
            let mut parallel_samples = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let (serial_results, serial) =
                    run_jobs_observed(&jobs, &EngineConfig::serial(), registry, &collect, trace)
                        .map_err(|e| e.to_string())?;
                let (parallel_results, parallel) = run_jobs_observed(
                    &jobs,
                    &EngineConfig::with_workers(workers),
                    registry,
                    &collect,
                    trace,
                )
                .map_err(|e| e.to_string())?;
                let (segmented_results, segmented) = run_jobs_observed(
                    &jobs,
                    &EngineConfig::with_workers(workers).with_segment_size(segment_size),
                    registry,
                    &collect,
                    trace,
                )
                .map_err(|e| e.to_string())?;
                let (speculative_results, speculative) = run_jobs_observed(
                    &jobs,
                    &EngineConfig::with_workers(workers)
                        .with_segment_size(segment_size)
                        .with_speculation(speculation),
                    registry,
                    &collect,
                    trace,
                )
                .map_err(|e| e.to_string())?;
                accesses = serial.total_accesses;
                deterministic &= serial_results == parallel_results;
                segmented_deterministic &= serial_results == segmented_results;
                speculative_deterministic &= serial_results == speculative_results;
                serial_seconds = serial_seconds.min(serial.total_seconds);
                parallel_seconds = parallel_seconds.min(parallel.total_seconds);
                segmented_seconds = segmented_seconds.min(segmented.total_seconds);
                // The commit count rides with the fastest speculative pass, so
                // the recorded timing and its commit activity stay one story.
                if speculative.total_seconds < speculative_seconds {
                    speculative_seconds = speculative.total_seconds;
                    speculation_commits = speculative.jobs.iter().map(|j| j.spec_commits).sum();
                }
                parallel_samples.push(parallel.accesses_per_sec);
                baseline = serial_results;
            }

            // Served measurements: one cold round trip through the local job
            // server (the engine computes, so the frames must match the serial
            // baseline and must NOT come from the cache), then best-of-N
            // identical resubmissions, each of which must be answered from the
            // content-addressed result cache with bit-identical frames.
            let list = JobList::new(jobs.clone());
            let watch = Stopwatch::started();
            let cold = server::client::submit(&endpoint, &list, &submit_options, &mut |_| {})
                .map_err(|e| format!("{name}: served submission failed: {e}"))?;
            let served_seconds = watch.elapsed_seconds();
            let cold_results: Vec<JobResult> =
                cold.frames.iter().map(|f| f.result.clone()).collect();
            let served_deterministic = !cold.done.cache_hit && cold_results == baseline;
            let mut served_cached_seconds = f64::INFINITY;
            let mut served_cache_hit = true;
            for _ in 0..repeats {
                let watch = Stopwatch::started();
                let replay = server::client::submit(&endpoint, &list, &submit_options, &mut |_| {})
                    .map_err(|e| format!("{name}: cached resubmission failed: {e}"))?;
                served_cached_seconds = served_cached_seconds.min(watch.elapsed_seconds());
                let replay_results: Vec<JobResult> =
                    replay.frames.iter().map(|f| f.result.clone()).collect();
                served_cache_hit &= replay.done.cache_hit && replay_results == cold_results;
            }

            rows.push(FigureBench {
                figure: name.clone(),
                jobs: jobs.len(),
                accesses,
                serial_seconds,
                parallel_seconds,
                serial_accesses_per_sec: per_sec(accesses, serial_seconds),
                parallel_accesses_per_sec: per_sec(accesses, parallel_seconds),
                speedup: ratio(serial_seconds, parallel_seconds),
                deterministic,
                warmup_seconds,
                warmup_serial_seconds,
                warmup_parallel_seconds,
                warmup_segmented_seconds,
                warmup_speculative_seconds,
                segmented_seconds,
                segmented_accesses_per_sec: per_sec(accesses, segmented_seconds),
                segmented_speedup: ratio(serial_seconds, segmented_seconds),
                segmented_deterministic,
                speculative_seconds,
                speculative_accesses_per_sec: per_sec(accesses, speculative_seconds),
                speculative_speedup: ratio(serial_seconds, speculative_seconds),
                speculative_deterministic,
                speculation_commits,
                parallel_spread: sample_spread(&parallel_samples),
                served_seconds,
                served_accesses_per_sec: per_sec(accesses, served_seconds),
                served_speedup: ratio(serial_seconds, served_seconds),
                served_deterministic,
                served_cached_seconds,
                served_cached_accesses_per_sec: per_sec(accesses, served_cached_seconds),
                served_cache_hit,
            });
        }
        Ok(rows)
    };
    let rows = measure();
    // Drain and join the bench server before surfacing any measurement
    // error, so a failed bench never leaks the scheduler thread or the
    // socket file.
    bench_server.shutdown();
    let rows = rows?;

    let totals = BenchTotals {
        jobs: rows.iter().map(|f| f.jobs as u64).sum(),
        accesses: rows.iter().map(|f| f.accesses).sum(),
        serial_seconds: rows.iter().map(|f| f.serial_seconds).sum(),
        parallel_seconds: rows.iter().map(|f| f.parallel_seconds).sum(),
        speedup: ratio(
            rows.iter().map(|f| f.serial_seconds).sum(),
            rows.iter().map(|f| f.parallel_seconds).sum(),
        ),
        parallel_accesses_per_sec: per_sec(
            rows.iter().map(|f| f.accesses).sum(),
            rows.iter().map(|f| f.parallel_seconds).sum(),
        ),
        segmented_seconds: rows.iter().map(|f| f.segmented_seconds).sum(),
        segmented_speedup: ratio(
            rows.iter().map(|f| f.serial_seconds).sum(),
            rows.iter().map(|f| f.segmented_seconds).sum(),
        ),
        speculative_seconds: rows.iter().map(|f| f.speculative_seconds).sum(),
        speculative_speedup: ratio(
            rows.iter().map(|f| f.serial_seconds).sum(),
            rows.iter().map(|f| f.speculative_seconds).sum(),
        ),
        served_seconds: rows.iter().map(|f| f.served_seconds).sum(),
        served_speedup: ratio(
            rows.iter().map(|f| f.serial_seconds).sum(),
            rows.iter().map(|f| f.served_seconds).sum(),
        ),
        served_cached_seconds: rows.iter().map(|f| f.served_cached_seconds).sum(),
        served_cached_speedup: ratio(
            rows.iter().map(|f| f.serial_seconds).sum(),
            rows.iter().map(|f| f.served_cached_seconds).sum(),
        ),
    };

    Ok(BenchReport {
        name: options.name.clone(),
        workers,
        host_threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        scale: BenchScale {
            cpus: config.cpus,
            accesses: config.accesses,
            representative_only,
            segment_size,
            speculation,
            repeats,
        },
        figures: rows,
        totals,
        hot_path: measure_hot_path(&config),
    })
}

/// One figure's entry in a [`BenchDiff`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureDiff {
    /// Experiment name.
    pub figure: String,
    /// Parallel accesses/second in the old report.
    pub old_accesses_per_sec: f64,
    /// Parallel accesses/second in the new report.
    pub new_accesses_per_sec: f64,
    /// `new / old` — below 1.0 means the figure got slower.
    pub ratio: f64,
    /// Whether the ratio fell below the regression threshold.
    pub regressed: bool,
}

/// The result of comparing a fresh bench report against a recorded one
/// (`bench --against OLD.json`): per-figure throughput ratios and the
/// regression verdict.  Serialized (kind `"bench-diff"`) as the CI diff
/// artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDiff {
    /// Name of the new report.
    pub name: String,
    /// Name recorded in the old report.
    pub against: String,
    /// Minimum acceptable `new / old` throughput ratio.
    pub threshold: f64,
    /// Figures present in both reports, in new-report order.
    pub figures: Vec<FigureDiff>,
    /// Figures only in the new report (not compared).
    pub added: Vec<String>,
    /// Figures only in the old report (not compared).
    pub removed: Vec<String>,
    /// Whether any compared figure regressed below the threshold.
    pub regressed: bool,
}

/// The [`MetricsReport`] kind tag of a serialized bench diff.
pub const DIFF_REPORT_KIND: &str = "bench-diff";

impl BenchDiff {
    /// Wraps the diff in the shared schema-versioned envelope.
    pub fn into_envelope(&self) -> MetricsReport {
        MetricsReport::new(DIFF_REPORT_KIND, self)
    }
}

/// Compares a fresh report against the JSON text of a previously recorded
/// `BENCH_*.json`.
///
/// The old file is read *leniently* — only the envelope shape and each
/// figure's `figure` + `parallel_accesses_per_sec` are required — so reports
/// recorded by older builds (before the segment-parallel columns existed)
/// remain comparable.  A figure regresses when its new parallel throughput
/// falls below `threshold * old`; absolute throughput is machine-dependent,
/// so compare reports recorded on comparable hosts (CI against CI).
///
/// # Errors
///
/// A description of why the old file cannot be compared: not a metrics
/// envelope, wrong report kind, or no comparable figures.
pub fn diff_reports(
    new: &BenchReport,
    old_json: &str,
    threshold: f64,
) -> Result<BenchDiff, String> {
    if !(threshold.is_finite() && threshold > 0.0) {
        return Err(format!(
            "threshold must be a positive number, got {threshold}"
        ));
    }
    let envelope: serde_json::Value =
        serde_json::from_str(old_json).map_err(|e| format!("not JSON: {e}"))?;
    let kind = envelope
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| "not a metrics report envelope (no \"kind\")".to_string())?;
    if kind != REPORT_KIND {
        return Err(format!("expected a {REPORT_KIND:?} report, got {kind:?}"));
    }
    let data = envelope
        .get("data")
        .ok_or_else(|| "envelope has no payload".to_string())?;
    let old_name = data
        .get("name")
        .and_then(|n| n.as_str())
        .unwrap_or("<unnamed>")
        .to_string();
    let old_figures = data
        .get("figures")
        .and_then(|f| f.as_array())
        .ok_or_else(|| "old report has no figures".to_string())?;
    let mut old_throughput: Vec<(String, f64)> = Vec::new();
    for figure in old_figures {
        let name = figure
            .get("figure")
            .and_then(|n| n.as_str())
            .ok_or_else(|| "old report figure without a name".to_string())?;
        let throughput = figure
            .get("parallel_accesses_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("old report figure {name}: no parallel throughput"))?;
        old_throughput.push((name.to_string(), throughput));
    }

    let mut figures = Vec::new();
    let mut added = Vec::new();
    for figure in &new.figures {
        match old_throughput
            .iter()
            .find(|(name, _)| *name == figure.figure)
        {
            Some((_, old_per_sec)) if *old_per_sec > 0.0 => {
                let ratio = figure.parallel_accesses_per_sec / old_per_sec;
                figures.push(FigureDiff {
                    figure: figure.figure.clone(),
                    old_accesses_per_sec: *old_per_sec,
                    new_accesses_per_sec: figure.parallel_accesses_per_sec,
                    ratio,
                    regressed: ratio < threshold,
                });
            }
            // A present-but-unusable baseline must fail loudly, not be
            // silently skipped as if the figure were new.
            Some((_, old_per_sec)) => {
                return Err(format!(
                    "old report figure {}: non-positive parallel throughput {old_per_sec}",
                    figure.figure
                ));
            }
            None => added.push(figure.figure.clone()),
        }
    }
    let removed: Vec<String> = old_throughput
        .iter()
        .filter(|(name, _)| !new.figures.iter().any(|f| f.figure == *name))
        .map(|(name, _)| name.clone())
        .collect();
    if figures.is_empty() {
        return Err("no figures in common between the two reports".to_string());
    }
    let regressed = figures.iter().any(|f| f.regressed);
    Ok(BenchDiff {
        name: new.name.clone(),
        against: old_name,
        threshold,
        figures,
        added,
        removed,
        regressed,
    })
}

/// Renders a [`BenchDiff`] as the human-readable table the CLI prints.
pub fn render_diff(diff: &BenchDiff) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench {:?} vs {:?} (regression threshold {:.2}x):",
        diff.name, diff.against, diff.threshold
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>7}",
        "figure", "old acc/s", "new acc/s", "ratio"
    );
    for f in &diff.figures {
        let _ = writeln!(
            out,
            "{:<10} {:>14.0} {:>14.0} {:>6.2}x{}",
            f.figure,
            f.old_accesses_per_sec,
            f.new_accesses_per_sec,
            f.ratio,
            if f.regressed { "  <-- REGRESSED" } else { "" }
        );
    }
    for name in &diff.added {
        let _ = writeln!(out, "{name:<10} (new figure, not compared)");
    }
    for name in &diff.removed {
        let _ = writeln!(out, "{name:<10} (dropped figure, not compared)");
    }
    out
}

/// Measures the batched driver loop against the kept pre-batching loop on an
/// SMS run over a scan-heavy workload (many stream requests, so the
/// per-access allocation the batching removed is actually on the path).
///
/// Best-of-`PASSES` (currently 5) wall-clock per side; both sides must
/// produce bit-identical summaries, recorded in
/// [`identical_results`](HotPathBench::identical_results).
fn measure_hot_path(config: &ExperimentConfig) -> HotPathBench {
    const PASSES: usize = 5;
    // Dense scientific generations stream many blocks per trigger, so the
    // per-access request handling being measured is actually on the path.
    // The access floor keeps the wall-clock interval long enough to measure
    // even at the reduced CI scale.
    let app = Application::Ocean;
    let accesses = config.accesses.max(100_000);
    let spec = PrefetcherSpec::sms_paper_default();
    let source = TraceSource::synthetic(app, config.generator(), config.seed);
    let registry = Registry::builtin();

    let measure = |batched: bool| -> (f64, memsim::RunSummary) {
        let mut best = f64::INFINITY;
        let mut summary = None;
        for _ in 0..PASSES {
            let mut prefetcher = registry
                .build(&spec, config.cpus)
                .expect("built-in sms plugin");
            let mut system = MultiCpuSystem::new(config.cpus, &config.hierarchy);
            let mut stream = source.open().expect("synthetic sources cannot fail");
            let watch = Stopwatch::started();
            let s = if batched {
                memsim::run(&mut system, &mut prefetcher, &mut stream, accesses)
            } else {
                memsim::run_unbatched(&mut system, &mut prefetcher, &mut stream, accesses)
            };
            best = best.min(watch.elapsed_seconds());
            summary = Some(s);
        }
        (best, summary.expect("at least one pass"))
    };

    let (before_seconds, before_summary) = measure(false);
    let (after_seconds, after_summary) = measure(true);
    let accesses = after_summary.accesses;
    let before_accesses_per_sec = per_sec(accesses, before_seconds);
    let after_accesses_per_sec = per_sec(accesses, after_seconds);
    HotPathBench {
        optimization: "batched-stream-requests".to_string(),
        workload: format!("sms/{app}"),
        accesses,
        before_seconds,
        after_seconds,
        before_accesses_per_sec,
        after_accesses_per_sec,
        speedup: ratio(before_seconds, after_seconds),
        identical_results: before_summary == after_summary,
    }
}

/// `0` means one worker per available hardware thread (min 2, so the
/// speedup comparison is never against itself on a single-core runner).
fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(2)
        .max(2)
}

/// Relative spread of throughput samples: `(max - min) / max`, `0.0` for a
/// single sample (or an empty/degenerate set).
fn sample_spread(samples: &[f64]) -> f64 {
    let max = samples.iter().fold(0.0f64, |a, &s| a.max(s));
    let min = samples.iter().fold(f64::INFINITY, |a, &s| a.min(s));
    if max > 0.0 && min.is_finite() {
        (max - min) / max
    } else {
        0.0
    }
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator > 0.0 {
        numerator / denominator
    } else {
        0.0
    }
}

/// Renders the report as the human-readable summary the CLI prints.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench {:?}: {} jobs, {} accesses, workers 1 vs {}, segments of {}, \
         speculation depth {}, best of {} pass{} (scale: {} cpus x {} accesses{}; \
         host threads: {})",
        report.name,
        report.totals.jobs,
        report.totals.accesses,
        report.workers,
        report.scale.segment_size,
        report.scale.speculation,
        report.scale.repeats,
        if report.scale.repeats == 1 { "" } else { "es" },
        report.scale.cpus,
        report.scale.accesses,
        if report.scale.representative_only {
            ", representative apps"
        } else {
            ""
        },
        report.host_threads,
    );
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>10} {:>14} {:>14} {:>8} {:>14} {:>8} {:>14} {:>8} {:>8} {:>14} {:>8} {:>14}",
        "figure",
        "jobs",
        "accesses",
        "serial acc/s",
        "par acc/s",
        "par",
        "seg acc/s",
        "seg",
        "spec acc/s",
        "spec",
        "commits",
        "srv acc/s",
        "srv",
        "cached acc/s"
    );
    for f in &report.figures {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>10} {:>14.0} {:>14.0} {:>7.2}x {:>14.0} {:>7.2}x {:>14.0} {:>7.2}x {:>8} {:>14.0} {:>7.2}x {:>14.0}",
            f.figure,
            f.jobs,
            f.accesses,
            f.serial_accesses_per_sec,
            f.parallel_accesses_per_sec,
            f.speedup,
            f.segmented_accesses_per_sec,
            f.segmented_speedup,
            f.speculative_accesses_per_sec,
            f.speculative_speedup,
            f.speculation_commits,
            f.served_accesses_per_sec,
            f.served_speedup,
            f.served_cached_accesses_per_sec,
        );
    }
    let t = &report.totals;
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>10} {:>14} {:>14.0} {:>7.2}x {:>14} {:>7.2}x {:>14} {:>7.2}x {:>8} {:>14} {:>7.2}x",
        "total",
        t.jobs,
        t.accesses,
        "",
        t.parallel_accesses_per_sec,
        t.speedup,
        "",
        t.segmented_speedup,
        "",
        t.speculative_speedup,
        "",
        "",
        t.served_speedup,
    );
    let h = &report.hot_path;
    let _ = writeln!(
        out,
        "hot path {} on {}: {:.0} -> {:.0} accesses/sec ({:.2}x, identical results: {})",
        h.optimization,
        h.workload,
        h.before_accesses_per_sec,
        h.after_accesses_per_sec,
        h.speedup,
        h.identical_results,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> BenchOptions {
        BenchOptions {
            name: "test".to_string(),
            workers: 2,
            quick: true,
            figures: vec!["fig5".to_string(), "fig11".to_string()],
            segment_size: None,
            speculate: None,
            repeat: 1,
        }
    }

    #[test]
    fn bench_runs_validates_and_round_trips() {
        let report = run_bench(&quick_options()).expect("bench runs");
        report.validate().expect("fresh report validates");
        assert_eq!(report.figures.len(), 2);
        assert_eq!(report.workers, 2);
        assert!(report.figures.iter().all(|f| f.deterministic));
        assert!(
            report.figures.iter().all(|f| f.segmented_deterministic),
            "segment-parallel results must be bit-identical"
        );
        assert!(
            report.figures.iter().all(|f| f.speculative_deterministic),
            "speculative results must be bit-identical"
        );
        assert!(
            report.figures.iter().all(|f| f.speculation_commits > 0),
            "the speculative configuration must actually commit speculative segments"
        );
        assert!(
            report.figures.iter().all(|f| f.served_deterministic),
            "served results must be bit-identical to the serial run"
        );
        assert!(
            report.figures.iter().all(|f| f.served_cache_hit),
            "identical resubmissions must be answered from the result cache"
        );
        assert!(report
            .figures
            .iter()
            .all(|f| f.served_seconds > 0.0 && f.served_cached_seconds > 0.0));
        assert!(report.figures.iter().all(|f| f.warmup_seconds > 0.0));
        assert!(
            report.figures.iter().all(|f| {
                let sum = f.warmup_serial_seconds
                    + f.warmup_parallel_seconds
                    + f.warmup_segmented_seconds
                    + f.warmup_speculative_seconds;
                f.warmup_serial_seconds > 0.0
                    && f.warmup_parallel_seconds > 0.0
                    && f.warmup_segmented_seconds > 0.0
                    && f.warmup_speculative_seconds > 0.0
                    && (f.warmup_seconds - sum).abs() < 1e-9
            }),
            "every configuration records its own warm-up wall-clock"
        );
        assert!(
            report.figures.iter().all(|f| f.parallel_spread == 0.0),
            "a single pass has no spread"
        );
        assert_eq!(report.scale.repeats, 1, "default is one measured pass");
        assert!(report.scale.segment_size > 0);
        assert_eq!(report.scale.speculation, 4, "default speculation depth");
        assert!(report.host_threads >= 1);
        assert!(report.hot_path.identical_results);
        assert!(report.hot_path.before_accesses_per_sec > 0.0);
        assert!(report.hot_path.after_accesses_per_sec > 0.0);

        // Envelope round trip, as the CLI writes and `--check` reads it.
        let envelope = report.into_envelope();
        let json = serde_json::to_string_pretty(&envelope).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        let decoded = BenchReport::from_envelope(&back).expect("valid envelope");
        assert_eq!(decoded, report);

        let human = render(&report);
        assert!(human.contains("fig5"));
        assert!(human.contains("batched-stream-requests"));

        // A report diffed against itself never regresses.
        let diff = diff_reports(&report, &json, 0.5).expect("self-diff");
        assert!(!diff.regressed);
        assert_eq!(diff.figures.len(), report.figures.len());
        assert!(diff.added.is_empty() && diff.removed.is_empty());
    }

    #[test]
    fn repeated_passes_record_best_of_n_and_spread() {
        let mut options = quick_options();
        options.figures = vec!["fig5".to_string()];
        options.repeat = 3;
        let report = run_bench(&options).expect("bench runs");
        report.validate().expect("repeated report validates");
        assert_eq!(report.scale.repeats, 3);
        let figure = &report.figures[0];
        // The spread is measured, not assumed zero: three samples on a real
        // host essentially never coincide exactly, but all the invariant
        // demands is a well-formed relative spread.
        assert!(figure.parallel_spread.is_finite());
        assert!((0.0..1.0).contains(&figure.parallel_spread));
        // Best-of-N throughput is derived from the recorded best seconds.
        let derived = figure.accesses as f64 / figure.parallel_seconds;
        assert!((figure.parallel_accesses_per_sec - derived).abs() < 1e-6 * derived);
        assert!(figure.deterministic && figure.segmented_deterministic);
        assert!(figure.speculative_deterministic && figure.speculation_commits > 0);
    }

    #[test]
    fn sample_spread_is_relative_max_minus_min() {
        assert_eq!(sample_spread(&[]), 0.0);
        assert_eq!(sample_spread(&[250_000.0]), 0.0);
        let spread = sample_spread(&[100_000.0, 80_000.0, 90_000.0]);
        assert!((spread - 0.2).abs() < 1e-12, "got {spread}");
        assert_eq!(sample_spread(&[0.0, 0.0]), 0.0, "degenerate samples");
    }

    /// A hand-built, schema-valid report (no simulation needed), so the
    /// validation tests stay fast.
    fn fixture() -> BenchReport {
        let figure = FigureBench {
            figure: "fig5".to_string(),
            jobs: 4,
            accesses: 80_000,
            serial_seconds: 2.0,
            parallel_seconds: 1.0,
            serial_accesses_per_sec: 40_000.0,
            parallel_accesses_per_sec: 80_000.0,
            speedup: 2.0,
            deterministic: true,
            warmup_seconds: 1.1,
            warmup_serial_seconds: 0.5,
            warmup_parallel_seconds: 0.2,
            warmup_segmented_seconds: 0.2,
            warmup_speculative_seconds: 0.2,
            segmented_seconds: 1.25,
            segmented_accesses_per_sec: 64_000.0,
            segmented_speedup: 1.6,
            segmented_deterministic: true,
            speculative_seconds: 1.0,
            speculative_accesses_per_sec: 80_000.0,
            speculative_speedup: 2.0,
            speculative_deterministic: true,
            speculation_commits: 8,
            parallel_spread: 0.0,
            served_seconds: 1.1,
            served_accesses_per_sec: 72_727.0,
            served_speedup: 1.8,
            served_deterministic: true,
            served_cached_seconds: 0.01,
            served_cached_accesses_per_sec: 8_000_000.0,
            served_cache_hit: true,
        };
        BenchReport {
            name: "fixture".to_string(),
            workers: 2,
            host_threads: 4,
            scale: BenchScale {
                cpus: 2,
                accesses: 20_000,
                representative_only: true,
                segment_size: 10_000,
                speculation: 4,
                repeats: 1,
            },
            totals: BenchTotals {
                jobs: 4,
                accesses: 80_000,
                serial_seconds: 2.0,
                parallel_seconds: 1.0,
                speedup: 2.0,
                parallel_accesses_per_sec: 80_000.0,
                segmented_seconds: 1.25,
                segmented_speedup: 1.6,
                speculative_seconds: 1.0,
                speculative_speedup: 2.0,
                served_seconds: 1.1,
                served_speedup: 1.8,
                served_cached_seconds: 0.01,
                served_cached_speedup: 200.0,
            },
            figures: vec![figure],
            hot_path: HotPathBench {
                optimization: "batched-stream-requests".to_string(),
                workload: "sms/dss-qry1".to_string(),
                accesses: 20_000,
                before_seconds: 0.2,
                after_seconds: 0.1,
                before_accesses_per_sec: 100_000.0,
                after_accesses_per_sec: 200_000.0,
                speedup: 2.0,
                identical_results: true,
            },
        }
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let report = fixture();
        report.validate().expect("fixture is valid");

        let mut broken = report.clone();
        broken.figures[0].deterministic = false;
        assert!(broken.validate().unwrap_err().contains("diverged"));

        let mut broken = report.clone();
        broken.hot_path.identical_results = false;
        assert!(broken.validate().unwrap_err().contains("hot-path"));

        let mut broken = report.clone();
        broken.totals.jobs += 1;
        assert!(broken.validate().unwrap_err().contains("totals"));

        let mut broken = report.clone();
        broken.figures[0].serial_seconds = 0.0;
        assert!(broken.validate().unwrap_err().contains("wall-clock"));

        let mut broken = report.clone();
        broken.figures[0].parallel_spread = f64::NAN;
        assert!(broken.validate().unwrap_err().contains("sample spread"));

        let mut broken = report.clone();
        broken.figures[0].parallel_spread = 1.5;
        assert!(broken.validate().unwrap_err().contains("sample spread"));

        let mut broken = report.clone();
        broken.figures[0].warmup_segmented_seconds = 0.0;
        assert!(broken.validate().unwrap_err().contains("warm-up"));

        let mut broken = report.clone();
        broken.scale.repeats = 0;
        assert!(broken.validate().unwrap_err().contains("repeat count"));

        let mut broken = report;
        broken.figures.clear();
        assert!(broken.validate().unwrap_err().contains("no experiments"));
    }

    #[test]
    fn validation_rejects_broken_served_runs() {
        let mut broken = fixture();
        broken.figures[0].served_deterministic = false;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("served results diverged"));

        let mut broken = fixture();
        broken.figures[0].served_cache_hit = false;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("not answered from the result cache"));

        let mut broken = fixture();
        broken.figures[0].served_seconds = 0.0;
        assert!(broken.validate().unwrap_err().contains("served wall-clock"));

        let mut broken = fixture();
        broken.figures[0].served_cached_accesses_per_sec = 0.0;
        assert!(broken.validate().unwrap_err().contains("served throughput"));

        let mut broken = fixture();
        broken.figures[0].served_speedup = f64::NAN;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("bad served speedup"));
    }

    #[test]
    fn validation_rejects_segmented_divergence() {
        let mut broken = fixture();
        broken.figures[0].segmented_deterministic = false;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("segment-parallel results diverged"));

        let mut broken = fixture();
        broken.figures[0].segmented_seconds = 0.0;
        assert!(broken.validate().unwrap_err().contains("wall-clock"));
    }

    #[test]
    fn validation_rejects_broken_speculative_runs() {
        let mut broken = fixture();
        broken.figures[0].speculative_deterministic = false;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("speculative results diverged"));

        let mut broken = fixture();
        broken.figures[0].speculative_seconds = 0.0;
        assert!(broken.validate().unwrap_err().contains("wall-clock"));

        let mut broken = fixture();
        broken.figures[0].speculative_accesses_per_sec = 0.0;
        assert!(broken.validate().unwrap_err().contains("throughput"));

        let mut broken = fixture();
        broken.figures[0].speculative_speedup = f64::NAN;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("bad speculative speedup"));

        // A "speculative" run that never speculated is a measurement bug,
        // not a slow run.
        let mut broken = fixture();
        broken.figures[0].speculation_commits = 0;
        assert!(broken
            .validate()
            .unwrap_err()
            .contains("committed no speculative segments"));
    }

    /// Asserts the exact `bench-diff` envelope contract: the kind tag, the
    /// current schema version, a validating envelope, and a payload that
    /// JSON-round-trips back to `diff` bit for bit.
    fn assert_diff_envelope(diff: &BenchDiff) {
        let envelope = diff.into_envelope();
        assert_eq!(envelope.kind, DIFF_REPORT_KIND);
        assert_eq!(envelope.schema_version, MetricsReport::SCHEMA_VERSION);
        envelope.validate().expect("diff envelope validates");
        let json = serde_json::to_string(&envelope).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        let decoded: BenchDiff = back
            .decode(DIFF_REPORT_KIND)
            .expect("payload decodes")
            .expect("kind matches");
        assert_eq!(&decoded, diff);
    }

    /// A two-figure report: the fixture's fig5 plus a fig11 at half its
    /// throughput (totals don't matter to `diff_reports`).
    fn two_figure_fixture() -> BenchReport {
        let mut report = fixture();
        let mut second = report.figures[0].clone();
        second.figure = "fig11".to_string();
        second.parallel_accesses_per_sec = 40_000.0;
        report.figures.push(second);
        report
    }

    #[test]
    fn diff_handles_a_figure_missing_from_the_old_baseline() {
        // The old report predates fig11: the diff must compare fig5, list
        // fig11 as added (not compared), and not invent a regression.
        let new = two_figure_fixture();
        let old = fixture();
        let old_json = serde_json::to_string(&old.into_envelope()).unwrap();

        let diff = diff_reports(&new, &old_json, 0.8).expect("comparable");
        assert_eq!(
            diff.figures,
            vec![FigureDiff {
                figure: "fig5".to_string(),
                old_accesses_per_sec: 80_000.0,
                new_accesses_per_sec: 80_000.0,
                ratio: 1.0,
                regressed: false,
            }]
        );
        assert_eq!(diff.added, vec!["fig11".to_string()]);
        assert!(diff.removed.is_empty());
        assert!(!diff.regressed);
        assert_diff_envelope(&diff);

        // No overlap at all is an error, not an empty success: an all-new
        // figure set means the baseline is not comparable.
        let mut renamed = fixture();
        renamed.figures[0].figure = "figX".to_string();
        let err = diff_reports(&renamed, &old_json, 0.8).unwrap_err();
        assert_eq!(err, "no figures in common between the two reports");
    }

    #[test]
    fn diff_errors_when_an_old_baseline_figure_has_zero_throughput() {
        // A present-but-unusable baseline entry (recorded zero throughput)
        // must fail with the exact named-figure error, never be skipped.
        let mut old = fixture();
        old.figures[0].parallel_accesses_per_sec = 0.0;
        let old_json = serde_json::to_string(&old.into_envelope()).unwrap();
        let err = diff_reports(&fixture(), &old_json, 0.8).unwrap_err();
        assert_eq!(
            err,
            "old report figure fig5: non-positive parallel throughput 0"
        );
    }

    #[test]
    fn diff_parses_a_schema_version_1_baseline_leniently() {
        // A version-1 envelope (the BENCH_pr4.json era: no segmented or
        // speculative columns, no host_threads) must still diff — only the
        // figure names and parallel throughput matter — and the resulting
        // diff must satisfy the exact current bench-diff envelope contract.
        let old_json = r#"{
            "schema_version": 1,
            "kind": "bench",
            "data": {
                "name": "pr4",
                "workers": 2,
                "figures": [
                    {"figure": "fig5", "jobs": 4, "parallel_accesses_per_sec": 160000.0}
                ]
            }
        }"#;
        let diff = diff_reports(&fixture(), old_json, 0.8).expect("v1 baseline comparable");
        assert_eq!(
            diff,
            BenchDiff {
                name: "fixture".to_string(),
                against: "pr4".to_string(),
                threshold: 0.8,
                figures: vec![FigureDiff {
                    figure: "fig5".to_string(),
                    old_accesses_per_sec: 160_000.0,
                    new_accesses_per_sec: 80_000.0,
                    ratio: 0.5,
                    regressed: true,
                }],
                added: Vec::new(),
                removed: Vec::new(),
                regressed: true,
            }
        );
        assert_diff_envelope(&diff);
    }

    #[test]
    fn threshold_exactly_at_the_boundary_is_not_a_regression() {
        // The gate is `ratio < threshold`, strictly: a figure sitting
        // exactly at the threshold passes.  100k -> 80k at threshold 0.8
        // gives a ratio equal to the 0.8 threshold double, which must not
        // regress; a threshold a hair above the ratio must.
        let mut old = fixture();
        old.figures[0].parallel_accesses_per_sec = 100_000.0;
        let old_json = serde_json::to_string(&old.into_envelope()).unwrap();

        let diff = diff_reports(&fixture(), &old_json, 0.8).expect("comparable");
        assert_eq!(diff.threshold, 0.8);
        assert_eq!(diff.figures[0].ratio, 0.8);
        assert!(!diff.figures[0].regressed, "ratio == threshold must pass");
        assert!(!diff.regressed);
        assert_diff_envelope(&diff);

        let above = diff_reports(&fixture(), &old_json, 0.8 + f64::EPSILON).expect("comparable");
        assert!(
            above.figures[0].regressed && above.regressed,
            "a threshold above the ratio must regress"
        );
        assert_diff_envelope(&above);
    }

    #[test]
    fn diff_detects_regressions_against_an_old_report() {
        let new = fixture();
        // Old report with twice the throughput on fig5: the new one sits at
        // ratio 0.5, regressed under a 0.8 threshold but fine under 0.4.
        let mut old = fixture();
        old.name = "older".to_string();
        old.figures[0].parallel_accesses_per_sec = 160_000.0;
        let old_json = serde_json::to_string(&old.into_envelope()).unwrap();

        let diff = diff_reports(&new, &old_json, 0.8).expect("comparable");
        assert!(diff.regressed);
        assert_eq!(diff.against, "older");
        assert_eq!(diff.figures[0].ratio, 0.5);
        assert!(diff.figures[0].regressed);
        let rendered = render_diff(&diff);
        assert!(rendered.contains("REGRESSED"), "{rendered}");

        let diff = diff_reports(&new, &old_json, 0.4).expect("comparable");
        assert!(!diff.regressed, "generous threshold tolerates the gap");

        // The diff envelope round-trips like any metrics report.
        let envelope = diff.into_envelope();
        assert_eq!(envelope.kind, DIFF_REPORT_KIND);
        assert!(envelope.validate().is_ok());
    }

    #[test]
    fn diff_reads_old_schema_reports_leniently() {
        // A pre-segmentation report: no segmented_* columns, no
        // host_threads — only the figure names and parallel throughput
        // matter.  (This is the BENCH_pr4.json shape.)
        let old_json = r#"{
            "schema_version": 1,
            "kind": "bench",
            "data": {
                "name": "pr4",
                "workers": 2,
                "figures": [
                    {"figure": "fig5", "jobs": 4, "parallel_accesses_per_sec": 40000.0},
                    {"figure": "gone", "jobs": 1, "parallel_accesses_per_sec": 1.0}
                ]
            }
        }"#;
        let diff = diff_reports(&fixture(), old_json, 0.5).expect("old schema comparable");
        assert_eq!(diff.figures.len(), 1);
        assert_eq!(diff.figures[0].ratio, 2.0, "fig5 doubled");
        assert!(!diff.regressed);
        assert_eq!(diff.removed, vec!["gone".to_string()]);

        let err = diff_reports(&fixture(), "{not json", 0.5).unwrap_err();
        assert!(err.contains("not JSON"), "{err}");
        // A figure that exists in the old report but with an unusable
        // baseline throughput is an error, never a silent skip.
        let zero_json = r#"{
            "schema_version": 1,
            "kind": "bench",
            "data": {"name": "z", "figures": [
                {"figure": "fig5", "parallel_accesses_per_sec": 0.0}
            ]}
        }"#;
        let err = diff_reports(&fixture(), zero_json, 0.5).unwrap_err();
        assert!(err.contains("non-positive"), "{err}");
        let err =
            diff_reports(&fixture(), r#"{"kind": "engine-run", "data": {}}"#, 0.5).unwrap_err();
        assert!(err.contains("bench"), "{err}");
        let err = diff_reports(&fixture(), old_json, 0.0).unwrap_err();
        assert!(err.contains("threshold"), "{err}");
    }

    #[test]
    fn envelope_kind_is_checked() {
        let report = fixture();
        let mut envelope = report.into_envelope();
        envelope.kind = "not-bench".to_string();
        let err = BenchReport::from_envelope(&envelope).unwrap_err();
        assert!(err.contains("bench"), "{err}");

        let mut envelope = report.into_envelope();
        envelope.schema_version = 99;
        let err = BenchReport::from_envelope(&envelope).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
    }
}
