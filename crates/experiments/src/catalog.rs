//! The experiment catalog: every CLI-visible experiment, the engine jobs
//! each one declares, and a machine-readable listing for external tooling.
//!
//! This is the single source of job construction shared by the CLI's direct
//! run path, `--emit-spec`, and the bench pipeline, so the three can never
//! drift apart.

use crate::common::ExperimentConfig;
use crate::{
    agt_size, fig04_block_size, fig05_density, fig06_indexing, fig07_pht_size, fig08_training,
    fig09_pht_training, fig10_region_size, fig11_ghb_comparison, fig12_speedup,
};
use engine::{JobList, Registry};
use serde::{Deserialize, Serialize};
use sms::PhtCapacity;
use trace::Application;

/// Every experiment name the CLI accepts, in run order.
pub const EXPERIMENTS: [&str; 13] = [
    "all", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "agt-size", "fig11",
    "fig12", "fig13",
];

/// The engine jobs one experiment declares.  `None` for experiments with no
/// engine jobs (`table1`) and for the umbrella `all`.  Figures 12 and 13
/// share one job list and both map to it here.
pub fn figure_jobs(
    name: &str,
    config: &ExperimentConfig,
    representative_only: bool,
) -> Option<Vec<engine::SimJob>> {
    match name {
        "fig4" => Some(fig04_block_size::jobs(config, representative_only)),
        "fig5" => Some(fig05_density::jobs(
            config,
            &crate::common::apps_or_all(&[]),
        )),
        "fig6" => Some(fig06_indexing::jobs(config, representative_only)),
        "fig7" => Some(fig07_pht_size::jobs(config, representative_only, &[])),
        "fig8" => Some(fig08_training::jobs(
            config,
            representative_only,
            PhtCapacity::Unbounded,
        )),
        "fig9" => Some(fig09_pht_training::jobs(config, representative_only)),
        "fig10" => Some(fig10_region_size::jobs(config, representative_only)),
        "agt-size" => Some(agt_size::jobs(config, representative_only)),
        "fig11" => Some(fig11_ghb_comparison::jobs(
            config,
            &crate::common::apps_or_all(&[]),
        )),
        "fig12" | "fig13" => Some(fig12_speedup::jobs(config, &Application::ALL)),
        _ => None,
    }
}

/// The experiments that declare engine jobs, each listed once (`fig13`
/// shares `fig12`'s job list and is omitted).  This is the suite the bench
/// pipeline measures.
pub fn job_bearing_experiments() -> Vec<&'static str> {
    EXPERIMENTS
        .into_iter()
        .filter(|name| !matches!(*name, "all" | "table1" | "fig13"))
        .collect()
}

/// One registered prefetcher plugin, as listed by `sms-experiments list`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PluginInfo {
    /// Stable plugin name job specs use.
    pub name: String,
    /// One-line description (may be empty).
    pub description: String,
}

/// The machine-readable catalog behind `sms-experiments list --json`:
/// everything external tooling needs to construct and run job specs without
/// parsing human-oriented output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    /// Job-spec format version this build reads and emits.
    pub spec_version: u32,
    /// Every experiment name the CLI accepts.
    pub experiments: Vec<String>,
    /// The built-in registry's prefetcher plugins, sorted by name.
    pub plugins: Vec<PluginInfo>,
}

/// Builds the catalog from the CLI's experiment list and the built-in
/// plugin registry.
pub fn catalog() -> Catalog {
    let registry = Registry::builtin();
    Catalog {
        spec_version: JobList::VERSION,
        experiments: EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
        plugins: registry
            .names()
            .into_iter()
            .map(|name| PluginInfo {
                name: name.to_string(),
                description: registry
                    .get(name)
                    .map(|p| p.description().to_string())
                    .unwrap_or_default(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_experiments_and_plugins_and_round_trips() {
        let c = catalog();
        assert_eq!(c.spec_version, JobList::VERSION);
        assert_eq!(c.experiments.len(), EXPERIMENTS.len());
        assert!(c.plugins.iter().any(|p| p.name == "sms"));
        assert!(c.plugins.iter().any(|p| p.name == "null"));
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: Catalog = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn every_job_bearing_experiment_declares_jobs() {
        let config = ExperimentConfig::tiny();
        for name in job_bearing_experiments() {
            let jobs = figure_jobs(name, &config, true).expect("job-bearing experiment");
            assert!(!jobs.is_empty(), "{name} declares no jobs");
        }
        assert!(figure_jobs("table1", &config, true).is_none());
        assert!(figure_jobs("all", &config, true).is_none());
        // fig13 rides on fig12's job list and is measured once.
        assert!(!job_bearing_experiments().contains(&"fig13"));
    }
}
