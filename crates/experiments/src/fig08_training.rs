//! Figure 8: comparison of training structures (decoupled sectored, logical
//! sectored, AGT) with an unbounded PHT.

use crate::common::{classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob, TrainingSpec};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, TrainerKind};
use stats::mean;
use trace::ApplicationClass;

/// Result for one (class, trainer) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Training structure evaluated.
    pub trainer: TrainerKind,
    /// Class-average L1 coverage.
    pub coverage: f64,
    /// Class-average uncovered fraction (for the decoupled sectored cache
    /// this includes the extra misses its constrained contents cause).
    pub uncovered: f64,
    /// Class-average overprediction fraction.
    pub overpredictions: f64,
    /// Class-average PHT entries created (pattern fragmentation indicator).
    pub pht_entries: f64,
}

/// Complete result of the Figure 8 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One point per (class, trainer).
    pub points: Vec<TrainingPoint>,
}

/// The training-prefetcher spec this figure evaluates.
fn training_spec(
    config: &ExperimentConfig,
    trainer: TrainerKind,
    pht: PhtCapacity,
) -> TrainingSpec {
    TrainingSpec {
        trainer,
        region: RegionConfig::paper_default(),
        index_scheme: IndexScheme::PcOffset,
        pht,
        l1_capacity_bytes: config.hierarchy.l1.capacity_bytes,
    }
}

/// The engine jobs this figure declares: per class, one baseline per
/// application followed by one training run per (trainer, application).
pub fn jobs(config: &ExperimentConfig, representative_only: bool, pht: PhtCapacity) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for trainer in TrainerKind::ALL {
            for &app in &apps {
                jobs.push(config.job(
                    app,
                    PrefetcherSpec::training(&training_spec(config, trainer, pht)),
                ));
            }
        }
    }
    jobs
}

/// Runs the Figure 8 experiment with the given PHT bound (the paper uses an
/// unbounded PHT for this figure; Figure 9 sweeps the bound).
pub fn run(config: &ExperimentConfig, representative_only: bool, pht: PhtCapacity) -> Fig8Result {
    let results = config.run_jobs(&jobs(config, representative_only, pht));
    from_results(config, representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    results: &[JobResult],
) -> Fig8Result {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = Fig8Result::default();
    for (class, apps) in &classes {
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for trainer in TrainerKind::ALL {
            let mut coverages = Vec::new();
            let mut uncovered = Vec::new();
            let mut overpredictions = Vec::new();
            let mut pht_entries = Vec::new();
            for baseline in &baselines {
                let with = cursor.next().expect("training run");
                let report = with.probe.training().expect("training job");
                let (extra_misses, pht_len) = (report.extra_misses, report.pht_len);
                let cov = config.coverage(&baseline.summary, &with.summary, CoverageLevel::L1);
                let extra = extra_misses as f64 / cov.baseline_misses.max(1) as f64;
                coverages.push((cov.coverage() - extra).max(-1.0));
                uncovered.push(cov.uncovered() + extra);
                overpredictions.push(cov.overprediction_fraction());
                pht_entries.push(pht_len as f64);
            }
            result.points.push(TrainingPoint {
                class: *class,
                trainer,
                coverage: mean(&coverages),
                uncovered: mean(&uncovered),
                overpredictions: mean(&overpredictions),
                pht_entries: mean(&pht_entries),
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Figure 8: training structures (unbounded PHT), L1 read misses",
        &[
            "Class",
            "Trainer",
            "Coverage",
            "Uncovered",
            "Overpredictions",
            "PHT entries",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.class.to_string(),
            p.trainer.label().to_string(),
            Table::pct(p.coverage),
            Table::pct(p.uncovered),
            Table::pct(p.overpredictions),
            format!("{:.0}", p.pht_entries),
        ]);
    }
    t
}

/// Convenience lookup.
pub fn point_of(
    result: &Fig8Result,
    class: ApplicationClass,
    trainer: TrainerKind,
) -> Option<&TrainingPoint> {
    result
        .points
        .iter()
        .find(|p| p.class == class && p.trainer == trainer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agt_is_at_least_as_good_as_sectored_trainers_on_oltp() {
        let result = run(&ExperimentConfig::tiny(), true, PhtCapacity::Unbounded);
        assert_eq!(result.points.len(), 12);
        let agt = point_of(&result, ApplicationClass::Oltp, TrainerKind::Agt).unwrap();
        let ls = point_of(
            &result,
            ApplicationClass::Oltp,
            TrainerKind::LogicalSectored,
        )
        .unwrap();
        let ds = point_of(
            &result,
            ApplicationClass::Oltp,
            TrainerKind::DecoupledSectored,
        )
        .unwrap();
        assert!(
            agt.coverage >= ls.coverage - 0.03,
            "AGT ({:.2}) should match or beat LS ({:.2}) on OLTP",
            agt.coverage,
            ls.coverage
        );
        assert!(
            agt.coverage >= ds.coverage - 0.03,
            "AGT ({:.2}) should match or beat DS ({:.2}) on OLTP",
            agt.coverage,
            ds.coverage
        );
        assert!(table(&result).to_string().contains("AGT"));
    }
}
