//! Figure 8: comparison of training structures (decoupled sectored, logical
//! sectored, AGT) with an unbounded PHT.

use crate::common::{class_applications, ExperimentConfig};
use crate::report::Table;
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, TrainerKind, TrainingPrefetcher};
use stats::mean;
use trace::ApplicationClass;

/// Result for one (class, trainer) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Training structure evaluated.
    pub trainer: TrainerKind,
    /// Class-average L1 coverage.
    pub coverage: f64,
    /// Class-average uncovered fraction (for the decoupled sectored cache
    /// this includes the extra misses its constrained contents cause).
    pub uncovered: f64,
    /// Class-average overprediction fraction.
    pub overpredictions: f64,
    /// Class-average PHT entries created (pattern fragmentation indicator).
    pub pht_entries: f64,
}

/// Complete result of the Figure 8 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// One point per (class, trainer).
    pub points: Vec<TrainingPoint>,
}

/// Runs the Figure 8 experiment with the given PHT bound (the paper uses an
/// unbounded PHT for this figure; Figure 9 sweeps the bound).
pub fn run(config: &ExperimentConfig, representative_only: bool, pht: PhtCapacity) -> Fig8Result {
    let mut result = Fig8Result::default();
    for class in ApplicationClass::ALL {
        let apps = class_applications(class, representative_only);
        let baselines: Vec<_> = apps.iter().map(|&app| config.run_baseline(app)).collect();
        for trainer in TrainerKind::ALL {
            let mut coverages = Vec::new();
            let mut uncovered = Vec::new();
            let mut overpredictions = Vec::new();
            let mut pht_entries = Vec::new();
            for (app, baseline) in apps.iter().zip(&baselines) {
                let mut prefetcher = TrainingPrefetcher::new(
                    config.cpus,
                    trainer,
                    RegionConfig::paper_default(),
                    IndexScheme::PcOffset,
                    pht,
                    config.hierarchy.l1.capacity_bytes,
                );
                let with = config.run_with(*app, &mut prefetcher);
                let cov = config.coverage(baseline, &with, CoverageLevel::L1);
                let extra = prefetcher.extra_misses() as f64 / cov.baseline_misses.max(1) as f64;
                coverages.push((cov.coverage() - extra).max(-1.0));
                uncovered.push(cov.uncovered() + extra);
                overpredictions.push(cov.overprediction_fraction());
                pht_entries.push(prefetcher.pht_len() as f64);
            }
            result.points.push(TrainingPoint {
                class,
                trainer,
                coverage: mean(&coverages),
                uncovered: mean(&uncovered),
                overpredictions: mean(&overpredictions),
                pht_entries: mean(&pht_entries),
            });
        }
    }
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Figure 8: training structures (unbounded PHT), L1 read misses",
        &[
            "Class",
            "Trainer",
            "Coverage",
            "Uncovered",
            "Overpredictions",
            "PHT entries",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.class.to_string(),
            p.trainer.label().to_string(),
            Table::pct(p.coverage),
            Table::pct(p.uncovered),
            Table::pct(p.overpredictions),
            format!("{:.0}", p.pht_entries),
        ]);
    }
    t
}

/// Convenience lookup.
pub fn point_of(
    result: &Fig8Result,
    class: ApplicationClass,
    trainer: TrainerKind,
) -> Option<&TrainingPoint> {
    result
        .points
        .iter()
        .find(|p| p.class == class && p.trainer == trainer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agt_is_at_least_as_good_as_sectored_trainers_on_oltp() {
        let result = run(&ExperimentConfig::tiny(), true, PhtCapacity::Unbounded);
        assert_eq!(result.points.len(), 12);
        let agt = point_of(&result, ApplicationClass::Oltp, TrainerKind::Agt).unwrap();
        let ls = point_of(
            &result,
            ApplicationClass::Oltp,
            TrainerKind::LogicalSectored,
        )
        .unwrap();
        let ds = point_of(
            &result,
            ApplicationClass::Oltp,
            TrainerKind::DecoupledSectored,
        )
        .unwrap();
        assert!(
            agt.coverage >= ls.coverage - 0.03,
            "AGT ({:.2}) should match or beat LS ({:.2}) on OLTP",
            agt.coverage,
            ls.coverage
        );
        assert!(
            agt.coverage >= ds.coverage - 0.03,
            "AGT ({:.2}) should match or beat DS ({:.2}) on OLTP",
            agt.coverage,
            ds.coverage
        );
        assert!(table(&result).to_string().contains("AGT"));
    }
}
