//! Figure 7: PHT storage sensitivity for PC+address versus PC+offset
//! indexing (16-way set-associative finite PHTs).

use crate::common::{class_average, classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, SmsConfig};
use trace::ApplicationClass;

/// PHT sizes swept by the paper (`None` is the unbounded table).
pub const PHT_SIZES: [Option<usize>; 5] = [Some(256), Some(1024), Some(4096), Some(16384), None];

/// Coverage at one (class, scheme, PHT size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhtSizePoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Index scheme (PC+address or PC+offset).
    pub scheme: IndexScheme,
    /// PHT entries (`None` = unbounded).
    pub pht_entries: Option<usize>,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the Figure 7 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// One point per (class, scheme, size).
    pub points: Vec<PhtSizePoint>,
}

fn capacity(entries: Option<usize>) -> PhtCapacity {
    match entries {
        Some(entries) => PhtCapacity::Bounded {
            entries,
            associativity: 16,
        },
        None => PhtCapacity::Unbounded,
    }
}

fn schemes_or_default(schemes: &[IndexScheme]) -> Vec<IndexScheme> {
    if schemes.is_empty() {
        vec![IndexScheme::PcAddress, IndexScheme::PcOffset]
    } else {
        schemes.to_vec()
    }
}

/// The engine jobs this figure declares: per class, one baseline per
/// application followed by one SMS job per (scheme, PHT size, application).
pub fn jobs(
    config: &ExperimentConfig,
    representative_only: bool,
    schemes: &[IndexScheme],
) -> Vec<SimJob> {
    let schemes = schemes_or_default(schemes);
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for &scheme in &schemes {
            for &entries in &PHT_SIZES {
                for &app in &apps {
                    let sms_config = SmsConfig::idealized(scheme, RegionConfig::paper_default())
                        .with_pht(capacity(entries));
                    jobs.push(config.job(app, PrefetcherSpec::sms(&sms_config)));
                }
            }
        }
    }
    jobs
}

/// Runs the Figure 7 experiment for the given schemes (defaults to the
/// paper's PC+address vs PC+offset comparison when `schemes` is empty).
pub fn run(
    config: &ExperimentConfig,
    representative_only: bool,
    schemes: &[IndexScheme],
) -> Fig7Result {
    let results = config.run_jobs(&jobs(config, representative_only, schemes));
    from_results(config, representative_only, schemes, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    schemes: &[IndexScheme],
    results: &[JobResult],
) -> Fig7Result {
    let classes = classes_with_applications(representative_only);
    let schemes = schemes_or_default(schemes);
    let mut cursor = results.iter();

    let mut result = Fig7Result::default();
    for (class, apps) in &classes {
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for &scheme in &schemes {
            for &entries in &PHT_SIZES {
                let stats: Vec<_> = baselines
                    .iter()
                    .map(|baseline| {
                        let with = cursor.next().expect("sms run");
                        config.coverage(&baseline.summary, &with.summary, CoverageLevel::L1)
                    })
                    .collect();
                result.points.push(PhtSizePoint {
                    class: *class,
                    scheme,
                    pht_entries: entries,
                    coverage: class_average(&stats).coverage,
                });
            }
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table (one row per class and scheme, one
/// column per PHT size).
pub fn table(result: &Fig7Result) -> Table {
    let mut headers = vec!["Class".to_string(), "Index".to_string()];
    headers.extend(PHT_SIZES.iter().map(|s| match s {
        Some(n) => format!("{n}"),
        None => "infinite".to_string(),
    }));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Figure 7: coverage vs PHT size (16-way)", &headers_ref);
    for class in ApplicationClass::ALL {
        for scheme in [IndexScheme::PcAddress, IndexScheme::PcOffset] {
            let row_points: Vec<&PhtSizePoint> = result
                .points
                .iter()
                .filter(|p| p.class == class && p.scheme == scheme)
                .collect();
            if row_points.is_empty() {
                continue;
            }
            let mut row = vec![class.to_string(), scheme.label().to_string()];
            for &entries in &PHT_SIZES {
                let cov = row_points
                    .iter()
                    .find(|p| p.pht_entries == entries)
                    .map(|p| p.coverage)
                    .unwrap_or(0.0);
                row.push(Table::pct(cov));
            }
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_offset_reaches_peak_with_small_tables() {
        // Restrict to DSS (the most size-sensitive class for PC+address) to
        // keep the test fast; check the paper's qualitative claims.
        let config = ExperimentConfig::tiny();
        let result = run(
            &config,
            true,
            &[IndexScheme::PcAddress, IndexScheme::PcOffset],
        );
        let dss_points: Vec<&PhtSizePoint> = result
            .points
            .iter()
            .filter(|p| p.class == ApplicationClass::Dss)
            .collect();
        let cov = |scheme: IndexScheme, entries: Option<usize>| {
            dss_points
                .iter()
                .find(|p| p.scheme == scheme && p.pht_entries == entries)
                .map(|p| p.coverage)
                .unwrap()
        };
        // PC+offset at 16k entries is close to its unbounded coverage.
        let pcoff_16k = cov(IndexScheme::PcOffset, Some(16384));
        let pcoff_inf = cov(IndexScheme::PcOffset, None);
        assert!(
            pcoff_16k >= pcoff_inf * 0.8,
            "PC+offset at 16k ({pcoff_16k:.2}) should approach its unbounded coverage ({pcoff_inf:.2})"
        );
        // PC+address needs storage proportional to the data set: at 16k
        // entries it trails PC+offset on DSS.
        let pcaddr_16k = cov(IndexScheme::PcAddress, Some(16384));
        assert!(
            pcoff_16k >= pcaddr_16k,
            "PC+offset ({pcoff_16k:.2}) should beat PC+address ({pcaddr_16k:.2}) at 16k entries on DSS"
        );
        assert!(table(&result).to_string().contains("infinite"));
    }
}
