//! Experiment runners that regenerate every table and figure of
//! *Spatial Memory Streaming* (ISCA 2006).
//!
//! Each `figNN` module reproduces one figure of the paper's evaluation
//! section on the synthetic workload suite, printing the same rows/series the
//! paper reports (coverage, uncovered and overprediction fractions, miss-rate
//! curves, speedups with confidence intervals, execution-time breakdowns).
//! Every module *declares* its simulations as an [`engine::SimJob`] list
//! (its `jobs` function — plain serializable data, registry-resolved
//! prefetcher specs included) and post-processes the
//! [`engine::JobResult`]s (its `from_results` function); the engine
//! executes the list across worker threads with results bit-identical to a
//! serial run.  Because declaration and post-processing are split, the
//! `sms-experiments` binary can also write any figure's job list to a JSON
//! spec file and execute arbitrary spec files:
//!
//! ```text
//! sms-experiments all                  # regenerate everything (slow)
//! sms-experiments fig6 --quick         # one figure, reduced trace length
//! sms-experiments --figure fig05 --jobs 2 --json out.json --out raw.json
//! sms-experiments fig5 --emit-spec jobs.json   # declare, don't run
//! sms-experiments run --spec jobs.json --out raw.json
//! sms-experiments list                 # experiments + prefetcher plugins
//! sms-experiments list --json          # machine-readable catalog
//! sms-experiments bench --out BENCH_x.json   # perf telemetry report
//! ```
//!
//! Absolute numbers differ from the paper — the substrate is a trace-driven
//! simulator fed by synthetic workloads rather than FLEXUS running the
//! commercial stacks — but the qualitative shape of every result (who wins,
//! by roughly what factor, where the crossovers are) is preserved; see
//! `EXPERIMENTS.md` at the repository root for the side-by-side record.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agt_size;
pub mod bench;
pub mod catalog;
pub mod common;
pub mod fig04_block_size;
pub mod fig05_density;
pub mod fig06_indexing;
pub mod fig07_pht_size;
pub mod fig08_training;
pub mod fig09_pht_training;
pub mod fig10_region_size;
pub mod fig11_ghb_comparison;
pub mod fig12_speedup;
pub mod fig13_breakdown;
pub mod report;
pub mod table1;

pub use common::ExperimentConfig;
pub use report::Table;
