//! Plain-text table rendering for experiment output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple text table: a title, a header row and data rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (figure name and description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Formats a fraction as a percentage with one decimal.
    pub fn pct(value: f64) -> String {
        format!("{:.1}%", value * 100.0)
    }

    /// Formats a float with three decimals.
    pub fn num(value: f64) -> String {
        format!("{value:.3}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:width$}  ", cell, width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["App", "Coverage"]);
        t.push_row(vec!["DB2".into(), Table::pct(0.553)]);
        t.push_row(vec!["sparse".into(), Table::pct(0.92)]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("55.3%"));
        assert!(s.contains("92.0%"));
        // Column alignment: both data rows start the second column at the
        // same character offset.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('%')).collect();
        assert_eq!(lines[0].find('%').is_some(), lines[1].find('%').is_some());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(Table::pct(0.5), "50.0%");
        assert_eq!(Table::num(1.23456), "1.235");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
