//! Table 1: system and application parameters.

use crate::report::Table;
use memsim::HierarchyConfig;
use timing::TimingConfig;
use trace::Application;

/// Renders the system-model half of Table 1 (the parameters this reproduction
/// actually uses, alongside the paper's values).
pub fn system_table(hierarchy: &HierarchyConfig, timing: &TimingConfig, cpus: usize) -> Table {
    let mut t = Table::new(
        "Table 1 (left): system parameters (paper value -> reproduction value)",
        &["Component", "Paper", "Reproduction"],
    );
    t.push_row(vec![
        "Processors".into(),
        "16x UltraSPARC III, 4 GHz OoO".into(),
        format!("{cpus} trace-driven CPUs"),
    ]);
    t.push_row(vec![
        "L1 caches".into(),
        "64KB 2-way, 64B blocks, 2-cycle".into(),
        format!(
            "{}KB {}-way, {}B blocks",
            hierarchy.l1.capacity_bytes / 1024,
            hierarchy.l1.associativity,
            hierarchy.l1.block_bytes
        ),
    ]);
    t.push_row(vec![
        "L2 cache".into(),
        "8MB 8-way, 25-cycle".into(),
        format!(
            "{}KB {}-way, {:.0}-cycle",
            hierarchy.l2.capacity_bytes / 1024,
            hierarchy.l2.associativity,
            timing.l2_hit_cycles
        ),
    ]);
    t.push_row(vec![
        "Main memory".into(),
        "3GB, 60ns".into(),
        format!("{:.0}-cycle latency", timing.memory_cycles),
    ]);
    t.push_row(vec![
        "MSHRs / stream slots".into(),
        "32 MSHRs, 16 SMS stream requests".into(),
        format!("{} overlapping misses max", timing.max_mlp),
    ]);
    t.push_row(vec![
        "Store buffer".into(),
        "64 entries".into(),
        format!("{} entries", timing.store_buffer_entries),
    ]);
    t
}

/// Renders the application-suite half of Table 1.
pub fn application_table() -> Table {
    let mut t = Table::new(
        "Table 1 (right): application suite",
        &[
            "Application",
            "Class",
            "Paper configuration",
            "Reproduction",
        ],
    );
    let paper: &[(&str, &str)] = &[
        ("DB2", "TPC-C, 100 warehouses, 450MB buffer pool"),
        ("Oracle", "TPC-C, 100 warehouses, 1.4GB SGA"),
        ("Qry1", "TPC-H scan-dominated, 450MB buffer pool"),
        ("Qry2", "TPC-H join-dominated"),
        ("Qry16", "TPC-H join-dominated"),
        ("Qry17", "TPC-H balanced scan-join"),
        ("Apache", "SPECweb99, 16K connections, FastCGI"),
        ("Zeus", "SPECweb99, 16K connections, FastCGI"),
        ("em3d", "3M nodes, degree 2, 15% remote"),
        ("ocean", "1026x1026 grid"),
        ("sparse", "4096x4096 matrix"),
    ];
    for app in Application::ALL {
        let paper_cfg = paper
            .iter()
            .find(|(name, _)| *name == app.short_name())
            .map(|(_, cfg)| *cfg)
            .unwrap_or("-");
        t.push_row(vec![
            app.short_name().into(),
            app.class().to_string(),
            paper_cfg.into(),
            "synthetic generator (see trace::workloads)".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_table_mentions_all_components() {
        let t = system_table(&HierarchyConfig::table1(), &TimingConfig::table1(), 16);
        let s = t.to_string();
        for key in ["L1", "L2", "memory", "Store buffer"] {
            assert!(
                s.to_lowercase().contains(&key.to_lowercase()),
                "missing {key}"
            );
        }
    }

    #[test]
    fn application_table_lists_all_eleven() {
        let t = application_table();
        assert_eq!(t.rows.len(), 11);
        let s = t.to_string();
        assert!(s.contains("TPC-C"));
        assert!(s.contains("sparse"));
    }
}
