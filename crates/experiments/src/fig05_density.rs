//! Figure 5: memory access density — the fraction of L1/L2 read misses that
//! fall in spatial region generations of each density class (2 kB regions).

use crate::common::{apps_or_all, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::{DensityBin, DensityHistogram, RegionConfig};
use trace::Application;

/// Density histograms for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityResult {
    /// Application measured.
    pub app: Application,
    /// L1 read-miss density histogram.
    pub l1: DensityHistogram,
    /// Off-chip read-miss density histogram.
    pub l2: DensityHistogram,
}

/// Complete result of the Figure 5 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// One entry per application, in suite order.
    pub per_app: Vec<DensityResult>,
}

/// The engine jobs this figure declares: one density-probe run per
/// application.
pub fn jobs(config: &ExperimentConfig, apps: &[Application]) -> Vec<SimJob> {
    apps.iter()
        .map(|&app| {
            config.job(
                app,
                PrefetcherSpec::density_probe(&RegionConfig::paper_default()),
            )
        })
        .collect()
}

/// Runs the Figure 5 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig5Result {
    let apps = apps_or_all(apps);
    let results = config.run_jobs(&jobs(config, &apps));
    from_results(&apps, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(apps: &[Application], results: &[JobResult]) -> Fig5Result {
    assert_eq!(results.len(), apps.len(), "one density result per app");
    let mut result = Fig5Result::default();
    for (&app, job) in apps.iter().zip(results) {
        let density = job.probe.density().expect("density probe job");
        result.per_app.push(DensityResult {
            app,
            l1: density.l1,
            l2: density.l2,
        });
    }
    result
}

/// Renders the figure as a text table (one row per application and level).
pub fn table(result: &Fig5Result) -> Table {
    let mut headers = vec!["App".to_string(), "Level".to_string()];
    headers.extend(DensityBin::PAPER_BINS.iter().map(|b| b.label()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 5: fraction of read misses by generation density (2kB regions)",
        &headers_ref,
    );
    for entry in &result.per_app {
        for (level, hist) in [("L1", &entry.l1), ("L2", &entry.l2)] {
            let mut row = vec![entry.app.short_name().to_string(), level.to_string()];
            row.extend(hist.fractions().iter().map(|&f| Table::pct(f)));
            t.push_row(row);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::Application;

    #[test]
    fn fractions_sum_to_one_and_shapes_differ() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::OltpDb2, Application::Ocean]);
        assert_eq!(result.per_app.len(), 2);
        for entry in &result.per_app {
            let sum: f64 = entry.l1.fractions().iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{:?} fractions must sum to 1",
                entry.app
            );
        }
        // OLTP is dominated by sparse generations, ocean by dense ones.
        let oltp = &result.per_app[0].l1;
        let ocean = &result.per_app[1].l1;
        let oltp_sparse: f64 = oltp.fractions()[..3].iter().sum();
        let ocean_dense: f64 = ocean.fractions()[4..].iter().sum();
        assert!(
            oltp_sparse > 0.4,
            "OLTP sparse-generation share: {oltp_sparse}"
        );
        assert!(
            ocean_dense > 0.4,
            "ocean dense-generation share: {ocean_dense}"
        );
        let rendered = table(&result).to_string();
        assert!(rendered.contains("ocean"));
    }
}
