//! Shared experiment infrastructure: configuration, baseline/predictor runs
//! and per-class aggregation.

use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, Prefetcher, RunSummary};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, CoverageStats};
use stats::mean;
use trace::{Application, ApplicationClass, GeneratorConfig};

/// Scale and substrate parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated processors (the paper uses 16; the default here is
    /// 4 to keep laptop runtimes reasonable — coverage results are largely
    /// insensitive to the processor count).
    pub cpus: usize,
    /// Demand accesses simulated per application.
    pub accesses: usize,
    /// Seed for the deterministic workload generators.
    pub seed: u64,
    /// Cache hierarchy (defaults to the scaled hierarchy so the shorter
    /// synthetic traces still produce off-chip misses).
    pub hierarchy: HierarchyConfig,
}

impl ExperimentConfig {
    /// The default experiment scale: 4 CPUs, 300 k accesses per application.
    pub fn full() -> Self {
        Self {
            cpus: 4,
            accesses: 300_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
        }
    }

    /// A reduced scale for quick runs and continuous integration.
    pub fn quick() -> Self {
        Self {
            cpus: 2,
            accesses: 60_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
        }
    }

    /// A tiny scale for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            cpus: 2,
            accesses: 20_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
        }
    }

    /// The generator configuration implied by this experiment configuration.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig::default().with_cpus(self.cpus)
    }

    /// Runs the baseline (no prefetching) system on `app`.
    pub fn run_baseline(&self, app: Application) -> RunSummary {
        self.run_with(app, &mut NullPrefetcher::new())
    }

    /// Runs `app` with the provided prefetcher attached.
    pub fn run_with(&self, app: Application, prefetcher: &mut dyn Prefetcher) -> RunSummary {
        self.run_with_hierarchy(app, prefetcher, &self.hierarchy)
    }

    /// Runs `app` with an explicit hierarchy (used by the block-size sweep).
    pub fn run_with_hierarchy(
        &self,
        app: Application,
        prefetcher: &mut dyn Prefetcher,
        hierarchy: &HierarchyConfig,
    ) -> RunSummary {
        let mut system = MultiCpuSystem::new(self.cpus, hierarchy);
        let mut stream = app.stream(self.seed, &self.generator());
        memsim::run(&mut system, prefetcher, &mut stream, self.accesses)
    }

    /// Coverage of a predictor run against a baseline run at `level`.
    pub fn coverage(
        &self,
        baseline: &RunSummary,
        with: &RunSummary,
        level: CoverageLevel,
    ) -> CoverageStats {
        CoverageStats::from_runs(baseline, with, level)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Per-application coverage results aggregated into a class average.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassAverage {
    /// Mean coverage fraction over the class's applications.
    pub coverage: f64,
    /// Mean uncovered fraction.
    pub uncovered: f64,
    /// Mean overprediction fraction.
    pub overpredictions: f64,
}

/// Averages coverage statistics over a set of per-application results.
pub fn class_average(stats: &[CoverageStats]) -> ClassAverage {
    ClassAverage {
        coverage: mean(&stats.iter().map(|s| s.coverage()).collect::<Vec<_>>()),
        uncovered: mean(&stats.iter().map(|s| s.uncovered()).collect::<Vec<_>>()),
        overpredictions: mean(
            &stats
                .iter()
                .map(|s| s.overprediction_fraction())
                .collect::<Vec<_>>(),
        ),
    }
}

/// The applications evaluated for a class in class-level figures.
///
/// Quick-mode experiments evaluate one representative application per class to
/// bound runtime; full runs evaluate the complete suite.
pub fn class_applications(class: ApplicationClass, representative_only: bool) -> Vec<Application> {
    if representative_only {
        match class {
            ApplicationClass::Oltp => vec![Application::OltpDb2],
            ApplicationClass::Dss => vec![Application::DssQry1, Application::DssQry2],
            ApplicationClass::Web => vec![Application::WebApache],
            ApplicationClass::Scientific => vec![Application::Ocean, Application::Sparse],
        }
    } else {
        class.applications().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms::{SmsConfig, SmsPrefetcher};

    #[test]
    fn baseline_and_sms_runs_complete() {
        let cfg = ExperimentConfig::tiny();
        let baseline = cfg.run_baseline(Application::Sparse);
        assert_eq!(baseline.accesses, cfg.accesses as u64);
        let mut sms = SmsPrefetcher::new(cfg.cpus, &SmsConfig::default());
        let with = cfg.run_with(Application::Sparse, &mut sms);
        let cov = cfg.coverage(&baseline, &with, CoverageLevel::L1);
        assert!(cov.coverage() > 0.0);
    }

    #[test]
    fn class_average_averages() {
        let a = CoverageStats {
            baseline_misses: 100,
            remaining_misses: 40,
            overpredictions: 10,
            useful_prefetches: 60,
        };
        let b = CoverageStats {
            baseline_misses: 100,
            remaining_misses: 60,
            overpredictions: 30,
            useful_prefetches: 40,
        };
        let avg = class_average(&[a, b]);
        assert!((avg.coverage - 0.5).abs() < 1e-12);
        assert!((avg.uncovered - 0.5).abs() < 1e-12);
        assert!((avg.overpredictions - 0.2).abs() < 1e-12);
    }

    #[test]
    fn representative_sets_are_subsets() {
        for class in ApplicationClass::ALL {
            let reps = class_applications(class, true);
            let all = class_applications(class, false);
            assert!(!reps.is_empty());
            assert!(reps.iter().all(|a| all.contains(a)));
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentConfig::tiny().accesses < ExperimentConfig::quick().accesses);
        assert!(ExperimentConfig::quick().accesses < ExperimentConfig::full().accesses);
    }
}
