//! Shared experiment infrastructure: configuration, job construction and
//! per-class aggregation.
//!
//! Every figure declares a list of [`SimJob`]s and hands it to the engine;
//! the helpers here build those jobs from the experiment-wide scale
//! parameters ([`ExperimentConfig`]) so the modules only describe *what* to
//! run, never *how*.

use engine::{EngineConfig, JobResult, PrefetcherSpec, SimJob};
use memsim::{HierarchyConfig, RunSummary};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, CoverageStats};
use stats::mean;
use timing::TimingConfig;
use trace::{Application, ApplicationClass, GeneratorConfig};

/// Scale and substrate parameters shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of simulated processors (the paper uses 16; the default here is
    /// 4 to keep laptop runtimes reasonable — coverage results are largely
    /// insensitive to the processor count).
    pub cpus: usize,
    /// Demand accesses simulated per application.
    pub accesses: usize,
    /// Seed for the deterministic workload generators.
    pub seed: u64,
    /// Cache hierarchy (defaults to the scaled hierarchy so the shorter
    /// synthetic traces still produce off-chip misses).
    pub hierarchy: HierarchyConfig,
    /// Engine worker threads used to execute job lists (`0` = one per
    /// available hardware thread, `1` = serial).
    pub workers: usize,
    /// Accesses per intra-job segment (`None` = no segmentation).  When
    /// set, each job runs through the engine's segment pipeline — results
    /// are bit-identical, long jobs just stop pinning one worker.
    pub segment_size: Option<usize>,
    /// Speculative run-ahead depth for segmented jobs (`0` = off).  A
    /// nonzero depth without an explicit segment size segments jobs at the
    /// engine's default speculative segment size; results stay
    /// bit-identical — the engine verifies every speculative segment
    /// against the authoritative state before committing it.
    pub speculate: usize,
}

impl ExperimentConfig {
    /// The default experiment scale: 4 CPUs, 300 k accesses per application.
    pub fn full() -> Self {
        Self {
            cpus: 4,
            accesses: 300_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
            workers: 0,
            segment_size: None,
            speculate: 0,
        }
    }

    /// A reduced scale for quick runs and continuous integration.
    pub fn quick() -> Self {
        Self {
            cpus: 2,
            accesses: 60_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
            workers: 0,
            segment_size: None,
            speculate: 0,
        }
    }

    /// A tiny scale for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            cpus: 2,
            accesses: 20_000,
            seed: 2006,
            hierarchy: HierarchyConfig::scaled(),
            workers: 0,
            segment_size: None,
            speculate: 0,
        }
    }

    /// Returns a copy with an explicit engine worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with intra-job segmentation enabled at the given
    /// segment size (`0` disables it).
    pub fn with_segment_size(mut self, segment_size: usize) -> Self {
        self.segment_size = if segment_size > 0 {
            Some(segment_size)
        } else {
            None
        };
        self
    }

    /// Returns a copy with speculative run-ahead at the given depth (`0`
    /// disables it).
    pub fn with_speculation(mut self, depth: usize) -> Self {
        self.speculate = depth;
        self
    }

    /// The generator configuration implied by this experiment configuration.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig::default().with_cpus(self.cpus)
    }

    /// The engine configuration implied by this experiment configuration.
    pub fn engine(&self) -> EngineConfig {
        EngineConfig::with_workers(self.workers)
            .with_segment_size(self.segment_size.unwrap_or(0))
            .with_speculation(self.speculate)
    }

    /// A job running `app` with `prefetcher` on this configuration's
    /// hierarchy.
    pub fn job(&self, app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        self.job_with_hierarchy(app, prefetcher, self.hierarchy)
    }

    /// A job with an explicit hierarchy (used by the block-size sweep).
    pub fn job_with_hierarchy(
        &self,
        app: Application,
        prefetcher: PrefetcherSpec,
        hierarchy: HierarchyConfig,
    ) -> SimJob {
        SimJob::new(memsim::SimJob::synthetic(
            app,
            self.generator(),
            self.seed,
            self.cpus,
            hierarchy,
            prefetcher,
            self.accesses,
        ))
    }

    /// A baseline (no prefetching) job for `app`.
    pub fn baseline_job(&self, app: Application) -> SimJob {
        self.job(app, PrefetcherSpec::null())
    }

    /// A job evaluated through the timing model with `segments` paired
    /// sampling segments.
    pub fn timing_job(
        &self,
        app: Application,
        prefetcher: PrefetcherSpec,
        timing: TimingConfig,
        segments: usize,
    ) -> SimJob {
        self.job(app, prefetcher).with_timing(timing, segments)
    }

    /// Executes `jobs` with this configuration's engine settings, returning
    /// results in submission order.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Vec<JobResult> {
        self.run_jobs_traced(jobs, &tracelog::Trace::disabled())
    }

    /// [`run_jobs`](Self::run_jobs) with span tracing: workers, jobs, and
    /// segment pipeline stages record into `trace` when it is enabled.  The
    /// results are bit-identical either way — a disabled trace records
    /// nothing and costs nothing.
    ///
    /// # Panics
    ///
    /// As [`run_jobs`](Self::run_jobs): panics if a job fails to prepare
    /// (cannot happen for catalog-declared jobs unless the build is broken).
    pub fn run_jobs_traced(&self, jobs: &[SimJob], trace: &tracelog::Trace) -> Vec<JobResult> {
        engine::run_jobs_observed(
            jobs,
            &self.engine(),
            engine::Registry::builtin(),
            &metrics::MetricsConfig::disabled(),
            trace,
        )
        .map(|(results, _)| results)
        .expect("job failed to prepare")
    }

    /// Coverage of a predictor run against a baseline run at `level`.
    pub fn coverage(
        &self,
        baseline: &RunSummary,
        with: &RunSummary,
        level: CoverageLevel,
    ) -> CoverageStats {
        CoverageStats::from_runs(baseline, with, level)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Per-application coverage results aggregated into a class average.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassAverage {
    /// Mean coverage fraction over the class's applications.
    pub coverage: f64,
    /// Mean uncovered fraction.
    pub uncovered: f64,
    /// Mean overprediction fraction.
    pub overpredictions: f64,
}

/// Averages coverage statistics over a set of per-application results.
pub fn class_average(stats: &[CoverageStats]) -> ClassAverage {
    ClassAverage {
        coverage: mean(&stats.iter().map(|s| s.coverage()).collect::<Vec<_>>()),
        uncovered: mean(&stats.iter().map(|s| s.uncovered()).collect::<Vec<_>>()),
        overpredictions: mean(
            &stats
                .iter()
                .map(|s| s.overprediction_fraction())
                .collect::<Vec<_>>(),
        ),
    }
}

/// Resolves an application selection: an empty slice means the full suite
/// (the convention of the per-application figures 5, 11, 12 and 13).
pub fn apps_or_all(apps: &[Application]) -> Vec<Application> {
    if apps.is_empty() {
        Application::ALL.to_vec()
    } else {
        apps.to_vec()
    }
}

/// The applications evaluated for a class in class-level figures.
///
/// Quick-mode experiments evaluate one representative application per class to
/// bound runtime; full runs evaluate the complete suite.
pub fn class_applications(class: ApplicationClass, representative_only: bool) -> Vec<Application> {
    if representative_only {
        match class {
            ApplicationClass::Oltp => vec![Application::OltpDb2],
            ApplicationClass::Dss => vec![Application::DssQry1, Application::DssQry2],
            ApplicationClass::Web => vec![Application::WebApache],
            ApplicationClass::Scientific => vec![Application::Ocean, Application::Sparse],
        }
    } else {
        class.applications().to_vec()
    }
}

/// The class/application pairs evaluated by a class-level figure, in figure
/// order.
pub fn classes_with_applications(
    representative_only: bool,
) -> Vec<(ApplicationClass, Vec<Application>)> {
    ApplicationClass::ALL
        .into_iter()
        .map(|class| (class, class_applications(class, representative_only)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms::SmsConfig;

    #[test]
    fn baseline_and_sms_jobs_complete() {
        let cfg = ExperimentConfig::tiny();
        let jobs = vec![
            cfg.baseline_job(Application::Sparse),
            cfg.job(
                Application::Sparse,
                PrefetcherSpec::sms(&SmsConfig::default()),
            ),
        ];
        let results = cfg.run_jobs(&jobs);
        let baseline = &results[0].summary;
        assert_eq!(baseline.accesses, cfg.accesses as u64);
        assert_eq!(baseline.skipped_accesses, 0);
        let cov = cfg.coverage(baseline, &results[1].summary, CoverageLevel::L1);
        assert!(cov.coverage() > 0.0);
    }

    #[test]
    fn class_average_averages() {
        let a = CoverageStats {
            baseline_misses: 100,
            remaining_misses: 40,
            overpredictions: 10,
            useful_prefetches: 60,
        };
        let b = CoverageStats {
            baseline_misses: 100,
            remaining_misses: 60,
            overpredictions: 30,
            useful_prefetches: 40,
        };
        let avg = class_average(&[a, b]);
        assert!((avg.coverage - 0.5).abs() < 1e-12);
        assert!((avg.uncovered - 0.5).abs() < 1e-12);
        assert!((avg.overpredictions - 0.2).abs() < 1e-12);
    }

    #[test]
    fn representative_sets_are_subsets() {
        for class in ApplicationClass::ALL {
            let reps = class_applications(class, true);
            let all = class_applications(class, false);
            assert!(!reps.is_empty());
            assert!(reps.iter().all(|a| all.contains(a)));
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ExperimentConfig::tiny().accesses < ExperimentConfig::quick().accesses);
        assert!(ExperimentConfig::quick().accesses < ExperimentConfig::full().accesses);
    }

    #[test]
    fn worker_override_threads_through() {
        let cfg = ExperimentConfig::tiny().with_workers(3);
        assert_eq!(cfg.engine().workers, 3);
    }

    #[test]
    fn speculation_override_threads_through() {
        let cfg = ExperimentConfig::tiny().with_workers(4).with_speculation(3);
        let engine = cfg.engine();
        assert_eq!(engine.speculate, 3);
        let plan = engine.segment_plan().expect("speculation implies a plan");
        assert_eq!(plan.speculation, 3);
    }
}
