//! Figure 6: prediction-index comparison (Address, PC+address, PC, PC+offset)
//! with an unbounded PHT.

use crate::common::{class_average, classes_with_applications, ClassAverage, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, RegionConfig, SmsConfig};
use trace::ApplicationClass;

/// Result for one (class, index scheme) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Index scheme evaluated.
    pub scheme: IndexScheme,
    /// Class-average coverage / uncovered / overprediction fractions.
    pub average: ClassAverage,
}

/// Complete result of the Figure 6 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One point per (class, scheme).
    pub points: Vec<IndexingPoint>,
}

/// The engine jobs this figure declares: per class, one baseline per
/// application followed by one idealized-SMS job per (scheme, application).
pub fn jobs(config: &ExperimentConfig, representative_only: bool) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for scheme in IndexScheme::ALL {
            for &app in &apps {
                let sms_config = SmsConfig::idealized(scheme, RegionConfig::paper_default());
                jobs.push(config.job(app, PrefetcherSpec::sms(&sms_config)));
            }
        }
    }
    jobs
}

/// Runs the Figure 6 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig6Result {
    let results = config.run_jobs(&jobs(config, representative_only));
    from_results(config, representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    results: &[JobResult],
) -> Fig6Result {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = Fig6Result::default();
    for (class, apps) in &classes {
        // One baseline per application, reused across schemes.
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for scheme in IndexScheme::ALL {
            let stats: Vec<_> = baselines
                .iter()
                .map(|baseline| {
                    let with = cursor.next().expect("sms run");
                    config.coverage(&baseline.summary, &with.summary, CoverageLevel::L1)
                })
                .collect();
            result.points.push(IndexingPoint {
                class: *class,
                scheme,
                average: class_average(&stats),
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig6Result) -> Table {
    let mut t = Table::new(
        "Figure 6: index comparison, L1 read misses, unbounded PHT",
        &["Class", "Index", "Coverage", "Uncovered", "Overpredictions"],
    );
    for p in &result.points {
        t.push_row(vec![
            p.class.to_string(),
            p.scheme.label().to_string(),
            Table::pct(p.average.coverage),
            Table::pct(p.average.uncovered),
            Table::pct(p.average.overpredictions),
        ]);
    }
    t
}

/// Convenience lookup of the coverage for a (class, scheme) pair.
pub fn coverage_of(result: &Fig6Result, class: ApplicationClass, scheme: IndexScheme) -> f64 {
    result
        .points
        .iter()
        .find(|p| p.class == class && p.scheme == scheme)
        .map(|p| p.average.coverage)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_offset_beats_address_on_dss() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 16);
        // DSS scans visit data once: address-based indexing cannot predict
        // previously-unvisited regions, PC+offset can (the paper's headline
        // qualitative result).
        let dss_pc_off = coverage_of(&result, ApplicationClass::Dss, IndexScheme::PcOffset);
        let dss_addr = coverage_of(&result, ApplicationClass::Dss, IndexScheme::Address);
        assert!(
            dss_pc_off > dss_addr + 0.1,
            "PC+offset ({dss_pc_off:.2}) must clearly beat Address ({dss_addr:.2}) on DSS"
        );
        // All coverages are valid fractions.
        for p in &result.points {
            assert!(p.average.coverage <= 1.0 + 1e-9);
        }
        assert!(table(&result).to_string().contains("PC+off"));
    }
}
