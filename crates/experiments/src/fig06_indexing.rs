//! Figure 6: prediction-index comparison (Address, PC+address, PC, PC+offset)
//! with an unbounded PHT.

use crate::common::{class_applications, class_average, ClassAverage, ExperimentConfig};
use crate::report::Table;
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, RegionConfig, SmsConfig, SmsPrefetcher};
use trace::ApplicationClass;

/// Result for one (class, index scheme) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexingPoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Index scheme evaluated.
    pub scheme: IndexScheme,
    /// Class-average coverage / uncovered / overprediction fractions.
    pub average: ClassAverage,
}

/// Complete result of the Figure 6 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// One point per (class, scheme).
    pub points: Vec<IndexingPoint>,
}

/// Runs the Figure 6 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig6Result {
    let mut result = Fig6Result::default();
    for class in ApplicationClass::ALL {
        let apps = class_applications(class, representative_only);
        // One baseline per application, reused across schemes.
        let baselines: Vec<_> = apps.iter().map(|&app| config.run_baseline(app)).collect();
        for scheme in IndexScheme::ALL {
            let mut stats = Vec::new();
            for (app, baseline) in apps.iter().zip(&baselines) {
                let sms_config = SmsConfig::idealized(scheme, RegionConfig::paper_default());
                let mut sms = SmsPrefetcher::new(config.cpus, &sms_config);
                let with = config.run_with(*app, &mut sms);
                stats.push(config.coverage(baseline, &with, CoverageLevel::L1));
            }
            result.points.push(IndexingPoint {
                class,
                scheme,
                average: class_average(&stats),
            });
        }
    }
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig6Result) -> Table {
    let mut t = Table::new(
        "Figure 6: index comparison, L1 read misses, unbounded PHT",
        &["Class", "Index", "Coverage", "Uncovered", "Overpredictions"],
    );
    for p in &result.points {
        t.push_row(vec![
            p.class.to_string(),
            p.scheme.label().to_string(),
            Table::pct(p.average.coverage),
            Table::pct(p.average.uncovered),
            Table::pct(p.average.overpredictions),
        ]);
    }
    t
}

/// Convenience lookup of the coverage for a (class, scheme) pair.
pub fn coverage_of(result: &Fig6Result, class: ApplicationClass, scheme: IndexScheme) -> f64 {
    result
        .points
        .iter()
        .find(|p| p.class == class && p.scheme == scheme)
        .map(|p| p.average.coverage)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_offset_beats_address_on_dss() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 16);
        // DSS scans visit data once: address-based indexing cannot predict
        // previously-unvisited regions, PC+offset can (the paper's headline
        // qualitative result).
        let dss_pc_off = coverage_of(&result, ApplicationClass::Dss, IndexScheme::PcOffset);
        let dss_addr = coverage_of(&result, ApplicationClass::Dss, IndexScheme::Address);
        assert!(
            dss_pc_off > dss_addr + 0.1,
            "PC+offset ({dss_pc_off:.2}) must clearly beat Address ({dss_addr:.2}) on DSS"
        );
        // All coverages are valid fractions.
        for p in &result.points {
            assert!(p.average.coverage <= 1.0 + 1e-9);
        }
        assert!(table(&result).to_string().contains("PC+off"));
    }
}
