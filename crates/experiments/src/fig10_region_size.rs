//! Figure 10: coverage versus spatial region size (PC+offset indexing, AGT
//! training, unbounded PHT).

use crate::common::{classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, RegionConfig, SmsConfig};
use stats::mean;
use trace::ApplicationClass;

/// Region sizes swept by the paper (bytes).
pub const REGION_SIZES: [u64; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Coverage at one (class, region size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSizePoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Spatial region size in bytes.
    pub region_bytes: u64,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the Figure 10 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// One point per (class, region size).
    pub points: Vec<RegionSizePoint>,
}

/// The engine jobs this figure declares: per class, one baseline per
/// application followed by one idealized-SMS job per (region size,
/// application).
pub fn jobs(config: &ExperimentConfig, representative_only: bool) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for &region_bytes in &REGION_SIZES {
            let region = RegionConfig::new(region_bytes, 64);
            for &app in &apps {
                let sms_config = SmsConfig::idealized(IndexScheme::PcOffset, region);
                jobs.push(config.job(app, PrefetcherSpec::sms(&sms_config)));
            }
        }
    }
    jobs
}

/// Runs the Figure 10 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig10Result {
    let results = config.run_jobs(&jobs(config, representative_only));
    from_results(config, representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    results: &[JobResult],
) -> Fig10Result {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = Fig10Result::default();
    for (class, apps) in &classes {
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for &region_bytes in &REGION_SIZES {
            let coverages: Vec<f64> = baselines
                .iter()
                .map(|baseline| {
                    let with = cursor.next().expect("sms run");
                    config
                        .coverage(&baseline.summary, &with.summary, CoverageLevel::L1)
                        .coverage()
                })
                .collect();
            result.points.push(RegionSizePoint {
                class: *class,
                region_bytes,
                coverage: mean(&coverages),
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig10Result) -> Table {
    let mut headers = vec!["Class".to_string()];
    headers.extend(REGION_SIZES.iter().map(|s| format!("{s}B")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 10: coverage vs spatial region size (PC+offset, AGT, unbounded PHT)",
        &headers_ref,
    );
    for class in ApplicationClass::ALL {
        let mut row = vec![class.to_string()];
        for &size in &REGION_SIZES {
            let cov = result
                .points
                .iter()
                .find(|p| p.class == class && p.region_bytes == size)
                .map(|p| p.coverage)
                .unwrap_or(0.0);
            row.push(Table::pct(cov));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_grows_from_tiny_regions_to_2kb() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 4 * REGION_SIZES.len());
        for class in [ApplicationClass::Dss, ApplicationClass::Scientific] {
            let cov = |size: u64| {
                result
                    .points
                    .iter()
                    .find(|p| p.class == class && p.region_bytes == size)
                    .map(|p| p.coverage)
                    .unwrap()
            };
            assert!(
                cov(2048) > cov(128),
                "{class}: 2kB regions ({:.2}) should beat 128B regions ({:.2})",
                cov(2048),
                cov(128)
            );
        }
        assert!(table(&result).to_string().contains("2048B"));
    }
}
