//! Figure 10: coverage versus spatial region size (PC+offset indexing, AGT
//! training, unbounded PHT).

use crate::common::{class_applications, ExperimentConfig};
use crate::report::Table;
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, IndexScheme, RegionConfig, SmsConfig, SmsPrefetcher};
use stats::mean;
use trace::ApplicationClass;

/// Region sizes swept by the paper (bytes).
pub const REGION_SIZES: [u64; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];

/// Coverage at one (class, region size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSizePoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Spatial region size in bytes.
    pub region_bytes: u64,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the Figure 10 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// One point per (class, region size).
    pub points: Vec<RegionSizePoint>,
}

/// Runs the Figure 10 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig10Result {
    let mut result = Fig10Result::default();
    for class in ApplicationClass::ALL {
        let apps = class_applications(class, representative_only);
        let baselines: Vec<_> = apps.iter().map(|&app| config.run_baseline(app)).collect();
        for &region_bytes in &REGION_SIZES {
            let region = RegionConfig::new(region_bytes, 64);
            let mut coverages = Vec::new();
            for (app, baseline) in apps.iter().zip(&baselines) {
                let sms_config = SmsConfig::idealized(IndexScheme::PcOffset, region);
                let mut sms = SmsPrefetcher::new(config.cpus, &sms_config);
                let with = config.run_with(*app, &mut sms);
                coverages.push(
                    config
                        .coverage(baseline, &with, CoverageLevel::L1)
                        .coverage(),
                );
            }
            result.points.push(RegionSizePoint {
                class,
                region_bytes,
                coverage: mean(&coverages),
            });
        }
    }
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig10Result) -> Table {
    let mut headers = vec!["Class".to_string()];
    headers.extend(REGION_SIZES.iter().map(|s| format!("{s}B")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 10: coverage vs spatial region size (PC+offset, AGT, unbounded PHT)",
        &headers_ref,
    );
    for class in ApplicationClass::ALL {
        let mut row = vec![class.to_string()];
        for &size in &REGION_SIZES {
            let cov = result
                .points
                .iter()
                .find(|p| p.class == class && p.region_bytes == size)
                .map(|p| p.coverage)
                .unwrap_or(0.0);
            row.push(Table::pct(cov));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_grows_from_tiny_regions_to_2kb() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 4 * REGION_SIZES.len());
        for class in [ApplicationClass::Dss, ApplicationClass::Scientific] {
            let cov = |size: u64| {
                result
                    .points
                    .iter()
                    .find(|p| p.class == class && p.region_bytes == size)
                    .map(|p| p.coverage)
                    .unwrap()
            };
            assert!(
                cov(2048) > cov(128),
                "{class}: 2kB regions ({:.2}) should beat 128B regions ({:.2})",
                cov(2048),
                cov(128)
            );
        }
        assert!(table(&result).to_string().contains("2048B"));
    }
}
