//! Section 4.5: Active Generation Table sizing.
//!
//! The paper reports that a 32-entry filter table and a 64-entry accumulation
//! table achieve the same coverage as unbounded tables.  This experiment
//! sweeps AGT sizes and reports class-average coverage.

use crate::common::{classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::{AgtConfig, CoverageLevel, IndexScheme, PhtCapacity, RegionConfig, SmsConfig};
use stats::mean;
use trace::ApplicationClass;

/// The (filter, accumulation) sizes swept; `None` is the unbounded AGT.
pub const AGT_SIZES: [Option<(usize, usize)>; 5] = [
    Some((4, 8)),
    Some((8, 16)),
    Some((16, 32)),
    Some((32, 64)),
    None,
];

/// Coverage at one (class, AGT size) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgtSizePoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Filter/accumulation entries (`None` = unbounded).
    pub sizes: Option<(usize, usize)>,
    /// Class-average L1 coverage.
    pub coverage: f64,
}

/// Complete result of the AGT sizing experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AgtSizeResult {
    /// One point per (class, size).
    pub points: Vec<AgtSizePoint>,
}

/// The SMS configuration evaluated at one AGT size.
fn sms_config(sizes: Option<(usize, usize)>) -> SmsConfig {
    let agt = match sizes {
        Some((filter, accumulation)) => AgtConfig {
            filter_entries: Some(filter),
            accumulation_entries: Some(accumulation),
        },
        None => AgtConfig::unbounded(),
    };
    SmsConfig {
        region: RegionConfig::paper_default(),
        index_scheme: IndexScheme::PcOffset,
        agt,
        pht: PhtCapacity::Unbounded,
        streamer: sms::StreamerConfig::paper_default(),
    }
}

/// The engine jobs this experiment declares: per class, one baseline per
/// application followed by one SMS job per (AGT size, application).
pub fn jobs(config: &ExperimentConfig, representative_only: bool) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for &app in &apps {
            jobs.push(config.baseline_job(app));
        }
        for &sizes in &AGT_SIZES {
            for &app in &apps {
                jobs.push(config.job(app, PrefetcherSpec::sms(&sms_config(sizes))));
            }
        }
    }
    jobs
}

/// Runs the AGT sizing experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> AgtSizeResult {
    let results = config.run_jobs(&jobs(config, representative_only));
    from_results(config, representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this experiment's [`jobs`] list (in
/// submission order) into the result.
pub fn from_results(
    config: &ExperimentConfig,
    representative_only: bool,
    results: &[JobResult],
) -> AgtSizeResult {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = AgtSizeResult::default();
    for (class, apps) in &classes {
        let baselines: Vec<_> = apps
            .iter()
            .map(|_| cursor.next().expect("baseline"))
            .collect();
        for &sizes in &AGT_SIZES {
            let coverages: Vec<f64> = baselines
                .iter()
                .map(|baseline| {
                    let with = cursor.next().expect("sms run");
                    config
                        .coverage(&baseline.summary, &with.summary, CoverageLevel::L1)
                        .coverage()
                })
                .collect();
            result.points.push(AgtSizePoint {
                class: *class,
                sizes,
                coverage: mean(&coverages),
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the experiment as a text table.
pub fn table(result: &AgtSizeResult) -> Table {
    let mut headers = vec!["Class".to_string()];
    headers.extend(AGT_SIZES.iter().map(|s| match s {
        Some((f, a)) => format!("{f}/{a}"),
        None => "infinite".to_string(),
    }));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Section 4.5: coverage vs AGT size (filter/accumulation entries)",
        &headers_ref,
    );
    for class in ApplicationClass::ALL {
        let mut row = vec![class.to_string()];
        for &sizes in &AGT_SIZES {
            let cov = result
                .points
                .iter()
                .find(|p| p.class == class && p.sizes == sizes)
                .map(|p| p.coverage)
                .unwrap_or(0.0);
            row.push(Table::pct(cov));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_unbounded_coverage() {
        let result = run(&ExperimentConfig::tiny(), true);
        for class in ApplicationClass::ALL {
            let cov = |sizes: Option<(usize, usize)>| {
                result
                    .points
                    .iter()
                    .find(|p| p.class == class && p.sizes == sizes)
                    .map(|p| p.coverage)
                    .unwrap()
            };
            let practical = cov(Some((32, 64)));
            let unbounded = cov(None);
            assert!(
                practical >= unbounded - 0.05,
                "{class}: 32/64 AGT ({practical:.2}) should match unbounded ({unbounded:.2})"
            );
        }
        assert!(table(&result).to_string().contains("32/64"));
    }
}
