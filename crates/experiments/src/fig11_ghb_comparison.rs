//! Figure 11: the practical SMS configuration versus the Global History
//! Buffer (GHB PC/DC) at 256 and 16 k entries — off-chip (L2) read-miss
//! coverage per application.

use crate::common::{apps_or_all, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use ghb::GhbConfig;
use serde::{Deserialize, Serialize};
use sms::{CoverageLevel, CoverageStats, SmsConfig};
use trace::Application;

/// The prefetchers compared in Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig11Prefetcher {
    /// GHB PC/DC with a 256-entry history buffer.
    Ghb256,
    /// GHB PC/DC with a 16k-entry history buffer.
    Ghb16k,
    /// The practical SMS configuration (32/64 AGT, 2 kB regions, 16 k x
    /// 16-way PHT).
    Sms,
}

impl Fig11Prefetcher {
    /// All three configurations in figure order.
    pub const ALL: [Fig11Prefetcher; 3] = [
        Fig11Prefetcher::Ghb256,
        Fig11Prefetcher::Ghb16k,
        Fig11Prefetcher::Sms,
    ];

    /// Label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            Fig11Prefetcher::Ghb256 => "GHB-256",
            Fig11Prefetcher::Ghb16k => "GHB-16k",
            Fig11Prefetcher::Sms => "SMS",
        }
    }

    /// The engine spec for this configuration.
    pub fn spec(self) -> PrefetcherSpec {
        match self {
            Fig11Prefetcher::Ghb256 => PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            Fig11Prefetcher::Ghb16k => PrefetcherSpec::ghb(&GhbConfig::paper_large()),
            Fig11Prefetcher::Sms => PrefetcherSpec::sms(&SmsConfig::paper_default()),
        }
    }
}

/// Result for one (application, prefetcher) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Point {
    /// Application evaluated.
    pub app: Application,
    /// Prefetcher configuration.
    pub prefetcher: Fig11Prefetcher,
    /// Off-chip read-miss coverage statistics.
    pub coverage: CoverageStats,
}

/// Complete result of the Figure 11 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// One point per (application, prefetcher).
    pub points: Vec<Fig11Point>,
}

/// The engine jobs this figure declares: per application, one baseline
/// followed by the three compared prefetcher configurations.
pub fn jobs(config: &ExperimentConfig, apps: &[Application]) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for &app in apps {
        jobs.push(config.baseline_job(app));
        for prefetcher in Fig11Prefetcher::ALL {
            jobs.push(config.job(app, prefetcher.spec()));
        }
    }
    jobs
}

/// Runs the Figure 11 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig11Result {
    let apps = apps_or_all(apps);
    let results = config.run_jobs(&jobs(config, &apps));
    from_results(config, &apps, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(
    config: &ExperimentConfig,
    apps: &[Application],
    results: &[JobResult],
) -> Fig11Result {
    let mut cursor = results.iter();

    let mut result = Fig11Result::default();
    for &app in apps {
        let baseline = cursor.next().expect("baseline");
        for prefetcher in Fig11Prefetcher::ALL {
            let with = cursor.next().expect("prefetcher run");
            result.points.push(Fig11Point {
                app,
                prefetcher,
                coverage: config.coverage(&baseline.summary, &with.summary, CoverageLevel::L2),
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig11Result) -> Table {
    let mut t = Table::new(
        "Figure 11: off-chip read-miss coverage, GHB vs practical SMS",
        &[
            "App",
            "Prefetcher",
            "Coverage",
            "Uncovered",
            "Overpredictions",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.app.short_name().to_string(),
            p.prefetcher.label().to_string(),
            Table::pct(p.coverage.coverage()),
            Table::pct(p.coverage.uncovered()),
            Table::pct(p.coverage.overprediction_fraction()),
        ]);
    }
    t
}

/// Convenience lookup of a coverage fraction.
pub fn coverage_of(result: &Fig11Result, app: Application, prefetcher: Fig11Prefetcher) -> f64 {
    result
        .points
        .iter()
        .find(|p| p.app == app && p.prefetcher == prefetcher)
        .map(|p| p.coverage.coverage())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_beats_ghb_on_oltp_and_matches_on_scientific() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::OltpDb2, Application::Sparse]);
        assert_eq!(result.points.len(), 6);
        // OLTP interleaves many regions: SMS should clearly beat GHB.
        let sms_oltp = coverage_of(&result, Application::OltpDb2, Fig11Prefetcher::Sms);
        let ghb_oltp = coverage_of(&result, Application::OltpDb2, Fig11Prefetcher::Ghb16k);
        assert!(
            sms_oltp > ghb_oltp,
            "SMS ({sms_oltp:.2}) should beat GHB-16k ({ghb_oltp:.2}) on OLTP"
        );
        // On the regular scientific kernel both predictors do well.
        let sms_sci = coverage_of(&result, Application::Sparse, Fig11Prefetcher::Sms);
        assert!(sms_sci > 0.3, "SMS should cover sparse ({sms_sci:.2})");
        assert!(table(&result).to_string().contains("GHB-256"));
    }
}
