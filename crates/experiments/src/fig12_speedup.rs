//! Figure 12: speedup of SMS over the baseline system with 95 % confidence
//! intervals, per application, plus the geometric mean.

use crate::common::ExperimentConfig;
use crate::report::Table;
use memsim::NullPrefetcher;
use serde::{Deserialize, Serialize};
use sms::{SmsConfig, SmsPrefetcher};
use stats::{geometric_mean, ConfidenceInterval};
use timing::{speedup_with_ci, TimingConfig, TimingModel, TimingResult};
use trace::{Application, ApplicationClass};

/// Number of paired-sampling segments per run.
pub const SEGMENTS: usize = 20;

/// Speedup of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Application evaluated.
    pub app: Application,
    /// Speedup with its 95 % confidence interval (paired segments).
    pub speedup: ConfidenceInterval,
    /// Aggregate speedup from total cycles (base / SMS).
    pub aggregate: f64,
}

/// Complete result of the Figure 12 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// One point per application.
    pub points: Vec<SpeedupPoint>,
    /// Geometric mean of the aggregate speedups.
    pub geometric_mean: f64,
}

/// System-busy fraction per workload class: commercial workloads spend far
/// more time in the operating system than scientific kernels.
fn system_busy_fraction(class: ApplicationClass) -> f64 {
    match class {
        ApplicationClass::Oltp => 0.25,
        ApplicationClass::Dss => 0.10,
        ApplicationClass::Web => 0.30,
        ApplicationClass::Scientific => 0.02,
    }
}

/// Runs both timing evaluations (baseline and SMS) for one application.
pub fn evaluate_app(config: &ExperimentConfig, app: Application) -> (TimingResult, TimingResult) {
    let timing =
        TimingConfig::table1().with_system_busy_fraction(system_busy_fraction(app.class()));
    let model = TimingModel::new(config.hierarchy, config.cpus, timing);
    let generator = config.generator();

    let mut base = NullPrefetcher::new();
    let mut stream = app.stream(config.seed, &generator);
    let base_result = model.evaluate(&mut base, &mut stream, config.accesses, SEGMENTS);

    let mut sms = SmsPrefetcher::new(config.cpus, &SmsConfig::paper_default());
    let mut stream = app.stream(config.seed, &generator);
    let sms_result = model.evaluate(&mut sms, &mut stream, config.accesses, SEGMENTS);
    (base_result, sms_result)
}

/// Runs the Figure 12 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig12Result {
    let apps: Vec<Application> = if apps.is_empty() {
        Application::ALL.to_vec()
    } else {
        apps.to_vec()
    };
    let mut result = Fig12Result::default();
    let mut aggregates = Vec::new();
    for app in apps {
        let (base_result, sms_result) = evaluate_app(config, app);
        let ci = speedup_with_ci(&base_result, &sms_result);
        let aggregate = base_result.total_cycles / sms_result.total_cycles.max(1e-9);
        aggregates.push(aggregate);
        result.points.push(SpeedupPoint {
            app,
            speedup: ci,
            aggregate,
        });
    }
    result.geometric_mean = geometric_mean(&aggregates);
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig12Result) -> Table {
    let mut t = Table::new(
        "Figure 12: speedup over the baseline (95% confidence intervals)",
        &["App", "Speedup", "95% CI", "Aggregate"],
    );
    for p in &result.points {
        t.push_row(vec![
            p.app.short_name().to_string(),
            format!("{:.3}", p.speedup.mean),
            format!("±{:.3}", p.speedup.half_width),
            format!("{:.3}", p.aggregate),
        ]);
    }
    t.push_row(vec![
        "geomean".to_string(),
        format!("{:.3}", result.geometric_mean),
        String::new(),
        format!("{:.3}", result.geometric_mean),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_speeds_up_predictable_workloads() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::Sparse, Application::OltpDb2]);
        assert_eq!(result.points.len(), 2);
        let sparse = &result.points[0];
        assert!(
            sparse.aggregate > 1.05,
            "sparse should speed up clearly (got {:.3})",
            sparse.aggregate
        );
        // OLTP speedup is muted relative to coverage but must not be a
        // slowdown beyond noise.
        let oltp = &result.points[1];
        assert!(
            oltp.aggregate > 0.95,
            "OLTP aggregate {:.3}",
            oltp.aggregate
        );
        assert!(
            sparse.aggregate > oltp.aggregate,
            "scientific speedup should exceed OLTP speedup"
        );
        assert!(result.geometric_mean > 1.0);
        assert!(table(&result).to_string().contains("geomean"));
    }
}
