//! Figure 12: speedup of SMS over the baseline system with 95 % confidence
//! intervals, per application, plus the geometric mean.

use crate::common::{apps_or_all, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::SmsConfig;
use stats::{geometric_mean, ConfidenceInterval};
use timing::{speedup_with_ci, TimingConfig, TimingResult};
use trace::{Application, ApplicationClass};

/// Number of paired-sampling segments per run.
pub const SEGMENTS: usize = 20;

/// Speedup of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Application evaluated.
    pub app: Application,
    /// Speedup with its 95 % confidence interval (paired segments).
    pub speedup: ConfidenceInterval,
    /// Aggregate speedup from total cycles (base / SMS).
    pub aggregate: f64,
}

/// Complete result of the Figure 12 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// One point per application.
    pub points: Vec<SpeedupPoint>,
    /// Geometric mean of the aggregate speedups.
    pub geometric_mean: f64,
}

/// System-busy fraction per workload class: commercial workloads spend far
/// more time in the operating system than scientific kernels.
fn system_busy_fraction(class: ApplicationClass) -> f64 {
    match class {
        ApplicationClass::Oltp => 0.25,
        ApplicationClass::Dss => 0.10,
        ApplicationClass::Web => 0.30,
        ApplicationClass::Scientific => 0.02,
    }
}

/// The pair of timing jobs (baseline, practical SMS) evaluating one
/// application; shared with Figure 13.
pub fn timing_jobs(config: &ExperimentConfig, app: Application) -> [SimJob; 2] {
    let timing =
        TimingConfig::table1().with_system_busy_fraction(system_busy_fraction(app.class()));
    [
        config.timing_job(app, PrefetcherSpec::null(), timing, SEGMENTS),
        config.timing_job(
            app,
            PrefetcherSpec::sms(&SmsConfig::paper_default()),
            timing,
            SEGMENTS,
        ),
    ]
}

/// The engine jobs this figure declares: a (baseline, SMS) timing pair per
/// application.
pub fn jobs(config: &ExperimentConfig, apps: &[Application]) -> Vec<SimJob> {
    apps.iter()
        .flat_map(|&app| timing_jobs(config, app))
        .collect()
}

/// Executes the job list and returns, per application, the (baseline, SMS)
/// timing result pair; shared with Figure 13.
pub fn evaluate_apps(
    config: &ExperimentConfig,
    apps: &[Application],
) -> Vec<(TimingResult, TimingResult)> {
    evaluations_from_results(&config.run_jobs(&jobs(config, apps)))
}

/// Extracts the per-application (baseline, SMS) timing pairs from the
/// [`JobResult`]s of this figure's [`jobs`] list, in submission order.
pub fn evaluations_from_results(results: &[JobResult]) -> Vec<(TimingResult, TimingResult)> {
    results
        .chunks_exact(2)
        .map(|pair| {
            let base = pair[0].timing.clone().expect("baseline timing job");
            let sms = pair[1].timing.clone().expect("sms timing job");
            (base, sms)
        })
        .collect()
}

/// Builds the figure from already-executed (baseline, SMS) timing pairs —
/// shared with Figure 13 so an `all` run simulates each pair only once.
pub fn from_evaluations(
    apps: &[Application],
    evaluations: &[(TimingResult, TimingResult)],
) -> Fig12Result {
    assert_eq!(apps.len(), evaluations.len(), "one timing pair per app");
    let mut result = Fig12Result::default();
    let mut aggregates = Vec::new();
    for (app, (base_result, sms_result)) in apps.iter().zip(evaluations) {
        let ci = speedup_with_ci(base_result, sms_result);
        let aggregate = base_result.total_cycles / sms_result.total_cycles.max(1e-9);
        aggregates.push(aggregate);
        result.points.push(SpeedupPoint {
            app: *app,
            speedup: ci,
            aggregate,
        });
    }
    result.geometric_mean = geometric_mean(&aggregates);
    result
}

/// Runs the Figure 12 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig12Result {
    let apps = apps_or_all(apps);
    from_evaluations(&apps, &evaluate_apps(config, &apps))
}

/// Renders the figure as a text table.
pub fn table(result: &Fig12Result) -> Table {
    let mut t = Table::new(
        "Figure 12: speedup over the baseline (95% confidence intervals)",
        &["App", "Speedup", "95% CI", "Aggregate"],
    );
    for p in &result.points {
        t.push_row(vec![
            p.app.short_name().to_string(),
            format!("{:.3}", p.speedup.mean),
            format!("±{:.3}", p.speedup.half_width),
            format!("{:.3}", p.aggregate),
        ]);
    }
    t.push_row(vec![
        "geomean".to_string(),
        format!("{:.3}", result.geometric_mean),
        String::new(),
        format!("{:.3}", result.geometric_mean),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_speeds_up_predictable_workloads() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::Sparse, Application::OltpDb2]);
        assert_eq!(result.points.len(), 2);
        let sparse = &result.points[0];
        assert!(
            sparse.aggregate > 1.05,
            "sparse should speed up clearly (got {:.3})",
            sparse.aggregate
        );
        // OLTP speedup is muted relative to coverage but must not be a
        // slowdown beyond noise.
        let oltp = &result.points[1];
        assert!(
            oltp.aggregate > 0.95,
            "OLTP aggregate {:.3}",
            oltp.aggregate
        );
        assert!(
            sparse.aggregate > oltp.aggregate,
            "scientific speedup should exceed OLTP speedup"
        );
        assert!(result.geometric_mean > 1.0);
        assert!(table(&result).to_string().contains("geomean"));
    }
}
