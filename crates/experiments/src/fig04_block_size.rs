//! Figure 4: L1 and L2 normalized read miss rate versus block/region size,
//! with the oracle "opportunity" predictor and false sharing beyond 64 B.

use crate::common::{classes_with_applications, ExperimentConfig};
use crate::report::Table;
use engine::{JobResult, OracleProbeSpec, PrefetcherSpec, SimJob};
use serde::{Deserialize, Serialize};
use sms::RegionConfig;
use trace::ApplicationClass;

/// Block/region sizes the paper sweeps (bytes).
pub const BLOCK_SIZES: [u64; 5] = [64, 128, 512, 2048, 8192];

/// One data point of the figure: a workload class at a block/region size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSizePoint {
    /// Workload class.
    pub class: ApplicationClass,
    /// Block/region size in bytes.
    pub block_bytes: u64,
    /// L1 read miss rate with this block size, normalized to the 64 B L1
    /// miss rate (excluding false sharing).
    pub l1_other_misses: f64,
    /// Additional normalized L1 misses caused by false sharing beyond 64 B.
    pub l1_false_sharing: f64,
    /// Normalized oracle (opportunity) L1 miss rate at this region size.
    pub l1_opportunity: f64,
    /// Same three series for off-chip (L2) misses.
    pub l2_other_misses: f64,
    /// Normalized off-chip false sharing misses.
    pub l2_false_sharing: f64,
    /// Normalized off-chip oracle miss rate.
    pub l2_opportunity: f64,
}

/// Complete result of the Figure 4 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One point per (class, block size).
    pub points: Vec<BlockSizePoint>,
}

/// The engine jobs this figure declares: per application, one 64 B baseline
/// carrying an oracle probe for every region size, followed by one plain
/// baseline per larger block size.
pub fn jobs(config: &ExperimentConfig, representative_only: bool) -> Vec<SimJob> {
    let mut jobs = Vec::new();
    for (_, apps) in classes_with_applications(representative_only) {
        for app in apps {
            jobs.push(
                config.job(
                    app,
                    PrefetcherSpec::oracle_probe(&OracleProbeSpec {
                        regions: BLOCK_SIZES
                            .iter()
                            .map(|&bs| RegionConfig::new(bs.max(128), 64))
                            .collect(),
                        read_only: true,
                    }),
                ),
            );
            for &bs in BLOCK_SIZES.iter().filter(|&&bs| bs != 64) {
                jobs.push(config.job_with_hierarchy(
                    app,
                    PrefetcherSpec::null(),
                    config.hierarchy.with_block_bytes(bs),
                ));
            }
        }
    }
    jobs
}

/// Runs the Figure 4 experiment.
pub fn run(config: &ExperimentConfig, representative_only: bool) -> Fig4Result {
    let results = config.run_jobs(&jobs(config, representative_only));
    from_results(representative_only, &results)
}

/// Post-processes the [`JobResult`]s of this figure's [`jobs`] list (in
/// submission order) into the figure.
pub fn from_results(representative_only: bool, results: &[JobResult]) -> Fig4Result {
    let classes = classes_with_applications(representative_only);
    let mut cursor = results.iter();

    let mut result = Fig4Result::default();
    for (class, apps) in &classes {
        // Accumulators per block size: (l1_other, l1_fs, l1_opp, l2_other, l2_fs, l2_opp)
        let mut sums = vec![[0.0f64; 6]; BLOCK_SIZES.len()];
        for _ in apps {
            // Baseline at 64B with oracles for each region size.
            let probe_run = cursor.next().expect("oracle probe result");
            let oracle = probe_run.probe.oracle().expect("oracle probe job");
            let (l1_opps, l2_opps) = (&oracle.l1_misses, &oracle.l2_misses);
            let base64 = &probe_run.summary;
            let l1_base = base64.l1.read_misses.max(1) as f64;
            let l2_base = base64.l2.read_misses.max(1) as f64;

            for (i, &bs) in BLOCK_SIZES.iter().enumerate() {
                let (l1_other, l1_fs, l2_other, l2_fs) = if bs == 64 {
                    (1.0, 0.0, 1.0, 0.0)
                } else {
                    let summary = &cursor.next().expect("block-size baseline result").summary;
                    (
                        summary.l1_breakdown.other_than_false_sharing() as f64 / l1_base,
                        summary.l1_breakdown.false_sharing as f64 / l1_base,
                        summary.l2_breakdown.other_than_false_sharing() as f64 / l2_base,
                        summary.l2_breakdown.false_sharing as f64 / l2_base,
                    )
                };
                let acc = &mut sums[i];
                acc[0] += l1_other;
                acc[1] += l1_fs;
                acc[2] += l1_opps[i] as f64 / l1_base;
                acc[3] += l2_other;
                acc[4] += l2_fs;
                acc[5] += l2_opps[i] as f64 / l2_base;
            }
        }
        let n = apps.len() as f64;
        for (i, &bs) in BLOCK_SIZES.iter().enumerate() {
            let acc = &sums[i];
            result.points.push(BlockSizePoint {
                class: *class,
                block_bytes: bs,
                l1_other_misses: acc[0] / n,
                l1_false_sharing: acc[1] / n,
                l1_opportunity: acc[2] / n,
                l2_other_misses: acc[3] / n,
                l2_false_sharing: acc[4] / n,
                l2_opportunity: acc[5] / n,
            });
        }
    }
    assert!(
        cursor.next().is_none(),
        "job declaration and result post-processing fell out of sync"
    );
    result
}

/// Renders the figure as a text table.
pub fn table(result: &Fig4Result) -> Table {
    let mut t = Table::new(
        "Figure 4: normalized read miss rate vs block/region size (1.0 = 64B baseline)",
        &[
            "Class",
            "Size",
            "L1 misses",
            "L1 false-sharing",
            "L1 opportunity",
            "L2 misses",
            "L2 false-sharing",
            "L2 opportunity",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.class.to_string(),
            format!("{}B", p.block_bytes),
            Table::num(p.l1_other_misses),
            Table::num(p.l1_false_sharing),
            Table::num(p.l1_opportunity),
            Table::num(p.l2_other_misses),
            Table::num(p.l2_false_sharing),
            Table::num(p.l2_opportunity),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opportunity_grows_with_region_size() {
        let result = run(&ExperimentConfig::tiny(), true);
        assert_eq!(result.points.len(), 4 * BLOCK_SIZES.len());
        for class in ApplicationClass::ALL {
            let points: Vec<&BlockSizePoint> =
                result.points.iter().filter(|p| p.class == class).collect();
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            assert!(
                last.l1_opportunity <= first.l1_opportunity + 1e-9,
                "{class}: opportunity miss rate should not grow with region size"
            );
            // The 64B points are normalized to exactly 1.0.
            assert!((first.l1_other_misses - 1.0).abs() < 1e-9);
        }
        let t = table(&result);
        assert!(t.to_string().contains("8192B"));
    }
}
