//! Figure 13: normalized execution-time breakdown of the baseline and SMS
//! systems, per application.

use crate::common::ExperimentConfig;
use crate::fig12_speedup::evaluate_apps;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use timing::{BreakdownComparison, TimingResult};
use trace::Application;

/// This figure evaluates exactly the (baseline, SMS) timing pairs of
/// Figure 12, so it shares that figure's job declaration.
pub use crate::fig12_speedup::jobs;

/// Breakdown comparison for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownPoint {
    /// Application evaluated.
    pub app: Application,
    /// Normalized base/SMS breakdown pair.
    pub comparison: BreakdownComparison,
}

/// Complete result of the Figure 13 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// One point per application.
    pub points: Vec<BreakdownPoint>,
}

/// Builds the figure from already-executed (baseline, SMS) timing pairs —
/// shared with Figure 12 so an `all` run simulates each pair only once.
pub fn from_evaluations(
    apps: &[Application],
    evaluations: &[(TimingResult, TimingResult)],
) -> Fig13Result {
    assert_eq!(apps.len(), evaluations.len(), "one timing pair per app");
    let mut result = Fig13Result::default();
    for (app, (base_result, sms_result)) in apps.iter().zip(evaluations) {
        result.points.push(BreakdownPoint {
            app: *app,
            comparison: BreakdownComparison::new(base_result, sms_result),
        });
    }
    result
}

/// Runs the Figure 13 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig13Result {
    let apps = crate::common::apps_or_all(apps);
    from_evaluations(&apps, &evaluate_apps(config, &apps))
}

/// Renders the figure as a text table (two rows per application).
pub fn table(result: &Fig13Result) -> Table {
    let mut t = Table::new(
        "Figure 13: normalized time breakdown (base total = 1.0)",
        &[
            "App",
            "System",
            "User busy",
            "System busy",
            "Off-chip read",
            "On-chip read",
            "Store buffer",
            "Other",
            "Total",
        ],
    );
    for p in &result.points {
        for (label, b) in [
            ("base", &p.comparison.base),
            ("SMS", &p.comparison.enhanced),
        ] {
            t.push_row(vec![
                p.app.short_name().to_string(),
                label.to_string(),
                Table::num(b.user_busy),
                Table::num(b.system_busy),
                Table::num(b.offchip_read),
                Table::num(b.onchip_read),
                Table::num(b.store_buffer),
                Table::num(b.other),
                Table::num(b.total()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_reduces_offchip_read_time() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::Sparse]);
        let p = &result.points[0];
        assert!((p.comparison.base.total() - 1.0).abs() < 1e-9);
        assert!(
            p.comparison.enhanced.offchip_read < p.comparison.base.offchip_read,
            "SMS must shrink off-chip read stall time"
        );
        // Busy time per unit of work is unchanged by prefetching.
        assert!(
            (p.comparison.base.user_busy - p.comparison.enhanced.user_busy).abs()
                < p.comparison.base.user_busy * 0.05
        );
        assert!(table(&result).to_string().contains("Store buffer"));
    }
}
