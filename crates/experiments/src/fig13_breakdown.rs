//! Figure 13: normalized execution-time breakdown of the baseline and SMS
//! systems, per application.

use crate::common::ExperimentConfig;
use crate::fig12_speedup::evaluate_app;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use timing::BreakdownComparison;
use trace::Application;

/// Breakdown comparison for one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownPoint {
    /// Application evaluated.
    pub app: Application,
    /// Normalized base/SMS breakdown pair.
    pub comparison: BreakdownComparison,
}

/// Complete result of the Figure 13 experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// One point per application.
    pub points: Vec<BreakdownPoint>,
}

/// Runs the Figure 13 experiment over `apps` (the full suite when empty).
pub fn run(config: &ExperimentConfig, apps: &[Application]) -> Fig13Result {
    let apps: Vec<Application> = if apps.is_empty() {
        Application::ALL.to_vec()
    } else {
        apps.to_vec()
    };
    let mut result = Fig13Result::default();
    for app in apps {
        let (base_result, sms_result) = evaluate_app(config, app);
        result.points.push(BreakdownPoint {
            app,
            comparison: BreakdownComparison::new(&base_result, &sms_result),
        });
    }
    result
}

/// Renders the figure as a text table (two rows per application).
pub fn table(result: &Fig13Result) -> Table {
    let mut t = Table::new(
        "Figure 13: normalized time breakdown (base total = 1.0)",
        &[
            "App",
            "System",
            "User busy",
            "System busy",
            "Off-chip read",
            "On-chip read",
            "Store buffer",
            "Other",
            "Total",
        ],
    );
    for p in &result.points {
        for (label, b) in [
            ("base", &p.comparison.base),
            ("SMS", &p.comparison.enhanced),
        ] {
            t.push_row(vec![
                p.app.short_name().to_string(),
                label.to_string(),
                Table::num(b.user_busy),
                Table::num(b.system_busy),
                Table::num(b.offchip_read),
                Table::num(b.onchip_read),
                Table::num(b.store_buffer),
                Table::num(b.other),
                Table::num(b.total()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sms_reduces_offchip_read_time() {
        let config = ExperimentConfig::tiny();
        let result = run(&config, &[Application::Sparse]);
        let p = &result.points[0];
        assert!((p.comparison.base.total() - 1.0).abs() < 1e-9);
        assert!(
            p.comparison.enhanced.offchip_read < p.comparison.base.offchip_read,
            "SMS must shrink off-chip read stall time"
        );
        // Busy time per unit of work is unchanged by prefetching.
        assert!(
            (p.comparison.base.user_busy - p.comparison.enhanced.user_busy).abs()
                < p.comparison.base.user_busy * 0.05
        );
        assert!(table(&result).to_string().contains("Store buffer"));
    }
}
