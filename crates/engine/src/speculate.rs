//! Speculative (run-ahead) segment execution with fingerprint-verified
//! commits.
//!
//! The segment pipeline in [`crate::segment`] overlaps the pull and account
//! stages with simulation, but the simulate stage itself still advances one
//! segment at a time on the calling thread.  This module moves simulation to
//! a dedicated **speculative worker** that chains ahead of the owner: after
//! finishing segment `k` it immediately starts `k+1` from its own end state,
//! without waiting for the owner to verify and commit `k`.  The owner
//! becomes a **commit frontier**:
//!
//! ```text
//!   owner --Segment(seq, buffer, tape)--> worker   (speculate ahead)
//!   worker --SpecResult{seq, start_fp, end_fp, tape, ...}--> owner
//!   owner: start_fp == committed_fp ?  commit : discard + Replay(seq, ...)
//! ```
//!
//! Every result carries the [`StateFingerprint`] of the state the worker
//! *started* the segment from.  The owner commits a result only when it is
//! the next segment in order **and** its start fingerprint equals the
//! fingerprint of the last committed state — i.e. the speculation provably
//! continued the authoritative history.  On a match the segment's outcome
//! tape is handed to the account stage and the frontier advances; on a
//! mismatch the speculative outcome is discarded and the raw segment is sent
//! back as a [`WorkerMsg::Replay`], which restores the worker's rollback
//! snapshot (or continues from its now-authoritative state) and re-simulates
//! the segment for real.  Committed results are therefore **bit-identical to
//! the serial run by construction**: nothing reaches the accounting state
//! without passing verification, and a replay that fails verification again
//! panics rather than committing.
//!
//! Because the worker chains its own states, clean-path speculation always
//! verifies — a mispredict requires the start state to *diverge* from the
//! committed history, which only the test-only fault injection
//! ([`SegmentPlan::with_mispredict_every`](crate::SegmentPlan::with_mispredict_every))
//! does deliberately: it snapshots the clean state (system clone + probe
//! [`fork`](crate::plugin::Probe::fork)), perturbs the live state with one
//! off-stream access, and lets verification catch the divergence.  That
//! keeps the mispredict/replay machinery honest and permanently exercised
//! without ever risking a wrong result.
//!
//! Thread topology (`threads` is the plan's budget, clamped to `2..=4`):
//!
//! * 2 — owner pulls, verifies and accounts; worker simulates;
//! * 3 — owner pulls and verifies; a helper accounts; worker simulates;
//! * 4 — owner verifies; helpers pull and account; worker simulates.

use crate::plugin::BuiltPrefetcher;
use crate::segment::{as_micros, AccountState, Pipeline, PipelineEnd, SegmentTelemetry};
use memsim::{
    DriverMeter, DriverMetrics, MultiCpuSystem, OutcomeTape, PrefetchRequest, SegmentCounts,
    StateFingerprint,
};
use metrics::{Histogram, Stopwatch};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc;
use trace::{fill_segment, BoxedStream, MemAccess};
use tracelog::Recorder;

/// A message from the owner to the speculative worker.
enum WorkerMsg {
    /// Simulate this pulled segment from the worker's chained state.
    Segment(u64, Vec<MemAccess>, OutcomeTape),
    /// Verification failed: restore the rollback snapshot if one is
    /// pending, then re-simulate this segment from the (authoritative)
    /// current state.
    Replay(u64, Vec<MemAccess>, OutcomeTape),
}

/// One speculatively simulated segment, reported back for verification.
struct SpecResult {
    seq: u64,
    /// Fingerprint of the state the worker started this segment from.
    start_fp: StateFingerprint,
    /// Fingerprint of the state after simulating the segment.
    end_fp: StateFingerprint,
    /// The raw segment, returned so a failed verification can replay it.
    accesses: Vec<MemAccess>,
    tape: OutcomeTape,
    /// This segment's contribution to the pipeline counts.
    counts: SegmentCounts,
    /// This segment's contribution to the driver telemetry (absorbed into
    /// the job meter only on commit, so discarded speculation never skews
    /// the counters).
    meter: DriverMetrics,
    /// Wall-clock microseconds the worker spent simulating this segment
    /// (folded into the simulate latency histogram only on commit).
    simulate_us: u64,
}

/// Everything that can wake the owner: a pulled segment, a recycled
/// buffer/tape pair, or a speculative result to verify.  Merging all three
/// onto one channel lets the owner block on a single receiver.
enum OwnerEvent {
    Pulled(Vec<MemAccess>),
    Recycled(Vec<MemAccess>, OutcomeTape),
    // Boxed: the embedded driver metrics carry a histogram, which would
    // otherwise dwarf the other variants.
    Result(Box<SpecResult>),
    // A stage thread panicked.  The payload is forwarded so the owner can
    // resume the unwind on its own thread — if the panicking stage merely
    // hung up, the other stages' live senders would keep the owner blocked
    // on this channel forever.
    StagePanicked(Box<dyn std::any::Any + Send>),
}

/// Where segment pulls happen: on the owner (2–3 threads) or a helper (4).
enum PullStage {
    Inline {
        stream: BoxedStream,
        remaining: usize,
        seconds: f64,
    },
    Helper {
        tasks: mpsc::Sender<Vec<MemAccess>>,
    },
}

/// Where tape replay happens: on the owner (2 threads) or a helper (3–4).
enum AccountStage {
    Inline {
        // Boxed so the variant stays comparable in size to `Helper`.
        state: Box<AccountState>,
        seconds: f64,
    },
    Helper {
        tasks: mpsc::Sender<(Vec<MemAccess>, OutcomeTape)>,
    },
}

/// The speculative worker's loop: simulate every incoming segment from the
/// current chained state and report a fingerprint-bracketed result.  The
/// final (system, prefetcher) pair — the committed end state, once the owner
/// has verified everything — is returned to the owner at join.
fn worker_loop(
    mut system: MultiCpuSystem,
    mut prefetcher: BuiltPrefetcher,
    msgs: mpsc::Receiver<WorkerMsg>,
    events: mpsc::Sender<OwnerEvent>,
    mispredict_every: u64,
    recorder: Recorder,
) -> (MultiCpuSystem, BuiltPrefetcher) {
    // Prefetcher callbacks are plugin code, so a panic lands on *this*
    // thread.  Catch it and forward the payload as an event before this
    // thread's channel ends drop: the other stages' live `events` clones
    // would otherwise keep the owner blocked on its receiver forever.  The
    // owner re-raises the payload inside the job's isolation boundary.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_worker_loop(
            &mut system,
            &mut prefetcher,
            &msgs,
            &events,
            mispredict_every,
            &recorder,
        );
    }));
    if let Err(payload) = caught {
        let _ = events.send(OwnerEvent::StagePanicked(payload));
    }
    (system, prefetcher)
}

/// The body of [`worker_loop`], split out so the panic boundary above stays
/// readable.  The state is borrowed, not owned, so the worker can hand it
/// back at join even after a caught panic.
fn run_worker_loop(
    system: &mut MultiCpuSystem,
    prefetcher: &mut BuiltPrefetcher,
    msgs: &mpsc::Receiver<WorkerMsg>,
    events: &mpsc::Sender<OwnerEvent>,
    mispredict_every: u64,
    recorder: &Recorder,
) {
    let mut chain_fp = system.fingerprint();
    let mut batch: Vec<PrefetchRequest> = Vec::new();
    // Fault injection keeps exactly one clean snapshot: `faulted` blocks
    // re-injection until a replay has restored it, so the rollback is never
    // overwritten by wrong-path state.
    let mut rollback: Option<(MultiCpuSystem, BuiltPrefetcher)> = None;
    let mut faulted = false;
    while let Ok(msg) = msgs.recv() {
        let (seq, buffer, mut tape, replay) = match msg {
            WorkerMsg::Segment(seq, buffer, tape) => (seq, buffer, tape, false),
            WorkerMsg::Replay(seq, buffer, tape) => (seq, buffer, tape, true),
        };
        if replay {
            if let Some((clean_system, clean_prefetcher)) = rollback.take() {
                *system = clean_system;
                *prefetcher = clean_prefetcher;
                chain_fp = system.fingerprint();
            }
            // Without a pending rollback the current state is already
            // authoritative: it is the end state of the previous committed
            // (or replayed) segment.
            faulted = false;
        } else if mispredict_every > 0 && !faulted && seq % mispredict_every == mispredict_every - 1
        {
            if let Some(clean_prefetcher) = prefetcher.fork() {
                rollback = Some((system.clone(), clean_prefetcher));
                faulted = true;
                // Perturb the live state with one off-stream access so this
                // segment's start no longer matches the commit frontier.
                let mut scratch_tape = OutcomeTape::new();
                let mut scratch_counts = SegmentCounts::default();
                memsim::run_segment_deferred(
                    system,
                    prefetcher,
                    &[MemAccess::read(0, 0, 0)],
                    &mut batch,
                    &mut scratch_tape,
                    &mut scratch_counts,
                    &mut (),
                );
                chain_fp = system.fingerprint();
            }
        }
        let start_fp = chain_fp;
        tape.clear();
        let mut counts = SegmentCounts::default();
        let mut meter = DriverMetrics::default();
        let mut span = recorder.span("seg.speculate");
        span.arg_u64("segment", seq);
        span.arg_u64("replay", replay as u64);
        let watch = Stopwatch::started();
        memsim::run_segment_deferred(
            system,
            prefetcher,
            &buffer,
            &mut batch,
            &mut tape,
            &mut counts,
            &mut meter,
        );
        let simulate_us = as_micros(watch.elapsed_seconds());
        drop(span);
        chain_fp = system.fingerprint();
        let result = SpecResult {
            seq,
            start_fp,
            end_fp: chain_fp,
            accesses: buffer,
            tape,
            counts,
            meter,
            simulate_us,
        };
        if events.send(OwnerEvent::Result(Box::new(result))).is_err() {
            break;
        }
    }
}

/// Runs the pipeline with a speculative simulate worker.  See the module
/// docs for the protocol; the committed result is bit-identical to
/// [`Pipeline::run`] without speculation.
pub(crate) fn run_speculative<M: DriverMeter>(
    pipeline: Pipeline,
    meter: &mut M,
    threads: usize,
) -> (PipelineEnd, SegmentTelemetry) {
    let Pipeline {
        system,
        prefetcher,
        stream,
        budget,
        account,
        plan,
        job,
        trace,
    } = pipeline;
    let segment_size = plan.segment_size.max(1);
    let depth = plan.speculation.max(1);

    std::thread::scope(|scope| {
        let mut telemetry = SegmentTelemetry::default();
        let mut counts = SegmentCounts::default();
        // The frontier: fingerprint of the last committed state.  The
        // initial system state is committed by definition.
        let mut committed_fp = system.fingerprint();

        let (event_tx, event_rx) = mpsc::channel::<OwnerEvent>();
        let (worker_tx, worker_rx) = mpsc::channel::<WorkerMsg>();
        let worker_events = event_tx.clone();
        let mispredict_every = plan.mispredict_every;
        let worker_recorder = trace.recorder(&format!("job{job}.speculate"));
        let worker = scope.spawn(move || {
            worker_loop(
                system,
                prefetcher,
                worker_rx,
                worker_events,
                mispredict_every,
                worker_recorder,
            )
        });

        let mut pull_handle = None;
        let mut pull_stage = if threads >= 4 {
            let (task_tx, task_rx) = mpsc::channel::<Vec<MemAccess>>();
            let events = event_tx.clone();
            let mut stream = stream;
            let mut remaining = budget;
            let pull_trace = trace.clone();
            pull_handle = Some(scope.spawn(move || {
                let recorder = pull_trace.recorder(&format!("job{job}.pull"));
                let mut seconds = 0.0;
                let mut hist = Histogram::new();
                let mut pulls = 0u64;
                // Catch and forward a panic instead of just hanging up:
                // the other stages' live `events` clones would keep the
                // owner blocked on its receiver (see `worker_loop`).
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    while let Ok(mut buffer) = task_rx.recv() {
                        let mut span = recorder.span("seg.pull");
                        span.arg_u64("segment", pulls);
                        pulls += 1;
                        let watch = Stopwatch::started();
                        let want = segment_size.min(remaining);
                        let got = fill_segment(&mut *stream, &mut buffer, want);
                        remaining -= got;
                        let elapsed = watch.elapsed_seconds();
                        seconds += elapsed;
                        hist.record(as_micros(elapsed));
                        drop(span);
                        // Always respond, even empty: the owner counts
                        // outstanding pulls and reads emptiness as
                        // end-of-stream.
                        if events.send(OwnerEvent::Pulled(buffer)).is_err() {
                            break;
                        }
                    }
                }));
                if let Err(payload) = caught {
                    let _ = events.send(OwnerEvent::StagePanicked(payload));
                }
                (stream, seconds, hist)
            }));
            PullStage::Helper { tasks: task_tx }
        } else {
            PullStage::Inline {
                stream,
                remaining: budget,
                seconds: 0.0,
            }
        };

        let mut account_handle = None;
        let mut account_stage = if threads >= 3 {
            let (task_tx, task_rx) = mpsc::channel::<(Vec<MemAccess>, OutcomeTape)>();
            let events = event_tx.clone();
            let mut state = account;
            let account_trace = trace.clone();
            account_handle = Some(scope.spawn(move || {
                let recorder = account_trace.recorder(&format!("job{job}.account"));
                let mut seconds = 0.0;
                let mut hist = Histogram::new();
                let mut accounts = 0u64;
                // Tape replay feeds a plugin's kind sink, so this stage can
                // panic in plugin code too; catch and forward like the
                // worker does.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    while let Ok((buffer, tape)) = task_rx.recv() {
                        let mut span = recorder.span("seg.account");
                        span.arg_u64("segment", accounts);
                        accounts += 1;
                        let watch = Stopwatch::started();
                        state.replay_segment(&buffer, &tape);
                        let elapsed = watch.elapsed_seconds();
                        seconds += elapsed;
                        hist.record(as_micros(elapsed));
                        drop(span);
                        // Recycling is best-effort; the owner may be done.
                        let _ = events.send(OwnerEvent::Recycled(buffer, tape));
                    }
                }));
                if let Err(payload) = caught {
                    let _ = events.send(OwnerEvent::StagePanicked(payload));
                }
                (state, seconds, hist)
            }));
            AccountStage::Helper { tasks: task_tx }
        } else {
            AccountStage::Inline {
                state: Box::new(account),
                seconds: 0.0,
            }
        };
        drop(event_tx);
        // The owner thread's recorder: commit/mispredict/replay decisions
        // plus any inline pull/account stage work.
        let recorder = trace.recorder(&format!("job{job}.commit"));

        // Owner bookkeeping.  `in_flight` counts worker messages not yet
        // answered; `stale` holds raw segments whose speculative results
        // were produced from a wrong-path chain and await ordered replay;
        // `replayed` guards against a replay failing verification again.
        let mut next_seq = 0u64;
        let mut commit_seq = 0u64;
        let mut in_flight = 0usize;
        let mut pulls_outstanding = 0usize;
        let mut stream_done = false;
        let mut recovering = false;
        let mut stale: BTreeMap<u64, (Vec<MemAccess>, OutcomeTape)> = BTreeMap::new();
        let mut replayed: BTreeSet<u64> = BTreeSet::new();
        let mut pulled_ready: VecDeque<Vec<MemAccess>> = VecDeque::new();
        let mut tapes: Vec<OutcomeTape> = Vec::new();
        let mut spare_buffers: Vec<Vec<MemAccess>> = Vec::new();

        // Prime the pull helper: keep one request beyond the speculation
        // depth in flight so the worker never starves on trace IO.
        if let PullStage::Helper { tasks } = &pull_stage {
            for _ in 0..depth + 1 {
                if tasks.send(Vec::new()).is_ok() {
                    pulls_outstanding += 1;
                }
            }
        }

        loop {
            // Feed the worker up to the speculation depth.  During recovery
            // nothing new is dispatched: a fresh segment would speculate
            // from a chain known to be wrong-path, so the owner first
            // replays the discarded segments in order.
            while !recovering && in_flight < depth {
                let buffer = if let Some(buffer) = pulled_ready.pop_front() {
                    Some(buffer)
                } else if stream_done {
                    None
                } else {
                    match &mut pull_stage {
                        PullStage::Inline {
                            stream,
                            remaining,
                            seconds,
                        } => {
                            let mut buffer = spare_buffers.pop().unwrap_or_default();
                            let mut span = recorder.span("seg.pull");
                            span.arg_u64("segment", next_seq);
                            let watch = Stopwatch::started();
                            let want = segment_size.min(*remaining);
                            let got = fill_segment(&mut **stream, &mut buffer, want);
                            *remaining -= got;
                            let elapsed = watch.elapsed_seconds();
                            *seconds += elapsed;
                            telemetry.pull_hist.record(as_micros(elapsed));
                            drop(span);
                            if got < segment_size {
                                stream_done = true;
                            }
                            if buffer.is_empty() {
                                spare_buffers.push(buffer);
                                None
                            } else {
                                Some(buffer)
                            }
                        }
                        // Helper pulls arrive as events; nothing ready yet.
                        PullStage::Helper { .. } => None,
                    }
                };
                match buffer {
                    Some(buffer) => {
                        let tape = tapes.pop().unwrap_or_default();
                        // A send can only fail if the worker panicked, and
                        // it queues its panic event before its receiver
                        // drops: fall through to the event loop, which
                        // re-raises it.
                        if worker_tx
                            .send(WorkerMsg::Segment(next_seq, buffer, tape))
                            .is_err()
                        {
                            break;
                        }
                        next_seq += 1;
                        in_flight += 1;
                    }
                    None => break,
                }
            }

            // Done once every pulled access is committed and nothing is
            // pending anywhere in the pipeline.
            if in_flight == 0
                && stale.is_empty()
                && pulled_ready.is_empty()
                && stream_done
                && pulls_outstanding == 0
            {
                break;
            }

            match event_rx.recv().expect("a pipeline stage hung up early") {
                OwnerEvent::Pulled(buffer) => {
                    pulls_outstanding -= 1;
                    if buffer.len() < segment_size {
                        stream_done = true;
                    }
                    if buffer.is_empty() {
                        spare_buffers.push(buffer);
                    } else {
                        pulled_ready.push_back(buffer);
                    }
                }
                OwnerEvent::Recycled(buffer, tape) => {
                    tapes.push(tape);
                    match &pull_stage {
                        PullStage::Helper { tasks } if !stream_done => {
                            if tasks.send(buffer).is_ok() {
                                pulls_outstanding += 1;
                            }
                        }
                        _ => spare_buffers.push(buffer),
                    }
                }
                OwnerEvent::Result(result) => {
                    in_flight -= 1;
                    if result.seq == commit_seq && result.start_fp == committed_fp {
                        // Verified: the segment was simulated from exactly
                        // the committed state.  Commit it.
                        recorder.instant("spec.commit", |args| {
                            args.u64("segment", result.seq);
                        });
                        telemetry.simulate_hist.record(result.simulate_us);
                        replayed.remove(&result.seq);
                        committed_fp = result.end_fp;
                        commit_seq += 1;
                        telemetry.segments += 1;
                        telemetry.spec_commits += 1;
                        counts.accesses += result.counts.accesses;
                        counts.skipped_accesses += result.counts.skipped_accesses;
                        counts.prefetch_requests += result.counts.prefetch_requests;
                        meter.absorb(&result.meter);
                        match &mut account_stage {
                            AccountStage::Inline { state, seconds } => {
                                let mut span = recorder.span("seg.account");
                                span.arg_u64("segment", result.seq);
                                let watch = Stopwatch::started();
                                state.replay_segment(&result.accesses, &result.tape);
                                let elapsed = watch.elapsed_seconds();
                                *seconds += elapsed;
                                telemetry.account_hist.record(as_micros(elapsed));
                                drop(span);
                                tapes.push(result.tape);
                                spare_buffers.push(result.accesses);
                            }
                            AccountStage::Helper { tasks } => {
                                tasks
                                    .send((result.accesses, result.tape))
                                    .expect("account helper alive");
                            }
                        }
                        if recovering {
                            if let Some((buffer, tape)) = stale.remove(&commit_seq) {
                                // The next discarded segment replays from
                                // the now-authoritative state.
                                recorder.instant("spec.replay", |args| {
                                    args.u64("segment", commit_seq);
                                });
                                telemetry.spec_replayed_accesses += buffer.len() as u64;
                                replayed.insert(commit_seq);
                                // A failed send means the worker panicked
                                // mid-message; that message's `in_flight`
                                // keeps the loop alive until its queued
                                // panic event is received and re-raised.
                                if worker_tx
                                    .send(WorkerMsg::Replay(commit_seq, buffer, tape))
                                    .is_ok()
                                {
                                    in_flight += 1;
                                }
                            } else if stale.is_empty() && in_flight == 0 {
                                // Every wrong-path segment has been replayed
                                // and committed; resume dispatching.
                                recovering = false;
                            }
                        }
                    } else if result.seq == commit_seq {
                        // Frontier mispredict: the speculation chain
                        // diverged from the committed history.  A replay
                        // must never land here again — that would mean the
                        // simulator itself is nondeterministic, and
                        // committing anyway could silently corrupt results.
                        assert!(
                            !replayed.contains(&result.seq),
                            "segment {} diverged again when replayed from the \
                             authoritative state (started from {}, committed \
                             frontier {}): simulation is nondeterministic",
                            result.seq,
                            result.start_fp,
                            committed_fp,
                        );
                        recorder.instant("spec.mispredict", |args| {
                            args.u64("segment", result.seq);
                        });
                        recorder.instant("spec.replay", |args| {
                            args.u64("segment", result.seq);
                        });
                        recovering = true;
                        telemetry.spec_mispredicts += 1;
                        telemetry.spec_replayed_accesses += result.accesses.len() as u64;
                        replayed.insert(result.seq);
                        // As above: a failed send means the worker panicked
                        // and its panic event is already queued.
                        if worker_tx
                            .send(WorkerMsg::Replay(result.seq, result.accesses, result.tape))
                            .is_ok()
                        {
                            in_flight += 1;
                        }
                    } else {
                        // A result past a stalled frontier: its chain input
                        // was wrong-path by construction.  Discard the
                        // outcome, hold the raw segment for ordered replay.
                        assert!(
                            recovering && result.seq > commit_seq,
                            "out-of-order result {} at frontier {}",
                            result.seq,
                            commit_seq,
                        );
                        recorder.instant("spec.mispredict", |args| {
                            args.u64("segment", result.seq);
                        });
                        telemetry.spec_mispredicts += 1;
                        stale.insert(result.seq, (result.accesses, result.tape));
                    }
                }
                OwnerEvent::StagePanicked(payload) => {
                    // Re-raise on the owner: unwinding drops the task
                    // senders, the surviving stages hang up, the scope
                    // joins them, and the payload reaches the engine's
                    // per-job `catch_unwind` with its original message.
                    std::panic::resume_unwind(payload);
                }
            }
        }

        drop(worker_tx);
        let (system, prefetcher) = worker.join().expect("speculative worker panicked");
        // The worker's final state is the last committed state — anything
        // else would mean an unverified segment leaked through.
        assert_eq!(
            system.fingerprint(),
            committed_fp,
            "speculative end state diverged from the commit frontier"
        );

        let (mut stream, pull_seconds) = match pull_stage {
            PullStage::Inline {
                stream, seconds, ..
            } => (stream, seconds),
            PullStage::Helper { tasks } => {
                drop(tasks);
                let (stream, seconds, hist) = pull_handle
                    .take()
                    .expect("pull helper spawned")
                    .join()
                    .expect("pull helper panicked");
                telemetry.pull_hist.merge(&hist);
                (stream, seconds)
            }
        };
        let (account, account_seconds) = match account_stage {
            AccountStage::Inline { state, seconds } => (*state, seconds),
            AccountStage::Helper { tasks } => {
                drop(tasks);
                let (state, seconds, hist) = account_handle
                    .take()
                    .expect("account helper spawned")
                    .join()
                    .expect("account helper panicked");
                telemetry.account_hist.merge(&hist);
                (state, seconds)
            }
        };
        // A stage can panic after the owner's last dispatch (e.g. the
        // account helper on the final tape, leaving its state half
        // replayed).  Every stage has now been joined, so any forwarded
        // panic is already queued: re-raise it rather than return state
        // that a caught panic may have left inconsistent.
        while let Ok(event) = event_rx.try_recv() {
            if let OwnerEvent::StagePanicked(payload) = event {
                std::panic::resume_unwind(payload);
            }
        }
        telemetry.pull_seconds = pull_seconds;
        telemetry.account_seconds = account_seconds;
        let stream_error = stream.take_error();

        (
            PipelineEnd {
                system,
                prefetcher,
                counts,
                account,
                stream_error,
            },
            telemetry,
        )
    })
}
