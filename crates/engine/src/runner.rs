//! The job executor: runs a list of [`SimJob`]s serially or sharded across
//! worker threads, with a deterministic merge of the results.
//!
//! Every job is self-contained — it builds its own system, resolves its
//! prefetcher spec through a plugin [`Registry`] and opens its trace source
//! (synthetic generator or streamed file) on whichever thread executes it —
//! so the parallel path is bit-identical to the serial path and the result
//! order never depends on scheduling.
//!
//! Jobs and results are serializable end to end: a [`JobList`] round-trips
//! through a JSON spec file (`sms-experiments run --spec jobs.json`), and a
//! `Vec<JobResult>` is the JSON the engine writes back out.

use crate::plugin::{PluginError, ProbeReport, Registry};
use crate::spec::PrefetcherSpec;
use memsim::{MultiCpuSystem, RunSummary};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use timing::{TimingConfig, TimingModel, TimingResult};

/// Timing-model parameters attached to a job that should run through the
/// [`TimingModel`] instead of the plain cache driver (Figures 12 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Cycle-level parameters of the modeled system.
    pub config: TimingConfig,
    /// Number of equal trace segments for paired sampling.
    pub segments: usize,
}

/// One unit of work for the engine: the driver-level [`memsim::SimJob`]
/// (trace source, system, prefetcher spec, access budget) plus an optional
/// timing-model evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// The simulation run proper, instantiated on the executing thread.
    pub sim: memsim::SimJob<PrefetcherSpec>,
    /// When set, the job runs through the timing model and also reports a
    /// [`TimingResult`].
    pub timing: Option<TimingSpec>,
}

impl SimJob {
    /// A plain cache-simulation job (no timing model).
    pub fn new(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self { sim, timing: None }
    }

    /// Attaches a timing-model evaluation to the job.
    pub fn with_timing(mut self, config: TimingConfig, segments: usize) -> Self {
        self.timing = Some(TimingSpec { config, segments });
        self
    }
}

impl From<memsim::SimJob<PrefetcherSpec>> for SimJob {
    fn from(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self::new(sim)
    }
}

/// A serialized list of engine jobs: the on-disk spec-file format behind
/// `sms-experiments run --spec` and every figure's `--emit-spec`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobList {
    /// Spec-file format version.
    pub version: u32,
    /// The jobs, in submission order.
    pub jobs: Vec<SimJob>,
}

impl JobList {
    /// Current spec-file format version.
    pub const VERSION: u32 = 1;

    /// Wraps `jobs` in the current format version.
    pub fn new(jobs: Vec<SimJob>) -> Self {
        Self {
            version: Self::VERSION,
            jobs,
        }
    }
}

/// The result of one [`SimJob`], tagged with the job's position in the input
/// list so merged results are always in submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Index of the job in the submitted list.
    pub job_index: usize,
    /// Cache-simulation summary of the run.
    pub summary: RunSummary,
    /// Post-run prefetcher/probe state.
    pub probe: ProbeReport,
    /// Timing-model result, present iff the job carried a
    /// [`SimJob::timing`] spec.
    pub timing: Option<TimingResult>,
}

/// An error raised while preparing a job for execution (resolving its
/// prefetcher spec or opening its trace source).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The job's prefetcher spec failed to resolve or build.
    Plugin {
        /// Index of the failing job in the submitted list.
        job_index: usize,
        /// The underlying registry/plugin error.
        error: PluginError,
    },
    /// The job's trace source failed to open.
    Trace {
        /// Index of the failing job in the submitted list.
        job_index: usize,
        /// Description of the failing source.
        source: String,
        /// The I/O error message.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plugin { job_index, error } => {
                write!(f, "job {job_index}: {error}")
            }
            EngineError::Trace {
                job_index,
                source,
                message,
            } => write!(
                f,
                "job {job_index}: trace source {source} failed: {message}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Execution parameters of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads; `0` means one per available hardware
    /// thread, `1` forces the serial path.
    pub workers: usize,
}

impl EngineConfig {
    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Self { workers: 0 }
    }

    /// The serial fallback: run every job on the calling thread.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// An explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    /// The worker count actually used for `jobs` queued jobs.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.min(jobs).max(1)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Runs one job to completion on the calling thread, resolving its
/// prefetcher spec through `registry`.
///
/// # Errors
///
/// [`EngineError::Plugin`] if the spec does not resolve or build, and
/// [`EngineError::Trace`] if a file-backed trace source fails to open or
/// turns out to be corrupt mid-stream (a corrupt record must fail the job
/// loudly rather than silently shorten the run).
pub fn run_job(index: usize, job: &SimJob, registry: &Registry) -> Result<JobResult, EngineError> {
    let sim = &job.sim;
    let trace_error = |message: String| EngineError::Trace {
        job_index: index,
        source: sim.source.describe(),
        message,
    };
    let mut prefetcher =
        registry
            .build(&sim.prefetcher, sim.cpus)
            .map_err(|error| EngineError::Plugin {
                job_index: index,
                error,
            })?;
    let mut stream = sim.source.open().map_err(|e| trace_error(e.to_string()))?;
    let result = match &job.timing {
        Some(spec) => {
            let model = TimingModel::new(sim.hierarchy, sim.cpus, spec.config);
            let (timing, summary) =
                model.evaluate(&mut prefetcher, &mut stream, sim.accesses, spec.segments);
            JobResult {
                job_index: index,
                summary,
                probe: prefetcher.into_report(),
                timing: Some(timing),
            }
        }
        None => {
            let mut system = MultiCpuSystem::new(sim.cpus, &sim.hierarchy);
            let summary = memsim::run(&mut system, &mut prefetcher, &mut stream, sim.accesses);
            JobResult {
                job_index: index,
                summary,
                probe: prefetcher.into_report(),
                timing: None,
            }
        }
    };
    if let Some(e) = stream.take_error() {
        return Err(trace_error(format!("corrupt mid-stream: {e}")));
    }
    Ok(result)
}

/// Runs every job against the built-in plugin registry with the default
/// engine configuration (one worker per available hardware thread) and
/// returns the results in submission order.
///
/// # Panics
///
/// Panics if a job fails to prepare (unknown plugin, bad parameters,
/// unopenable trace file).  Specs built with the typed
/// [`PrefetcherSpec`] constructors over synthetic sources never fail; use
/// [`run_jobs_in`] to handle errors from externally-loaded job files.
pub fn run_jobs(jobs: &[SimJob]) -> Vec<JobResult> {
    run_jobs_with(jobs, &EngineConfig::default())
}

/// Runs every job against the built-in plugin registry with an explicit
/// engine configuration.
///
/// # Panics
///
/// As [`run_jobs`]: panics if a job fails to prepare.
pub fn run_jobs_with(jobs: &[SimJob], config: &EngineConfig) -> Vec<JobResult> {
    run_jobs_in(jobs, config, Registry::builtin()).expect("job failed to prepare")
}

/// Runs every job, resolving prefetcher specs through `registry` and
/// sharding the list across `config.workers` threads, then merges the
/// results deterministically back into submission order.
///
/// With one effective worker the engine runs serially on the calling thread;
/// either way the results are bit-identical, because each job builds its own
/// access stream and prefetcher from the job description.
///
/// # Errors
///
/// The first (lowest-job-index) preparation failure, regardless of worker
/// scheduling.  Already-completed work on other threads is discarded.
pub fn run_jobs_in(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
) -> Result<Vec<JobResult>, EngineError> {
    let workers = config.effective_workers(jobs.len());
    if workers <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(index, job)| run_job(index, job, registry))
            .collect();
    }

    // Work-stealing by atomic cursor: each worker claims the next unclaimed
    // job, so long jobs do not serialize behind a static partition.
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, Result<JobResult, EngineError>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut shard = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        let result = run_job(index, &jobs[index], registry);
                        let failed = result.is_err();
                        shard.push((index, result));
                        if failed {
                            // No point burning the queue down after a
                            // failure; the merge below still picks the
                            // lowest-index error deterministically.
                            break;
                        }
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Deterministic merge: the tagged index recovers submission order
    // regardless of which worker ran which job, and the lowest-index error
    // wins regardless of scheduling.
    let mut tagged: Vec<(usize, Result<JobResult, EngineError>)> =
        shards.into_iter().flatten().collect();
    tagged.sort_by_key(|(index, _)| *index);
    let results: Vec<JobResult> = tagged
        .into_iter()
        .map(|(_, result)| result)
        .collect::<Result<_, _>>()?;
    debug_assert!(results.iter().enumerate().all(|(i, r)| r.job_index == i));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghb::GhbConfig;
    use memsim::HierarchyConfig;
    use sms::SmsConfig;
    use trace::{Application, GeneratorConfig};

    fn job(app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        SimJob::new(memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(2),
            2006,
            2,
            HierarchyConfig::scaled(),
            prefetcher,
            8_000,
        ))
    }

    fn job_list() -> Vec<SimJob> {
        vec![
            job(Application::OltpDb2, PrefetcherSpec::null()),
            job(Application::OltpDb2, PrefetcherSpec::sms_paper_default()),
            job(
                Application::Sparse,
                PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ),
            job(
                Application::DssQry1,
                PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ),
            job(Application::WebApache, PrefetcherSpec::null())
                .with_timing(TimingConfig::table1(), 4),
        ]
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        let parallel = run_jobs_with(&jobs, &EngineConfig::with_workers(4));
        assert_eq!(serial, parallel);
        assert!(serial.iter().enumerate().all(|(i, r)| r.job_index == i));
        for r in &serial {
            assert_eq!(r.summary.skipped_accesses, 0);
        }
    }

    #[test]
    fn timing_jobs_report_timing_results() {
        let jobs = job_list();
        let results = run_jobs(&jobs);
        assert!(results[4].timing.is_some());
        assert!(results[..4].iter().all(|r| r.timing.is_none()));
        let t = results[4].timing.as_ref().unwrap();
        assert_eq!(t.segment_cycles.len(), 4);
        assert_eq!(t.accesses, results[4].summary.accesses);
    }

    #[test]
    fn effective_workers_clamps_sensibly() {
        assert_eq!(EngineConfig::serial().effective_workers(100), 1);
        assert_eq!(EngineConfig::with_workers(8).effective_workers(3), 3);
        assert_eq!(EngineConfig::with_workers(2).effective_workers(0), 1);
        assert!(EngineConfig::auto().effective_workers(64) >= 1);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![job(Application::Ocean, PrefetcherSpec::null())];
        let results = run_jobs_with(&jobs, &EngineConfig::with_workers(16));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].summary.accesses, 8_000);
    }

    #[test]
    fn job_lists_round_trip_through_json() {
        let list = JobList::new(job_list());
        let json = serde_json::to_string_pretty(&list).expect("serialize");
        let back: JobList = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(list, back);
        assert_eq!(back.version, JobList::VERSION);
        // The reloaded list executes identically to the original.
        let a = run_jobs_with(&list.jobs, &EngineConfig::serial());
        let b = run_jobs_with(&back.jobs, &EngineConfig::serial());
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_plugin_surfaces_lowest_index_error() {
        let mut jobs = job_list();
        jobs.insert(
            1,
            job(
                Application::Ocean,
                PrefetcherSpec {
                    plugin: "warp-drive".to_string(),
                    params: serde_json::Value::Null,
                },
            ),
        );
        jobs.push(job(
            Application::Ocean,
            PrefetcherSpec {
                plugin: "also-unknown".to_string(),
                params: serde_json::Value::Null,
            },
        ));
        for workers in [1, 4] {
            let err = run_jobs_in(
                &jobs,
                &EngineConfig::with_workers(workers),
                Registry::builtin(),
            )
            .expect_err("unknown plugin must fail");
            match err {
                EngineError::Plugin { job_index, .. } => assert_eq!(job_index, 1),
                other => panic!("expected Plugin error, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_trace_file_fails_the_job_instead_of_shortening_it() {
        // A trace with a valid header but a truncated body: the job must
        // fail loudly, not return a summary with fewer accesses.
        let recorded: Vec<trace::MemAccess> = Application::Ocean
            .stream(1, &GeneratorConfig::default().with_cpus(1))
            .take(100)
            .collect();
        let mut bytes = Vec::new();
        trace::io::write_binary(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 7);
        let path = std::env::temp_dir().join(format!(
            "sms-engine-corrupt-trace-{}.bin",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();

        let jobs = vec![SimJob::new(memsim::SimJob {
            source: trace::TraceSource::binary_file(path.to_string_lossy()),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::null(),
            accesses: 1_000,
        })];
        let err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("corrupt trace must fail the job");
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, EngineError::Trace { job_index: 0, .. }));
        assert!(err.to_string().contains("corrupt mid-stream"), "{err}");
    }

    #[test]
    fn missing_trace_file_surfaces_as_engine_error() {
        let jobs = vec![SimJob::new(memsim::SimJob {
            source: trace::TraceSource::binary_file("/nonexistent/trace.bin"),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::null(),
            accesses: 100,
        })];
        let err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("missing file must fail");
        assert!(matches!(err, EngineError::Trace { job_index: 0, .. }));
        assert!(err.to_string().contains("trace source"), "{err}");
    }
}
