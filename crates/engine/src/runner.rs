//! The job executor: runs a list of [`SimJob`]s serially or sharded across
//! worker threads, with a deterministic merge of the results.
//!
//! Every job is self-contained — it builds its own system, resolves its
//! prefetcher spec through a plugin [`Registry`] and opens its trace source
//! (synthetic generator or streamed file) on whichever thread executes it —
//! so the parallel path is bit-identical to the serial path and the result
//! order never depends on scheduling.
//!
//! Jobs and results are serializable end to end: a [`JobList`] round-trips
//! through a JSON spec file (`sms-experiments run --spec jobs.json`), and a
//! `Vec<JobResult>` is the JSON the engine writes back out.

use crate::plugin::{PluginError, ProbeReport, Registry};
use crate::segment::{run_job_segmented_observed, SegmentPlan};
use crate::spec::PrefetcherSpec;
use crate::telemetry::{EngineMetrics, JobMetrics, WorkerMetrics};
use memsim::{MultiCpuSystem, RunSummary};
use metrics::{MetricsConfig, Stopwatch};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use timing::{TimingConfig, TimingModel, TimingResult};
use tracelog::{Recorder, Trace};

/// Timing-model parameters attached to a job that should run through the
/// [`TimingModel`] instead of the plain cache driver (Figures 12 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Cycle-level parameters of the modeled system.
    pub config: TimingConfig,
    /// Number of equal trace segments for paired sampling.
    pub segments: usize,
}

/// One unit of work for the engine: the driver-level [`memsim::SimJob`]
/// (trace source, system, prefetcher spec, access budget) plus an optional
/// timing-model evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimJob {
    /// The simulation run proper, instantiated on the executing thread.
    pub sim: memsim::SimJob<PrefetcherSpec>,
    /// When set, the job runs through the timing model and also reports a
    /// [`TimingResult`].
    pub timing: Option<TimingSpec>,
}

impl SimJob {
    /// A plain cache-simulation job (no timing model).
    pub fn new(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self { sim, timing: None }
    }

    /// Attaches a timing-model evaluation to the job.
    pub fn with_timing(mut self, config: TimingConfig, segments: usize) -> Self {
        self.timing = Some(TimingSpec { config, segments });
        self
    }
}

impl From<memsim::SimJob<PrefetcherSpec>> for SimJob {
    fn from(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self::new(sim)
    }
}

/// A serialized list of engine jobs: the on-disk spec-file format behind
/// `sms-experiments run --spec` and every figure's `--emit-spec`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobList {
    /// Spec-file format version.
    pub version: u32,
    /// Optional client-facing label for the list (introduced in version 2
    /// for the job server's submission protocol).  Purely descriptive: it
    /// never affects execution and is excluded from the content-addressed
    /// result-cache key ([`crate::hash::spec_fingerprint`]).
    pub name: Option<String>,
    /// The jobs, in submission order.
    pub jobs: Vec<SimJob>,
}

impl JobList {
    /// Current spec-file format version.
    ///
    /// # Version history
    ///
    /// * **1** — `{version, jobs}`.
    /// * **2** — adds the optional `name` label.  Version-1 files remain
    ///   loadable: [`JobList::from_json`] reads any version in
    ///   [`MIN_VERSION`](Self::MIN_VERSION)`..=`[`VERSION`](Self::VERSION)
    ///   and normalizes the loaded list to the current version (absent
    ///   fields take their documented defaults — `name` becomes `None`), so
    ///   re-serializing a loaded list is the migration path.
    pub const VERSION: u32 = 2;

    /// Oldest spec-file format version this build still reads.
    pub const MIN_VERSION: u32 = 1;

    /// Wraps `jobs` in the current format version with no name label.
    pub fn new(jobs: Vec<SimJob>) -> Self {
        Self {
            version: Self::VERSION,
            name: None,
            jobs,
        }
    }

    /// Returns a copy carrying a client-facing label.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Parses a spec file's JSON text, checking the format version *before*
    /// decoding the jobs — a future-versioned spec whose job shape this
    /// build cannot read still gets the actionable version error rather than
    /// a field-level parse failure.
    ///
    /// Any version in [`MIN_VERSION`](Self::MIN_VERSION)`..=`
    /// [`VERSION`](Self::VERSION) is accepted; older lists load through the
    /// lenient path (fields added since that version take their defaults)
    /// and are normalized to the current version, so writing a loaded list
    /// back out upgrades it.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnsupportedVersion`] when the spec's version is outside
    /// the supported range, [`SpecError::Parse`] for anything that is not a
    /// well-formed job list of its declared version.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))?;
        let version_value = match value.get("version") {
            Some(v) => v,
            None => {
                return Err(SpecError::Parse(
                    "missing \"version\" field (is this a job spec file?)".to_string(),
                ))
            }
        };
        let version: u32 = Deserialize::from_value(version_value)
            .map_err(|e| SpecError::Parse(format!("\"version\" field: {e}")))?;
        if !(Self::MIN_VERSION..=Self::VERSION).contains(&version) {
            return Err(SpecError::UnsupportedVersion {
                found: version,
                supported: Self::VERSION,
            });
        }
        // The lenient path: every field added after MIN_VERSION is optional
        // with a documented default, so decoding the current struct shape
        // against an older document fills the gaps (`name` absent → None).
        let mut list: Self =
            Deserialize::from_value(&value).map_err(|e| SpecError::Parse(e.to_string()))?;
        list.version = Self::VERSION;
        Ok(list)
    }
}

/// An error raised while loading a [`JobList`] spec file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text is not a well-formed job list of the supported version.
    Parse(String),
    /// The spec declares a format version this build does not read.
    UnsupportedVersion {
        /// Version the spec file declares.
        found: u32,
        /// The newest version this build reads (the readable range is
        /// [`JobList::MIN_VERSION`]`..=`this).
        supported: u32,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(message) => write!(f, "invalid job spec: {message}"),
            SpecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported job-spec version {found}: this build reads versions {min} through \
                 {supported}; regenerate the spec with `sms-experiments <experiment> --emit-spec`",
                min = JobList::MIN_VERSION
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A non-fatal condition observed while executing a job, carried in the
/// [`JobResult`] so it is visible in `--out` dumps and spec-run output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobWarning {
    /// Stable tag naming the condition (e.g. [`JobWarning::SHORT_TRACE`]).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl JobWarning {
    /// Kind tag of the short-trace warning: the job's trace source ran dry
    /// before the requested access budget was reached.
    pub const SHORT_TRACE: &'static str = "short_trace";

    /// The warning for a trace that delivered fewer accesses than requested.
    pub fn short_trace(source: &str, delivered: u64, requested: usize) -> Self {
        Self {
            kind: Self::SHORT_TRACE.to_string(),
            message: format!(
                "trace source {source} delivered {delivered} of {requested} requested accesses"
            ),
        }
    }
}

/// The result of one [`SimJob`], tagged with the job's position in the input
/// list so merged results are always in submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Index of the job in the submitted list.
    pub job_index: usize,
    /// Cache-simulation summary of the run.
    pub summary: RunSummary,
    /// Post-run prefetcher/probe state.
    pub probe: ProbeReport,
    /// Timing-model result, present iff the job carried a
    /// [`SimJob::timing`] spec.
    pub timing: Option<TimingResult>,
    /// Non-fatal conditions observed during the run (e.g. a file-backed
    /// trace shorter than the access budget).  Deterministic — never
    /// timing- or telemetry-dependent — so results stay bit-identical
    /// across workers and metrics settings.
    pub warnings: Vec<JobWarning>,
}

/// An error raised while preparing a job for execution (resolving its
/// prefetcher spec or opening its trace source).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The job's prefetcher spec failed to resolve or build.
    Plugin {
        /// Index of the failing job in the submitted list.
        job_index: usize,
        /// The underlying registry/plugin error.
        error: PluginError,
    },
    /// The job's trace source failed to open.
    Trace {
        /// Index of the failing job in the submitted list.
        job_index: usize,
        /// Description of the failing source.
        source: String,
        /// The I/O error message.
        message: String,
    },
    /// The job's execution panicked (a prefetcher plugin or probe raised a
    /// panic mid-run).  The panic is caught at the job boundary, so the run
    /// completes with the usual lowest-index-error semantics instead of
    /// poisoning the worker or the calling scheduler.
    Panicked {
        /// Index of the panicking job in the submitted list.
        job_index: usize,
        /// The panic payload, when it was a string (the common
        /// `panic!("...")` case), or a placeholder otherwise.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Plugin { job_index, error } => {
                write!(f, "job {job_index}: {error}")
            }
            EngineError::Trace {
                job_index,
                source,
                message,
            } => write!(
                f,
                "job {job_index}: trace source {source} failed: {message}"
            ),
            EngineError::Panicked { job_index, message } => {
                write!(f, "job {job_index}: panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Renders a caught panic payload as a message: the payload itself when it
/// was a string (the overwhelmingly common `panic!("...")` / `expect` case),
/// a placeholder otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execution parameters of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads; `0` means one per available hardware
    /// thread, `1` forces the serial path.
    pub workers: usize,
    /// When set (> 0), every eligible job runs through the intra-job
    /// segment pipeline with this many accesses per segment (see
    /// [`run_job_segmented`](crate::segment::run_job_segmented)).  The
    /// thread budget named by `workers` is then split between job-level
    /// parallelism and the up-to-three pipeline stages of each running job.
    /// `None` (the default) keeps the pre-segmentation behavior exactly.
    pub segment_size: Option<usize>,
    /// Speculative run-ahead depth for segmented jobs: how many segments
    /// the simulate stage may run ahead of the verified commit frontier
    /// (see [`crate::speculate`]).  `0` (the default) disables speculation.
    /// A depth > 0 implies segmentation: when no explicit `segment_size` is
    /// set, jobs are segmented at
    /// [`DEFAULT_SPECULATIVE_SEGMENT`](EngineConfig::DEFAULT_SPECULATIVE_SEGMENT)
    /// accesses.  Speculation still requires at least two threads in the
    /// per-job budget; below that the plan degrades to the inline pipeline.
    pub speculate: usize,
}

impl EngineConfig {
    /// Accesses per segment when speculation is requested without an
    /// explicit segment size.
    pub const DEFAULT_SPECULATIVE_SEGMENT: usize = 10_000;

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Self {
            workers: 0,
            segment_size: None,
            speculate: 0,
        }
    }

    /// The serial fallback: run every job on the calling thread.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            segment_size: None,
            speculate: 0,
        }
    }

    /// An explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            segment_size: None,
            speculate: 0,
        }
    }

    /// Returns a copy with intra-job segmentation enabled at the given
    /// segment size (`0` disables it again).
    pub fn with_segment_size(mut self, segment_size: usize) -> Self {
        self.segment_size = if segment_size > 0 {
            Some(segment_size)
        } else {
            None
        };
        self
    }

    /// Returns a copy with speculative run-ahead at the given depth (`0`
    /// disables it).  A depth > 0 with no explicit segment size segments
    /// jobs at [`DEFAULT_SPECULATIVE_SEGMENT`](EngineConfig::DEFAULT_SPECULATIVE_SEGMENT)
    /// accesses.
    pub fn with_speculation(mut self, depth: usize) -> Self {
        self.speculate = depth;
        self
    }

    /// The requested thread budget with `0` resolved to the hardware
    /// parallelism.
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// The worker count actually used for `jobs` queued jobs.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        self.resolved_workers().min(jobs).max(1)
    }

    /// How each job should be segmented under this configuration, if at
    /// all: the per-job [`SegmentPlan`] grants each running job up to three
    /// pipeline threads out of the total budget.
    pub fn segment_plan(&self) -> Option<SegmentPlan> {
        let segment_size = match self.segment_size.filter(|&s| s > 0) {
            Some(size) => size,
            // Speculation implies segmentation: a bare `--speculate N` gets
            // the default segment size rather than silently doing nothing.
            None if self.speculate > 0 => Self::DEFAULT_SPECULATIVE_SEGMENT,
            None => return None,
        };
        // Speculation dedicates a fourth thread to the run-ahead simulate
        // worker when the budget allows.
        let max_threads = if self.speculate > 0 { 4 } else { 3 };
        Some(
            SegmentPlan::new(segment_size, self.resolved_workers().clamp(1, max_threads))
                .with_speculation(self.speculate),
        )
    }

    /// Job-level worker count when segmentation is active: the thread
    /// budget is consumed `plan.threads` at a time by each running job's
    /// pipeline.
    fn segmented_job_workers(&self, jobs: usize, plan: &SegmentPlan) -> usize {
        (self.resolved_workers() / plan.threads.max(1))
            .max(1)
            .min(jobs.max(1))
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Runs one job to completion on the calling thread, resolving its
/// prefetcher spec through `registry`.
///
/// # Errors
///
/// [`EngineError::Plugin`] if the spec does not resolve or build, and
/// [`EngineError::Trace`] if a file-backed trace source fails to open or
/// turns out to be corrupt mid-stream (a corrupt record must fail the job
/// loudly rather than silently shorten the run).
pub fn run_job(index: usize, job: &SimJob, registry: &Registry) -> Result<JobResult, EngineError> {
    run_job_metered(index, job, registry, &MetricsConfig::disabled()).map(|(result, _)| result)
}

/// [`run_job`] with telemetry: additionally collects the job's
/// [`JobMetrics`] (wall-clock time, accesses/second, cache-op and
/// prefetch-issue counts) when `metrics.enabled`.
///
/// The [`JobResult`] is bit-identical regardless of the metrics setting —
/// telemetry observes the run on a separate channel and never enters the
/// serialized results.
///
/// # Errors
///
/// As [`run_job`].
pub fn run_job_metered(
    index: usize,
    job: &SimJob,
    registry: &Registry,
    metrics: &MetricsConfig,
) -> Result<(JobResult, JobMetrics), EngineError> {
    let sim = &job.sim;
    let trace_error = |message: String| EngineError::Trace {
        job_index: index,
        source: sim.source.describe(),
        message,
    };
    let mut prefetcher =
        registry
            .build(&sim.prefetcher, sim.cpus)
            .map_err(|error| EngineError::Plugin {
                job_index: index,
                error,
            })?;
    let mut stream = sim.source.open().map_err(|e| trace_error(e.to_string()))?;
    let (mut result, job_metrics) = match &job.timing {
        Some(spec) => {
            let model = TimingModel::new(sim.hierarchy, sim.cpus, spec.config);
            let watch = Stopwatch::start_if(metrics.enabled);
            let (timing, summary) =
                model.evaluate(&mut prefetcher, &mut stream, sim.accesses, spec.segments);
            let job_metrics = if metrics.enabled {
                JobMetrics::from_summary(index, &summary, watch.elapsed_seconds())
            } else {
                JobMetrics {
                    job_index: index,
                    ..JobMetrics::default()
                }
            };
            (
                JobResult {
                    job_index: index,
                    summary,
                    probe: prefetcher.into_report(),
                    timing: Some(timing),
                    warnings: Vec::new(),
                },
                job_metrics,
            )
        }
        None => {
            let mut system = MultiCpuSystem::new(sim.cpus, &sim.hierarchy);
            let (summary, driver) = memsim::run_metered(
                &mut system,
                &mut prefetcher,
                &mut stream,
                sim.accesses,
                metrics,
            );
            let job_metrics = JobMetrics::from_driver(index, &driver);
            (
                JobResult {
                    job_index: index,
                    summary,
                    probe: prefetcher.into_report(),
                    timing: None,
                    warnings: Vec::new(),
                },
                job_metrics,
            )
        }
    };
    if let Some(e) = stream.take_error() {
        return Err(trace_error(format!("corrupt mid-stream: {e}")));
    }
    // A well-formed stream that simply ran dry is not an error (replaying a
    // recorded trace shorter than the budget is legitimate), but it must be
    // visible: every downstream number is per-delivered-access, not
    // per-requested-access.
    let delivered = result.summary.accesses + result.summary.skipped_accesses;
    if delivered < sim.accesses as u64 {
        result.warnings.push(JobWarning::short_trace(
            &sim.source.describe(),
            delivered,
            sim.accesses,
        ));
    }
    Ok((result, job_metrics))
}

/// Runs every job against the built-in plugin registry with the default
/// engine configuration (one worker per available hardware thread) and
/// returns the results in submission order.
///
/// # Panics
///
/// Panics if a job fails to prepare (unknown plugin, bad parameters,
/// unopenable trace file).  Specs built with the typed
/// [`PrefetcherSpec`] constructors over synthetic sources never fail; use
/// [`run_jobs_in`] to handle errors from externally-loaded job files.
pub fn run_jobs(jobs: &[SimJob]) -> Vec<JobResult> {
    run_jobs_with(jobs, &EngineConfig::default())
}

/// Runs every job against the built-in plugin registry with an explicit
/// engine configuration.
///
/// # Panics
///
/// As [`run_jobs`]: panics if a job fails to prepare.
pub fn run_jobs_with(jobs: &[SimJob], config: &EngineConfig) -> Vec<JobResult> {
    run_jobs_in(jobs, config, Registry::builtin()).expect("job failed to prepare")
}

/// Runs every job, resolving prefetcher specs through `registry` and
/// sharding the list across `config.workers` threads, then merges the
/// results deterministically back into submission order.
///
/// With one effective worker the engine runs serially on the calling thread;
/// either way the results are bit-identical, because each job builds its own
/// access stream and prefetcher from the job description.
///
/// # Errors
///
/// The first (lowest-job-index) preparation failure, regardless of worker
/// scheduling.  Already-completed work on other threads is discarded.
pub fn run_jobs_in(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
) -> Result<Vec<JobResult>, EngineError> {
    run_jobs_metered(jobs, config, registry, &MetricsConfig::disabled()).map(|(results, _)| results)
}

/// One executed job tagged with its submission index, or the error that
/// stopped its worker.
type TaggedOutcome = (usize, Result<(JobResult, JobMetrics), EngineError>);

/// Executes one job with panic isolation: a panic anywhere inside the job —
/// plugin build, probe callback, segmented pipeline helper, speculative
/// worker — is caught at this boundary and surfaced as
/// [`EngineError::Panicked`], so a broken plugin fails its own job with the
/// usual lowest-index-error semantics instead of tearing down the worker
/// thread and every job queued behind it.
///
/// Segmented and speculative jobs run their helper threads inside a
/// [`std::thread::scope`], which joins them before the owning panic
/// propagates out, so nothing outlives the catch.  `AssertUnwindSafe` is
/// sound: the job's system, prefetcher and stream are constructed inside
/// the closure and dropped with it, and the shared `registry`, `metrics`
/// and `trace` are only read through `&` references.
fn exec_job_isolated(
    index: usize,
    job: &SimJob,
    registry: &Registry,
    metrics: &MetricsConfig,
    plan: Option<SegmentPlan>,
    trace: &Trace,
    rec: &Recorder,
) -> Result<(JobResult, JobMetrics), EngineError> {
    let mut span = rec.span("job");
    span.arg_u64("job", index as u64);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match plan {
        Some(p) => run_job_segmented_observed(index, job, registry, metrics, p, trace),
        None => run_job_metered(index, job, registry, metrics),
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            rec.instant("job_panicked", |args| {
                args.u64("job", index as u64);
            });
            Err(EngineError::Panicked {
                job_index: index,
                message: panic_message(payload.as_ref()),
            })
        }
    }
}

/// One worker's output: its timing plus the tagged job outcomes it ran.
type WorkerShard = (WorkerMetrics, Vec<TaggedOutcome>);

/// [`run_jobs_in`] with telemetry: additionally collects an
/// [`EngineMetrics`] — per-job throughput, per-worker simulate vs.
/// queue-wait time, and the whole-run timing including the deterministic
/// merge — when `metrics.enabled` (all timings zero otherwise).
///
/// Results are bit-identical to [`run_jobs_in`] for every metrics setting
/// and worker count: telemetry is collected on a separate channel and never
/// serialized into the [`JobResult`]s.
///
/// # Errors
///
/// As [`run_jobs_in`]: the first (lowest-job-index) preparation failure.
/// Metrics collected before the failure are discarded with the results.
pub fn run_jobs_metered(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
    metrics: &MetricsConfig,
) -> Result<(Vec<JobResult>, EngineMetrics), EngineError> {
    run_jobs_observed(jobs, config, registry, metrics, &Trace::disabled())
}

/// [`run_jobs_metered`] with span tracing: when `trace` is enabled, every
/// worker records a `worker` span, each executed job a nested `job` span,
/// and segmented jobs hand the trace down to their pipeline threads for
/// per-segment stage spans.  With a disabled trace this *is*
/// [`run_jobs_metered`] — recorders are no-ops that never read the clock —
/// and results are bit-identical for every tracing and metrics setting.
///
/// # Errors
///
/// As [`run_jobs_in`]: the first (lowest-job-index) preparation failure.
pub fn run_jobs_observed(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
    metrics: &MetricsConfig,
    trace: &Trace,
) -> Result<(Vec<JobResult>, EngineMetrics), EngineError> {
    let run_watch = Stopwatch::start_if(metrics.enabled);
    // With segmentation active the thread budget is spent inside jobs (up
    // to three pipeline threads each), so fewer jobs run concurrently; the
    // execution of each job is bit-identical either way.
    let plan = config.segment_plan();
    let workers = match &plan {
        Some(p) => config.segmented_job_workers(jobs.len(), p),
        None => config.effective_workers(jobs.len()),
    };
    let exec = |index: usize, job: &SimJob, rec: &Recorder| {
        exec_job_isolated(index, job, registry, metrics, plan, trace, rec)
    };
    if workers <= 1 {
        let recorder = trace.recorder("engine");
        let mut results = Vec::with_capacity(jobs.len());
        let mut engine_metrics = EngineMetrics::default();
        let mut simulate_seconds = 0.0;
        for (index, job) in jobs.iter().enumerate() {
            let (result, job_metrics) = exec(index, job, &recorder)?;
            simulate_seconds += job_metrics.elapsed_seconds;
            results.push(result);
            engine_metrics.jobs.push(job_metrics);
        }
        let total_seconds = run_watch.elapsed_seconds();
        engine_metrics.workers.push(WorkerMetrics {
            worker: 0,
            jobs_run: jobs.len() as u64,
            simulate_seconds,
            queue_wait_seconds: (total_seconds - simulate_seconds).max(0.0),
            total_seconds,
        });
        engine_metrics.finish(0.0, total_seconds);
        return Ok((results, engine_metrics));
    }

    // Work-stealing by atomic cursor: each worker claims the next unclaimed
    // job, so long jobs do not serialize behind a static partition.
    let next = AtomicUsize::new(0);
    let shards: Vec<WorkerShard> = std::thread::scope(|scope| {
        let exec = &exec;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                // `move` is for the worker index; the shared state is
                // captured by reference.
                let next = &next;
                scope.spawn(move || {
                    let recorder = trace.recorder(&format!("worker{worker}"));
                    let mut worker_span = recorder.span("worker");
                    let worker_watch = Stopwatch::start_if(metrics.enabled);
                    let mut simulate_seconds = 0.0;
                    let mut shard = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        let result = exec(index, &jobs[index], &recorder);
                        let failed = result.is_err();
                        if let Ok((_, job_metrics)) = &result {
                            simulate_seconds += job_metrics.elapsed_seconds;
                        }
                        shard.push((index, result));
                        if failed {
                            // No point burning the queue down after a
                            // failure; the merge below still picks the
                            // lowest-index error deterministically.
                            break;
                        }
                    }
                    let total_seconds = worker_watch.elapsed_seconds();
                    let worker_metrics = WorkerMetrics {
                        worker,
                        jobs_run: shard.len() as u64,
                        simulate_seconds,
                        queue_wait_seconds: (total_seconds - simulate_seconds).max(0.0),
                        total_seconds,
                    };
                    worker_span.arg_u64("jobs_run", worker_metrics.jobs_run);
                    worker_span.arg_f64("queue_wait_seconds", worker_metrics.queue_wait_seconds);
                    (worker_metrics, shard)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Deterministic merge: the tagged index recovers submission order
    // regardless of which worker ran which job, and the lowest-index error
    // wins regardless of scheduling.
    let merge_watch = Stopwatch::start_if(metrics.enabled);
    let mut engine_metrics = EngineMetrics::default();
    let mut tagged: Vec<TaggedOutcome> = Vec::new();
    for (worker_metrics, shard) in shards {
        engine_metrics.workers.push(worker_metrics);
        tagged.extend(shard);
    }
    tagged.sort_by_key(|(index, _)| *index);
    let mut results = Vec::with_capacity(tagged.len());
    for (_, outcome) in tagged {
        let (result, job_metrics) = outcome?;
        results.push(result);
        engine_metrics.jobs.push(job_metrics);
    }
    debug_assert!(results.iter().enumerate().all(|(i, r)| r.job_index == i));
    engine_metrics.finish(merge_watch.elapsed_seconds(), run_watch.elapsed_seconds());
    Ok((results, engine_metrics))
}

/// A shared cooperative-cancellation flag for a streaming engine run.
///
/// Cancellation is observed between jobs, never mid-job: workers stop
/// claiming new work, already-running jobs complete, and the run returns
/// cleanly with the contiguous prefix of results delivered so far.  Cloning
/// shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// [`run_jobs_metered`] restructured for a serving loop: results are
/// delivered to `sink` **incrementally, in submission order**, instead of
/// being collected into a `Vec`, and the run can be cut short between jobs
/// through `cancel`.
///
/// The per-job results handed to the sink are bit-identical to what
/// [`run_jobs_metered`] would return for every worker count, segmentation
/// and speculation setting — workers tag outcomes with the submission index
/// and the calling thread reorders them into a strictly in-order stream, so
/// a consumer can forward each result over a socket as it lands.  Because
/// workers claim jobs from an atomic cursor, the claimed set is always a
/// contiguous prefix of the list; a cancelled run therefore delivers jobs
/// `0..n` for some `n` with nothing missing in between.
///
/// Returns the number of results delivered to the sink plus the run's
/// [`EngineMetrics`] (no separate merge phase, so `merge_seconds` is zero).
///
/// # Errors
///
/// The lowest-index preparation failure, exactly as [`run_jobs_metered`];
/// results before the failing index have already been delivered to the sink
/// (a streaming consumer has by then forwarded them — the error frame
/// follows the partial stream).
pub fn run_jobs_streamed(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
    metrics: &MetricsConfig,
    cancel: &CancelToken,
    sink: &mut dyn FnMut(JobResult, JobMetrics),
) -> Result<(usize, EngineMetrics), EngineError> {
    run_jobs_streamed_observed(
        jobs,
        config,
        registry,
        metrics,
        &Trace::disabled(),
        cancel,
        sink,
    )
}

/// [`run_jobs_streamed`] with span tracing, exactly as [`run_jobs_observed`]
/// relates to [`run_jobs_metered`]: a `worker` span per worker, a nested
/// `job` span per executed job, stage spans inside segmented jobs — and a
/// disabled trace records nothing and costs nothing.
///
/// # Errors
///
/// As [`run_jobs_streamed`].
pub fn run_jobs_streamed_observed(
    jobs: &[SimJob],
    config: &EngineConfig,
    registry: &Registry,
    metrics: &MetricsConfig,
    trace: &Trace,
    cancel: &CancelToken,
    sink: &mut dyn FnMut(JobResult, JobMetrics),
) -> Result<(usize, EngineMetrics), EngineError> {
    let run_watch = Stopwatch::start_if(metrics.enabled);
    let plan = config.segment_plan();
    let workers = match &plan {
        Some(p) => config.segmented_job_workers(jobs.len(), p),
        None => config.effective_workers(jobs.len()),
    };
    let exec = |index: usize, job: &SimJob, rec: &Recorder| {
        exec_job_isolated(index, job, registry, metrics, plan, trace, rec)
    };

    if workers <= 1 {
        let recorder = trace.recorder("engine");
        let mut engine_metrics = EngineMetrics::default();
        let mut simulate_seconds = 0.0;
        let mut delivered = 0;
        let mut first_error = None;
        for (index, job) in jobs.iter().enumerate() {
            if cancel.is_cancelled() {
                break;
            }
            match exec(index, job, &recorder) {
                Ok((result, job_metrics)) => {
                    simulate_seconds += job_metrics.elapsed_seconds;
                    engine_metrics.jobs.push(job_metrics);
                    sink(result, job_metrics);
                    delivered += 1;
                }
                Err(e) => {
                    first_error = Some(e);
                    break;
                }
            }
        }
        if first_error.is_none() && cancel.is_cancelled() {
            recorder.instant("run_cancelled", |args| {
                args.u64("delivered", delivered as u64);
            });
        }
        let total_seconds = run_watch.elapsed_seconds();
        engine_metrics.workers.push(WorkerMetrics {
            worker: 0,
            jobs_run: delivered as u64,
            simulate_seconds,
            queue_wait_seconds: (total_seconds - simulate_seconds).max(0.0),
            total_seconds,
        });
        engine_metrics.finish(0.0, total_seconds);
        return match first_error {
            Some(e) => Err(e),
            None => Ok((delivered, engine_metrics)),
        };
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<TaggedOutcome>();
    let mut engine_metrics = EngineMetrics::default();
    let mut delivered = 0usize;
    let mut first_error: Option<EngineError> = None;
    std::thread::scope(|scope| {
        let exec = &exec;
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = &next;
                let tx = tx.clone();
                scope.spawn(move || {
                    let recorder = trace.recorder(&format!("worker{worker}"));
                    let mut worker_span = recorder.span("worker");
                    let worker_watch = Stopwatch::start_if(metrics.enabled);
                    let mut simulate_seconds = 0.0;
                    let mut jobs_run = 0u64;
                    loop {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        let outcome = exec(index, &jobs[index], &recorder);
                        let failed = outcome.is_err();
                        if let Ok((_, job_metrics)) = &outcome {
                            simulate_seconds += job_metrics.elapsed_seconds;
                        }
                        jobs_run += 1;
                        if tx.send((index, outcome)).is_err() || failed {
                            break;
                        }
                    }
                    let total_seconds = worker_watch.elapsed_seconds();
                    let worker_metrics = WorkerMetrics {
                        worker,
                        jobs_run,
                        simulate_seconds,
                        queue_wait_seconds: (total_seconds - simulate_seconds).max(0.0),
                        total_seconds,
                    };
                    worker_span.arg_u64("jobs_run", jobs_run);
                    worker_span.arg_f64("queue_wait_seconds", worker_metrics.queue_wait_seconds);
                    worker_metrics
                })
            })
            .collect();
        // The workers hold the only remaining senders, so the channel closes
        // when the last one finishes.
        drop(tx);

        // Reorder the tagged outcomes into a strictly in-order stream.  On
        // the first in-order error (necessarily the lowest failing index:
        // everything before it was already emitted as a success) cancel the
        // remaining work and drain the channel.
        let mut pending: std::collections::BTreeMap<
            usize,
            Result<(JobResult, JobMetrics), EngineError>,
        > = std::collections::BTreeMap::new();
        let mut next_emit = 0usize;
        for (index, outcome) in rx {
            pending.insert(index, outcome);
            while first_error.is_none() {
                match pending.remove(&next_emit) {
                    Some(Ok((result, job_metrics))) => {
                        engine_metrics.jobs.push(job_metrics);
                        sink(result, job_metrics);
                        delivered += 1;
                        next_emit += 1;
                    }
                    Some(Err(e)) => {
                        first_error = Some(e);
                        cancel.cancel();
                    }
                    None => break,
                }
            }
        }
        for handle in handles {
            engine_metrics
                .workers
                .push(handle.join().expect("engine worker panicked"));
        }
    });
    if first_error.is_none() && cancel.is_cancelled() {
        trace.recorder("engine").instant("run_cancelled", |args| {
            args.u64("delivered", delivered as u64);
        });
    }
    engine_metrics.finish(0.0, run_watch.elapsed_seconds());
    match first_error {
        Some(e) => Err(e),
        None => Ok((delivered, engine_metrics)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghb::GhbConfig;
    use memsim::HierarchyConfig;
    use sms::SmsConfig;
    use trace::{Application, GeneratorConfig};

    fn job(app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        SimJob::new(memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(2),
            2006,
            2,
            HierarchyConfig::scaled(),
            prefetcher,
            8_000,
        ))
    }

    fn job_list() -> Vec<SimJob> {
        vec![
            job(Application::OltpDb2, PrefetcherSpec::null()),
            job(Application::OltpDb2, PrefetcherSpec::sms_paper_default()),
            job(
                Application::Sparse,
                PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ),
            job(
                Application::DssQry1,
                PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ),
            job(Application::WebApache, PrefetcherSpec::null())
                .with_timing(TimingConfig::table1(), 4),
        ]
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        let parallel = run_jobs_with(&jobs, &EngineConfig::with_workers(4));
        assert_eq!(serial, parallel);
        assert!(serial.iter().enumerate().all(|(i, r)| r.job_index == i));
        for r in &serial {
            assert_eq!(r.summary.skipped_accesses, 0);
        }
    }

    #[test]
    fn timing_jobs_report_timing_results() {
        let jobs = job_list();
        let results = run_jobs(&jobs);
        assert!(results[4].timing.is_some());
        assert!(results[..4].iter().all(|r| r.timing.is_none()));
        let t = results[4].timing.as_ref().unwrap();
        assert_eq!(t.segment_cycles.len(), 4);
        assert_eq!(t.accesses, results[4].summary.accesses);
    }

    #[test]
    fn effective_workers_clamps_sensibly() {
        assert_eq!(EngineConfig::serial().effective_workers(100), 1);
        assert_eq!(EngineConfig::with_workers(8).effective_workers(3), 3);
        assert_eq!(EngineConfig::with_workers(2).effective_workers(0), 1);
        assert!(EngineConfig::auto().effective_workers(64) >= 1);
    }

    #[test]
    fn speculation_implies_a_segment_plan() {
        // No segmentation, no speculation: no plan.
        assert!(EngineConfig::with_workers(4).segment_plan().is_none());
        // A bare speculation request must segment at the default size
        // instead of silently running unsegmented (and unspeculated).
        let plan = EngineConfig::with_workers(4)
            .with_speculation(4)
            .segment_plan()
            .expect("speculation implies segmentation");
        assert_eq!(plan.segment_size, EngineConfig::DEFAULT_SPECULATIVE_SEGMENT);
        assert_eq!(plan.threads, 4);
        assert_eq!(plan.speculation, 4);
        // An explicit segment size wins over the implied default.
        let plan = EngineConfig::with_workers(2)
            .with_segment_size(1_234)
            .with_speculation(2)
            .segment_plan()
            .expect("explicit segmentation");
        assert_eq!(plan.segment_size, 1_234);
        assert_eq!(plan.threads, 2);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![job(Application::Ocean, PrefetcherSpec::null())];
        let results = run_jobs_with(&jobs, &EngineConfig::with_workers(16));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].summary.accesses, 8_000);
    }

    #[test]
    fn job_lists_round_trip_through_json() {
        let list = JobList::new(job_list());
        let json = serde_json::to_string_pretty(&list).expect("serialize");
        let back: JobList = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(list, back);
        assert_eq!(back.version, JobList::VERSION);
        // The reloaded list executes identically to the original.
        let a = run_jobs_with(&list.jobs, &EngineConfig::serial());
        let b = run_jobs_with(&back.jobs, &EngineConfig::serial());
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_plugin_surfaces_lowest_index_error() {
        let mut jobs = job_list();
        jobs.insert(
            1,
            job(
                Application::Ocean,
                PrefetcherSpec {
                    plugin: "warp-drive".to_string(),
                    params: serde_json::Value::Null,
                },
            ),
        );
        jobs.push(job(
            Application::Ocean,
            PrefetcherSpec {
                plugin: "also-unknown".to_string(),
                params: serde_json::Value::Null,
            },
        ));
        for workers in [1, 4] {
            let err = run_jobs_in(
                &jobs,
                &EngineConfig::with_workers(workers),
                Registry::builtin(),
            )
            .expect_err("unknown plugin must fail");
            match err {
                EngineError::Plugin { job_index, .. } => assert_eq!(job_index, 1),
                other => panic!("expected Plugin error, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_version_mismatch_is_a_dedicated_actionable_error() {
        // A future-versioned spec — even one whose job shape this build
        // could not parse — must produce the version error, not a field
        // error.
        let text = r#"{"version": 3, "jobs": [{"unknown_future_shape": true}]}"#;
        let err = JobList::from_json(text).expect_err("version 3 must be rejected");
        assert_eq!(
            err,
            SpecError::UnsupportedVersion {
                found: 3,
                supported: 2
            }
        );
        // The message is part of the CLI contract: it names the readable
        // range and says how to regenerate.
        assert_eq!(
            err.to_string(),
            "unsupported job-spec version 3: this build reads versions 1 through 2; \
             regenerate the spec with `sms-experiments <experiment> --emit-spec`"
        );
        // Below the readable range is rejected the same way.
        let err = JobList::from_json(r#"{"version": 0, "jobs": []}"#)
            .expect_err("version 0 must be rejected");
        assert!(matches!(
            err,
            SpecError::UnsupportedVersion {
                found: 0,
                supported: 2
            }
        ));
    }

    #[test]
    fn version_1_specs_load_through_the_lenient_path() {
        // A version-1 document (no `name` field) is exactly what every
        // pre-bump `--emit-spec` wrote.  It must still load, normalize to
        // the current version with `name: None`, and execute identically.
        let current = JobList::new(job_list());
        let mut value = serde_json::to_value(&current).expect("serialize");
        let obj = match &mut value {
            serde_json::Value::Object(entries) => entries,
            other => panic!("job list serializes as an object, got {other:?}"),
        };
        obj.retain(|(key, _)| key != "name");
        for (key, v) in obj.iter_mut() {
            if key == "version" {
                *v = serde_json::Value::UInt(1);
            }
        }
        let v1_text = serde_json::to_string(&value).expect("render v1 spec");
        assert!(!v1_text.contains("\"name\""), "{v1_text}");

        let loaded = JobList::from_json(&v1_text).expect("version 1 loads leniently");
        assert_eq!(loaded.version, JobList::VERSION, "normalized on load");
        assert_eq!(loaded.name, None);
        assert_eq!(loaded.jobs, current.jobs);
        // Re-serializing the loaded list is the documented migration path:
        // it round-trips as a current-version spec.
        let migrated = serde_json::to_string(&loaded).expect("serialize migrated");
        let back = JobList::from_json(&migrated).expect("migrated spec parses");
        assert_eq!(back, loaded);
    }

    #[test]
    fn spec_parse_errors_name_the_problem() {
        let err = JobList::from_json("{not json").expect_err("not JSON");
        assert!(matches!(err, SpecError::Parse(_)), "{err}");

        let err = JobList::from_json(r#"{"jobs": []}"#).expect_err("no version");
        assert!(err.to_string().contains("version"), "{err}");

        // A well-formed current-version list parses.
        let json = serde_json::to_string(&JobList::new(job_list())).unwrap();
        let list = JobList::from_json(&json).expect("current version parses");
        assert_eq!(list.version, JobList::VERSION);
        assert_eq!(list.jobs.len(), job_list().len());
    }

    #[test]
    fn short_trace_is_warned_not_failed() {
        // 100 recorded accesses against a 1000-access budget: the job
        // succeeds with a visible short_trace warning.
        let recorded: Vec<trace::MemAccess> = Application::Ocean
            .stream(5, &GeneratorConfig::default().with_cpus(1))
            .take(100)
            .collect();
        let path =
            std::env::temp_dir().join(format!("sms-engine-short-trace-{}.bin", std::process::id()));
        trace::io::write_binary(std::fs::File::create(&path).unwrap(), &recorded).unwrap();

        let jobs = vec![SimJob::new(memsim::SimJob {
            source: trace::TraceSource::binary_file(path.to_string_lossy()),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::null(),
            accesses: 1_000,
        })];
        let results = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect("short trace is not an error");
        std::fs::remove_file(&path).ok();

        let result = &results[0];
        assert_eq!(result.summary.accesses, 100);
        assert_eq!(result.warnings.len(), 1);
        assert_eq!(result.warnings[0].kind, JobWarning::SHORT_TRACE);
        assert!(
            result.warnings[0].message.contains("100 of 1000"),
            "{}",
            result.warnings[0].message
        );
        // The warning is part of the serialized result, so `--out` dumps and
        // spec runs surface it.
        let json = serde_json::to_string(result).unwrap();
        assert!(json.contains("short_trace"), "{json}");
    }

    #[test]
    fn full_length_jobs_carry_no_warnings() {
        let results = run_jobs(&job_list());
        assert!(results.iter().all(|r| r.warnings.is_empty()));
    }

    #[test]
    fn metered_results_are_bit_identical_and_metrics_cover_the_run() {
        let jobs = job_list();
        let plain = run_jobs_with(&jobs, &EngineConfig::with_workers(2));
        let (metered, engine_metrics) = run_jobs_metered(
            &jobs,
            &EngineConfig::with_workers(2),
            Registry::builtin(),
            &metrics::MetricsConfig::enabled(),
        )
        .expect("jobs prepare");
        assert_eq!(plain, metered, "telemetry must not perturb results");

        assert_eq!(engine_metrics.jobs.len(), jobs.len());
        assert_eq!(engine_metrics.workers.len(), 2);
        assert!(engine_metrics
            .jobs
            .iter()
            .enumerate()
            .all(|(i, j)| j.job_index == i));
        let worker_jobs: u64 = engine_metrics.workers.iter().map(|w| w.jobs_run).sum();
        assert_eq!(worker_jobs, jobs.len() as u64);
        assert!(engine_metrics.total_seconds > 0.0);
        assert!(engine_metrics.accesses_per_sec > 0.0);
        assert_eq!(
            engine_metrics.total_accesses,
            metered.iter().map(|r| r.summary.accesses).sum::<u64>()
        );
        let report = engine_metrics.report();
        assert!(report.validate().is_ok());
    }

    #[test]
    fn streamed_results_match_the_collected_path_bit_for_bit() {
        let jobs = job_list();
        for workers in [1, 4] {
            let config = EngineConfig::with_workers(workers);
            let (expected, _) = run_jobs_metered(
                &jobs,
                &config,
                Registry::builtin(),
                &metrics::MetricsConfig::enabled(),
            )
            .expect("jobs prepare");
            let mut streamed = Vec::new();
            let (delivered, engine_metrics) = run_jobs_streamed(
                &jobs,
                &config,
                Registry::builtin(),
                &metrics::MetricsConfig::enabled(),
                &CancelToken::new(),
                &mut |result, job_metrics| {
                    assert_eq!(job_metrics.job_index, result.job_index);
                    streamed.push(result);
                },
            )
            .expect("streamed run succeeds");
            // Strictly in submission order, nothing missing, bit-identical.
            assert_eq!(delivered, jobs.len());
            assert_eq!(streamed, expected, "workers = {workers}");
            assert_eq!(engine_metrics.jobs.len(), jobs.len());
            assert!(engine_metrics
                .jobs
                .iter()
                .enumerate()
                .all(|(i, j)| j.job_index == i));
        }
    }

    #[test]
    fn streamed_error_follows_the_delivered_prefix() {
        let mut jobs = job_list();
        jobs.insert(
            1,
            job(
                Application::Ocean,
                PrefetcherSpec {
                    plugin: "warp-drive".to_string(),
                    params: serde_json::Value::Null,
                },
            ),
        );
        for workers in [1, 4] {
            let mut streamed = Vec::new();
            let err = run_jobs_streamed(
                &jobs,
                &EngineConfig::with_workers(workers),
                Registry::builtin(),
                &metrics::MetricsConfig::disabled(),
                &CancelToken::new(),
                &mut |result, _| streamed.push(result.job_index),
            )
            .expect_err("unknown plugin must fail");
            // Job 0 is emitted before the in-order merge reaches the failing
            // index; the error then terminates the stream deterministically.
            assert_eq!(streamed, vec![0], "workers = {workers}");
            match err {
                EngineError::Plugin { job_index, .. } => assert_eq!(job_index, 1),
                other => panic!("expected Plugin error, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_stream_delivers_a_clean_prefix() {
        let jobs = job_list();
        for workers in [1, 2] {
            let cancel = CancelToken::new();
            let mut streamed = Vec::new();
            let (delivered, _) = run_jobs_streamed(
                &jobs,
                &EngineConfig::with_workers(workers),
                Registry::builtin(),
                &metrics::MetricsConfig::disabled(),
                &cancel,
                &mut |result, _| {
                    streamed.push(result.job_index);
                    // Cancel from inside the sink: jobs already claimed may
                    // still land, but the stream stays an in-order prefix.
                    cancel.cancel();
                },
            )
            .expect("cancellation is not an error");
            assert_eq!(delivered, streamed.len());
            assert!(delivered >= 1, "the first result triggered the cancel");
            assert_eq!(
                streamed,
                (0..delivered).collect::<Vec<_>>(),
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn corrupt_trace_file_fails_the_job_instead_of_shortening_it() {
        // A trace with a valid header but a truncated body: the job must
        // fail loudly, not return a summary with fewer accesses.
        let recorded: Vec<trace::MemAccess> = Application::Ocean
            .stream(1, &GeneratorConfig::default().with_cpus(1))
            .take(100)
            .collect();
        let mut bytes = Vec::new();
        trace::io::write_binary(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 7);
        let path = std::env::temp_dir().join(format!(
            "sms-engine-corrupt-trace-{}.bin",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();

        let jobs = vec![SimJob::new(memsim::SimJob {
            source: trace::TraceSource::binary_file(path.to_string_lossy()),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::null(),
            accesses: 1_000,
        })];
        let err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("corrupt trace must fail the job");
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, EngineError::Trace { job_index: 0, .. }));
        assert!(err.to_string().contains("corrupt mid-stream"), "{err}");
    }

    /// A prefetcher that panics after a fixed number of observed accesses —
    /// the in-crate stand-in for a broken custom plugin (the `faultinject`
    /// crate ships the full chaos plugin).
    struct PanicAtPrefetcher {
        countdown: usize,
    }

    impl memsim::Prefetcher for PanicAtPrefetcher {
        fn on_access(
            &mut self,
            _access: &trace::MemAccess,
            _outcome: &memsim::SystemOutcome,
        ) -> Vec<memsim::PrefetchRequest> {
            if self.countdown == 0 {
                panic!("injected prefetcher panic");
            }
            self.countdown -= 1;
            Vec::new()
        }

        fn name(&self) -> &str {
            "panic-at"
        }
    }

    impl crate::plugin::Probe for PanicAtPrefetcher {}

    struct PanicAtPlugin;

    impl crate::plugin::PrefetcherPlugin for PanicAtPlugin {
        fn name(&self) -> &str {
            "panic-at"
        }

        fn build(
            &self,
            _params: &serde_json::Value,
            _num_cpus: usize,
        ) -> Result<crate::plugin::BuiltPrefetcher, PluginError> {
            Ok(crate::plugin::BuiltPrefetcher::new(PanicAtPrefetcher {
                countdown: 100,
            }))
        }
    }

    fn chaos_registry() -> Registry {
        let mut registry = Registry::with_builtins();
        registry.register(std::sync::Arc::new(PanicAtPlugin));
        registry
    }

    fn panic_job() -> SimJob {
        job(
            Application::Ocean,
            PrefetcherSpec {
                plugin: "panic-at".to_string(),
                params: serde_json::Value::Null,
            },
        )
    }

    #[test]
    fn panicking_plugin_fails_only_its_own_job() {
        let registry = chaos_registry();
        let mut jobs = job_list();
        jobs.insert(1, panic_job());
        for workers in [1, 4] {
            let err = run_jobs_in(&jobs, &EngineConfig::with_workers(workers), &registry)
                .expect_err("panicking plugin must fail the run");
            match &err {
                EngineError::Panicked { job_index, message } => {
                    assert_eq!(*job_index, 1);
                    assert!(message.contains("injected prefetcher panic"), "{message}");
                }
                other => panic!("expected Panicked error, got {other:?}"),
            }
            // The rendered message is part of the server's error-frame
            // contract, so it is pinned.
            assert_eq!(
                err.to_string(),
                "job 1: panicked: injected prefetcher panic"
            );
        }
    }

    #[test]
    fn panic_in_streamed_run_follows_the_clean_prefix() {
        let registry = chaos_registry();
        let mut jobs = job_list();
        jobs.insert(1, panic_job());
        for workers in [1, 4] {
            let mut streamed = Vec::new();
            let err = run_jobs_streamed(
                &jobs,
                &EngineConfig::with_workers(workers),
                &registry,
                &metrics::MetricsConfig::disabled(),
                &CancelToken::new(),
                &mut |result, _| streamed.push(result.job_index),
            )
            .expect_err("panicking plugin must fail the run");
            assert_eq!(streamed, vec![0], "workers = {workers}");
            assert!(matches!(err, EngineError::Panicked { job_index: 1, .. }));
        }
    }

    #[test]
    fn panic_is_isolated_under_segmentation_and_speculation() {
        // The panic fires on a pipeline thread (segmented) or a speculative
        // worker; either way it must surface as the job's structured error,
        // not tear down the engine.
        let registry = chaos_registry();
        let jobs = vec![panic_job()];
        for config in [
            EngineConfig::with_workers(2).with_segment_size(1_000),
            EngineConfig::with_workers(4)
                .with_segment_size(1_000)
                .with_speculation(2),
        ] {
            let err = run_jobs_in(&jobs, &config, &registry)
                .expect_err("panicking plugin must fail the run");
            assert!(
                matches!(err, EngineError::Panicked { job_index: 0, .. }),
                "{err:?}"
            );
        }
    }

    #[test]
    fn missing_trace_file_surfaces_as_engine_error() {
        let jobs = vec![SimJob::new(memsim::SimJob {
            source: trace::TraceSource::binary_file("/nonexistent/trace.bin"),
            cpus: 1,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::null(),
            accesses: 100,
        })];
        let err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("missing file must fail");
        assert!(matches!(err, EngineError::Trace { job_index: 0, .. }));
        assert!(err.to_string().contains("trace source"), "{err}");
    }
}
