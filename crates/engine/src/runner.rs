//! The job executor: runs a list of [`SimJob`]s serially or sharded across
//! worker threads, with a deterministic merge of the results.
//!
//! Every job is self-contained — it builds its own system, prefetcher and
//! trace generator (from the job's seed) on whichever thread executes it —
//! so the parallel path is bit-identical to the serial path and the result
//! order never depends on scheduling.

use crate::spec::{PrefetcherSpec, ProbeReport};
use memsim::{PrefetcherFactory, RunSummary};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use timing::{TimingConfig, TimingModel, TimingResult};

/// Timing-model parameters attached to a job that should run through the
/// [`TimingModel`] instead of the plain cache driver (Figures 12 and 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingSpec {
    /// Cycle-level parameters of the modeled system.
    pub config: TimingConfig,
    /// Number of equal trace segments for paired sampling.
    pub segments: usize,
}

/// One unit of work for the engine: the driver-level [`memsim::SimJob`]
/// (trace, system, prefetcher spec, access budget, seed) plus an optional
/// timing-model evaluation.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// The simulation run proper, instantiated on the executing thread.
    pub sim: memsim::SimJob<PrefetcherSpec>,
    /// When set, the job runs through the timing model and also reports a
    /// [`TimingResult`].
    pub timing: Option<TimingSpec>,
}

impl SimJob {
    /// A plain cache-simulation job (no timing model).
    pub fn new(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self { sim, timing: None }
    }

    /// Attaches a timing-model evaluation to the job.
    pub fn with_timing(mut self, config: TimingConfig, segments: usize) -> Self {
        self.timing = Some(TimingSpec { config, segments });
        self
    }
}

impl From<memsim::SimJob<PrefetcherSpec>> for SimJob {
    fn from(sim: memsim::SimJob<PrefetcherSpec>) -> Self {
        Self::new(sim)
    }
}

/// The result of one [`SimJob`], tagged with the job's position in the input
/// list so merged results are always in submission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Index of the job in the submitted list.
    pub job_index: usize,
    /// Cache-simulation summary of the run.
    pub summary: RunSummary,
    /// Post-run prefetcher/probe state.
    pub probe: ProbeReport,
    /// Timing-model result, present iff the job carried a
    /// [`SimJob::timing`] spec.
    pub timing: Option<TimingResult>,
}

/// Execution parameters of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of worker threads; `0` means one per available hardware
    /// thread, `1` forces the serial path.
    pub workers: usize,
}

impl EngineConfig {
    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        Self { workers: 0 }
    }

    /// The serial fallback: run every job on the calling thread.
    pub fn serial() -> Self {
        Self { workers: 1 }
    }

    /// An explicit worker count (`0` = auto).
    pub fn with_workers(workers: usize) -> Self {
        Self { workers }
    }

    /// The worker count actually used for `jobs` queued jobs.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.min(jobs).max(1)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Runs one job to completion on the calling thread.
pub fn run_job(index: usize, job: &SimJob) -> JobResult {
    match &job.timing {
        Some(spec) => {
            let sim = &job.sim;
            let model = TimingModel::new(sim.hierarchy, sim.cpus, spec.config);
            let mut prefetcher = sim.prefetcher.build(sim.cpus);
            let mut stream = sim.app.stream(sim.seed, &sim.generator);
            let (timing, summary) =
                model.evaluate(&mut prefetcher, &mut stream, sim.accesses, spec.segments);
            JobResult {
                job_index: index,
                summary,
                probe: prefetcher.into_report(),
                timing: Some(timing),
            }
        }
        None => {
            let (summary, built) = memsim::run_job(&job.sim);
            JobResult {
                job_index: index,
                summary,
                probe: built.into_report(),
                timing: None,
            }
        }
    }
}

/// Runs every job with the default engine configuration (one worker per
/// available hardware thread) and returns the results in submission order.
pub fn run_jobs(jobs: &[SimJob]) -> Vec<JobResult> {
    run_jobs_with(jobs, &EngineConfig::default())
}

/// Runs every job, sharding the list across `config.workers` threads, and
/// merges the results deterministically back into submission order.
///
/// With one effective worker the engine runs serially on the calling thread;
/// either way the results are bit-identical, because each job builds its own
/// trace generator and prefetcher from the job description.
pub fn run_jobs_with(jobs: &[SimJob], config: &EngineConfig) -> Vec<JobResult> {
    let workers = config.effective_workers(jobs.len());
    if workers <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(index, job)| run_job(index, job))
            .collect();
    }

    // Work-stealing by atomic cursor: each worker claims the next unclaimed
    // job, so long jobs do not serialize behind a static partition.
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<JobResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut shard = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        shard.push(run_job(index, &jobs[index]));
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });

    // Deterministic merge: job_index recovers submission order regardless of
    // which worker ran which job.
    let mut results: Vec<JobResult> = shards.into_iter().flatten().collect();
    results.sort_by_key(|r| r.job_index);
    debug_assert!(results.iter().enumerate().all(|(i, r)| r.job_index == i));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghb::GhbConfig;
    use memsim::HierarchyConfig;
    use sms::SmsConfig;
    use trace::{Application, GeneratorConfig};

    fn job(app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        SimJob::new(memsim::SimJob {
            app,
            generator: GeneratorConfig::default().with_cpus(2),
            seed: 2006,
            cpus: 2,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher,
            accesses: 8_000,
        })
    }

    fn job_list() -> Vec<SimJob> {
        vec![
            job(Application::OltpDb2, PrefetcherSpec::Null),
            job(Application::OltpDb2, PrefetcherSpec::sms_paper_default()),
            job(
                Application::Sparse,
                PrefetcherSpec::Ghb(GhbConfig::paper_small()),
            ),
            job(
                Application::DssQry1,
                PrefetcherSpec::Sms(SmsConfig::paper_default()),
            ),
            job(Application::WebApache, PrefetcherSpec::Null)
                .with_timing(TimingConfig::table1(), 4),
        ]
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        let parallel = run_jobs_with(&jobs, &EngineConfig::with_workers(4));
        assert_eq!(serial, parallel);
        assert!(serial.iter().enumerate().all(|(i, r)| r.job_index == i));
        for r in &serial {
            assert_eq!(r.summary.skipped_accesses, 0);
        }
    }

    #[test]
    fn timing_jobs_report_timing_results() {
        let jobs = job_list();
        let results = run_jobs(&jobs);
        assert!(results[4].timing.is_some());
        assert!(results[..4].iter().all(|r| r.timing.is_none()));
        let t = results[4].timing.as_ref().unwrap();
        assert_eq!(t.segment_cycles.len(), 4);
        assert_eq!(t.accesses, results[4].summary.accesses);
    }

    #[test]
    fn effective_workers_clamps_sensibly() {
        assert_eq!(EngineConfig::serial().effective_workers(100), 1);
        assert_eq!(EngineConfig::with_workers(8).effective_workers(3), 3);
        assert_eq!(EngineConfig::with_workers(2).effective_workers(0), 1);
        assert!(EngineConfig::auto().effective_workers(64) >= 1);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![job(Application::Ocean, PrefetcherSpec::Null)];
        let results = run_jobs_with(&jobs, &EngineConfig::with_workers(16));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].summary.accesses, 8_000);
    }
}
