//! The open plugin API: prefetchers and probes as registry-backed plugins.
//!
//! PR 2 closed the evaluation space into enums — every prefetcher kind and
//! every probe report was a variant, and adding one meant editing the
//! engine.  This module opens both seams:
//!
//! * a [`PrefetcherPlugin`] is a named factory that builds a live
//!   [`Probe`] (a `memsim::Prefetcher` that also yields a serializable
//!   [`ProbeReport`]) from plugin-specific JSON parameters;
//! * a [`Registry`] maps stable plugin names to plugins.  It ships with all
//!   built-ins registered ([`Registry::with_builtins`], also available as
//!   the shared [`Registry::builtin`]), and experiments or tests can
//!   [`Registry::register`] their own plugins without touching the engine;
//! * a [`ProbeReport`] is an open `{kind, data}` pair rather than an enum,
//!   so new probes serialize their own payloads.
//!
//! Specs stay plain data ([`PrefetcherSpec`](crate::spec::PrefetcherSpec) is
//! a plugin name plus a parameter tree), which is what makes whole job lists
//! round-trippable through JSON files.

use memsim::Prefetcher;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::spec::PrefetcherSpec;

/// A live prefetcher or passive probe attached to a simulation run.
///
/// A probe drives the run as a [`memsim::Prefetcher`] and, once the run
/// completes, is consumed for whatever post-run measurement state it
/// exposes.  Pure prefetchers with no report (the null baseline, the GHB)
/// use the default empty report.
pub trait Probe: Prefetcher + Send {
    /// Consumes the probe and extracts its post-run report.
    fn into_report(self: Box<Self>) -> ProbeReport {
        ProbeReport::none()
    }

    /// Whether this probe consumes the *miss-kind classifications*
    /// (`SystemOutcome::l1_miss_kind` / `l2_miss_kind`).
    ///
    /// Segment-parallel execution defers miss classification off the
    /// simulation thread, so those two fields arrive as `None` there.  A
    /// probe that needs the kinds must therefore keep all kind-consuming
    /// state in a detachable [`KindSink`], return `true` here, and hand the
    /// sink over via [`take_kind_sink`](Self::take_kind_sink).  The engine
    /// feeds the sink itself: inline with each outcome on serial runs,
    /// or from the accounting stage's bit-identical
    /// [`MissAccounting::replay_with_kinds`](memsim::MissAccounting::replay_with_kinds)
    /// pass on segmented and speculative runs.  The probe's own `on_access`
    /// must **not** read the two kind fields — they are `None` whenever
    /// classification is deferred.
    ///
    /// The default is `false`, which is accurate for every built-in
    /// prefetcher and probe (they consume hit/miss outcomes, evictions and
    /// invalidations, never the classification).
    fn wants_miss_kinds(&self) -> bool {
        false
    }

    /// Detaches this probe's kind-consuming state so the engine can feed it
    /// (see [`wants_miss_kinds`](Self::wants_miss_kinds)).  Called once at
    /// construction; a probe returning `true` from `wants_miss_kinds` **must**
    /// return `Some` here or the engine panics — the contract has no silent
    /// fallback.
    fn take_kind_sink(&mut self) -> Option<Box<dyn KindSink>> {
        None
    }

    /// Reattaches the sink taken by [`take_kind_sink`](Self::take_kind_sink)
    /// so [`into_report`](Self::into_report) sees its accumulated state.
    /// Called exactly once, just before the report is extracted.
    fn restore_kind_sink(&mut self, _sink: Box<dyn KindSink>) {}

    /// Clones this probe's live state for a speculative rollback snapshot,
    /// if the probe supports it.
    ///
    /// The speculative executor pairs a forked probe with a cloned
    /// `MultiCpuSystem` so a mispredicted segment can be re-simulated from
    /// the snapshot.  `None` (the default) means the probe's state cannot be
    /// cheaply duplicated; speculation still runs, but the fault-injection
    /// test knob skips jobs with unforkable probes.
    fn fork(&self) -> Option<Box<dyn Probe>> {
        None
    }
}

/// The detachable kind-consuming component of a probe that declares
/// [`Probe::wants_miss_kinds`].
///
/// The engine owns the sink for the duration of a run and feeds it one call
/// per simulated (non-skipped) access, in stream order, with exactly the
/// `(l1, l2)` miss kinds the serial inline path reports: `Some` for
/// classified read misses, `None` for hits and write misses.  On serial runs
/// the feed happens inline; on segmented and speculative runs it happens on
/// the accounting stage, where the kinds are recomputed bit-identically from
/// the outcome tape.
pub trait KindSink: Send {
    /// Consumes one access's miss-kind classifications.
    fn on_kinds(
        &mut self,
        access: &trace::MemAccess,
        l1: Option<memsim::MissKind>,
        l2: Option<memsim::MissKind>,
    );

    /// Recovers the concrete sink so
    /// [`Probe::restore_kind_sink`] can downcast it back into the probe.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// A live prefetcher instantiated from a [`PrefetcherSpec`] by a plugin.
///
/// This is an owning wrapper around a boxed [`Probe`] so the engine can pass
/// it to the drivers as a plain [`Prefetcher`] and still extract the report
/// afterwards.  For probes that declare [`Probe::wants_miss_kinds`], the
/// wrapper also holds the detached [`KindSink`]: while attached, the sink is
/// fed inline from each access's outcome; the segment pipeline
/// [`take_kind_sink`](Self::take_kind_sink)s it and feeds it from the
/// accounting stage instead.
pub struct BuiltPrefetcher {
    inner: Box<dyn Probe>,
    sink: Option<Box<dyn KindSink>>,
}

impl BuiltPrefetcher {
    /// Wraps a concrete probe.
    ///
    /// # Panics
    ///
    /// If the probe declares [`Probe::wants_miss_kinds`] but provides no
    /// [`KindSink`] — the contract has no fallback path.
    pub fn new(probe: impl Probe + 'static) -> Self {
        Self::from_box(Box::new(probe))
    }

    /// Wraps an already-boxed probe.
    ///
    /// # Panics
    ///
    /// If the probe declares [`Probe::wants_miss_kinds`] but provides no
    /// [`KindSink`].
    pub fn from_box(mut inner: Box<dyn Probe>) -> Self {
        let sink = if inner.wants_miss_kinds() {
            let sink = inner.take_kind_sink();
            assert!(
                sink.is_some(),
                "probe {:?} declares wants_miss_kinds but take_kind_sink returned None; \
                 kind-consuming probes must hand their sink to the engine so segmented \
                 execution can feed it from the accounting stage",
                inner.name()
            );
            sink
        } else {
            None
        };
        Self { inner, sink }
    }

    /// Consumes the prefetcher and extracts its post-run report, first
    /// reattaching the kind sink (if any) so the report sees the kind-derived
    /// state.
    pub fn into_report(mut self) -> ProbeReport {
        if let Some(sink) = self.sink.take() {
            self.inner.restore_kind_sink(sink);
        }
        self.inner.into_report()
    }

    /// Whether the wrapped probe consumes miss-kind classifications (see
    /// [`Probe::wants_miss_kinds`]); the segment pipeline detaches such
    /// probes' sinks and feeds them from the accounting stage.
    pub fn wants_miss_kinds(&self) -> bool {
        self.inner.wants_miss_kinds()
    }

    /// Detaches the kind sink for deferred feeding (the segment pipeline's
    /// accounting stage).  While detached, [`Prefetcher::on_access_into`] no
    /// longer feeds kinds inline — exactly right, because deferred outcomes
    /// carry `None` kinds.  Returns `None` for probes without a sink.
    pub fn take_kind_sink(&mut self) -> Option<Box<dyn KindSink>> {
        self.sink.take()
    }

    /// Reattaches a sink detached by [`take_kind_sink`](Self::take_kind_sink).
    pub fn restore_kind_sink(&mut self, sink: Box<dyn KindSink>) {
        debug_assert!(self.sink.is_none(), "restoring over an attached sink");
        self.sink = Some(sink);
    }

    /// Clones the live probe state for a speculative rollback snapshot, if
    /// the inner probe supports [`Probe::fork`].
    ///
    /// The forked copy carries no kind sink: forks are only taken while the
    /// pipeline holds the sink detached (deferred classification), so the
    /// snapshot's sink state lives with the accounting stage, not here.
    pub fn fork(&self) -> Option<BuiltPrefetcher> {
        self.inner
            .fork()
            .map(|inner| BuiltPrefetcher { inner, sink: None })
    }
}

impl fmt::Debug for BuiltPrefetcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltPrefetcher")
            .field("name", &self.inner.name())
            .finish()
    }
}

impl Prefetcher for BuiltPrefetcher {
    fn on_access(
        &mut self,
        access: &trace::MemAccess,
        outcome: &memsim::SystemOutcome,
    ) -> Vec<memsim::PrefetchRequest> {
        if let Some(sink) = &mut self.sink {
            sink.on_kinds(access, outcome.l1_miss_kind, outcome.l2_miss_kind);
        }
        self.inner.on_access(access, outcome)
    }

    fn on_access_into(
        &mut self,
        access: &trace::MemAccess,
        outcome: &memsim::SystemOutcome,
        out: &mut Vec<memsim::PrefetchRequest>,
    ) {
        // An attached sink means classification is inline and the outcome
        // carries real kinds; the pipeline detaches the sink before running
        // deferred, where both kind fields are `None`.
        if let Some(sink) = &mut self.sink {
            sink.on_kinds(access, outcome.l1_miss_kind, outcome.l2_miss_kind);
        }
        // Forward explicitly so the inner probe's batched override is used
        // (the trait default would route through the allocating `on_access`).
        self.inner.on_access_into(access, outcome, out);
    }

    fn on_stream_eviction(&mut self, cpu: u8, block_addr: u64) {
        self.inner.on_stream_eviction(cpu, block_addr);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Post-run measurement state in open, serializable form: a stable `kind`
/// tag naming the report schema and a kind-specific JSON payload.
///
/// Built-in kinds are `"none"`, `"sms"` ([`sms::PredictorStats`]),
/// `"training"` ([`TrainingReport`]), `"density"` ([`DensityReport`]) and
/// `"oracle"` ([`OracleReport`]); custom plugins define their own.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Stable tag naming the payload schema.
    pub kind: String,
    /// Kind-specific payload.
    pub data: serde_json::Value,
}

impl ProbeReport {
    /// The empty report of probes with no post-run state.
    pub fn none() -> Self {
        Self {
            kind: "none".to_string(),
            data: serde_json::Value::Null,
        }
    }

    /// A report of the given kind carrying `payload` serialized as JSON.
    pub fn new<T: Serialize + ?Sized>(kind: &str, payload: &T) -> Self {
        Self {
            kind: kind.to_string(),
            data: serde_json::to_value(payload).expect("value-tree serialization cannot fail"),
        }
    }

    /// Decodes the payload as `T` if this report has the given kind.
    ///
    /// A kind mismatch yields `None` (the caller asked the wrong question);
    /// a matching kind whose payload does not decode is a corrupt report
    /// and panics with the underlying error rather than masquerading as a
    /// mismatch.
    ///
    /// # Panics
    ///
    /// If the kind matches but the payload fails to deserialize as `T`.
    pub fn decode<T: Deserialize>(&self, kind: &str) -> Option<T> {
        if self.kind != kind {
            return None;
        }
        match serde_json::from_value(&self.data) {
            Ok(payload) => Some(payload),
            Err(e) => panic!("ProbeReport kind {kind:?}: payload failed to decode: {e}"),
        }
    }

    /// The summed SMS predictor counters, if this report came from an SMS
    /// run.
    pub fn sms(&self) -> Option<sms::PredictorStats> {
        self.decode("sms")
    }

    /// The density histograms, if this report came from a density probe.
    pub fn density(&self) -> Option<DensityReport> {
        self.decode("density")
    }

    /// The training counters, if this report came from a training run.
    pub fn training(&self) -> Option<TrainingReport> {
        self.decode("training")
    }

    /// The per-region oracle misses, if this report came from an oracle
    /// probe.
    pub fn oracle(&self) -> Option<OracleReport> {
        self.decode("oracle")
    }
}

/// Payload of a `"density"` [`ProbeReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityReport {
    /// L1 read-miss density histogram.
    pub l1: sms::DensityHistogram,
    /// Off-chip read-miss density histogram.
    pub l2: sms::DensityHistogram,
}

/// Payload of a `"training"` [`ProbeReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Misses added by the decoupled sectored cache's constrained contents
    /// (zero for the other trainers).
    pub extra_misses: u64,
    /// Patterns resident in the PHT at the end of the run.
    pub pht_len: u64,
}

/// Payload of an `"oracle"` [`ProbeReport`]: one entry per requested region
/// geometry, in spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// L1 oracle misses per region geometry.
    pub l1_misses: Vec<u64>,
    /// Off-chip oracle misses per region geometry.
    pub l2_misses: Vec<u64>,
}

/// An error raised while resolving or building a prefetcher plugin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PluginError {
    /// The spec named a plugin the registry does not know.
    UnknownPlugin {
        /// The unknown name.
        name: String,
        /// The closest registered name, if any is plausibly intended.
        suggestion: Option<String>,
    },
    /// The plugin rejected the spec's parameter tree.
    BadParams {
        /// The plugin that rejected its parameters.
        plugin: String,
        /// What was wrong with them.
        message: String,
    },
}

impl fmt::Display for PluginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PluginError::UnknownPlugin { name, suggestion } => {
                write!(f, "unknown prefetcher plugin {name:?}")?;
                if let Some(suggestion) = suggestion {
                    write!(f, " (did you mean {suggestion:?}?)")?;
                }
                Ok(())
            }
            PluginError::BadParams { plugin, message } => {
                write!(f, "bad parameters for plugin {plugin:?}: {message}")
            }
        }
    }
}

impl std::error::Error for PluginError {}

/// A named factory that builds live prefetchers from JSON parameters.
///
/// Implementations must be deterministic: building twice from the same
/// parameters yields prefetchers with identical behavior (this is what lets
/// the engine ship specs to worker threads and still merge bit-identical
/// results).
pub trait PrefetcherPlugin: Send + Sync {
    /// The stable name specs use to select this plugin.
    fn name(&self) -> &str;

    /// A one-line description for `sms-experiments list`.
    fn description(&self) -> &str {
        ""
    }

    /// Builds a fresh prefetcher for a `num_cpus`-processor system.
    ///
    /// # Errors
    ///
    /// [`PluginError::BadParams`] if `params` does not decode into this
    /// plugin's configuration.
    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError>;
}

/// Decodes a plugin's parameter tree into its typed configuration, mapping
/// failures to [`PluginError::BadParams`].  Exposed for custom plugins.
pub fn decode_params<T: Deserialize>(
    plugin: &str,
    params: &serde_json::Value,
) -> Result<T, PluginError> {
    serde_json::from_value(params).map_err(|e| PluginError::BadParams {
        plugin: plugin.to_string(),
        message: e.to_string(),
    })
}

/// A name→plugin map resolving [`PrefetcherSpec`]s to live prefetchers.
///
/// `BTreeMap` keeps [`Registry::names`] sorted, so listings and suggestion
/// candidates are deterministic.
#[derive(Clone, Default)]
pub struct Registry {
    plugins: BTreeMap<String, Arc<dyn PrefetcherPlugin>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("plugins", &self.names())
            .finish()
    }
}

impl Registry {
    /// An empty registry (tests of the error paths start here).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry with every built-in plugin registered: `null`, `sms`,
    /// `ghb`, `training`, `density-probe` and `oracle-probe`.
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        for plugin in crate::spec::builtin_plugins() {
            registry.register(plugin);
        }
        registry
    }

    /// The shared process-wide registry of built-ins, used by the engine's
    /// convenience entry points ([`run_jobs`](crate::runner::run_jobs),
    /// [`run_jobs_with`](crate::runner::run_jobs_with)).  Custom plugins
    /// cannot be added here; build your own registry with
    /// [`Registry::with_builtins`] + [`Registry::register`] and pass it to
    /// [`run_jobs_in`](crate::runner::run_jobs_in).
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(Registry::with_builtins)
    }

    /// Registers `plugin` under its own name, returning the plugin it
    /// replaced, if any (tests use this to shadow built-ins).
    pub fn register(
        &mut self,
        plugin: Arc<dyn PrefetcherPlugin>,
    ) -> Option<Arc<dyn PrefetcherPlugin>> {
        self.plugins.insert(plugin.name().to_string(), plugin)
    }

    /// Looks up a plugin by name.
    pub fn get(&self, name: &str) -> Option<&dyn PrefetcherPlugin> {
        self.plugins.get(name).map(Arc::as_ref)
    }

    /// The registered plugin names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.plugins.keys().map(String::as_str).collect()
    }

    /// Number of registered plugins.
    pub fn len(&self) -> usize {
        self.plugins.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }

    /// Resolves `spec` and builds its prefetcher for a `num_cpus`-processor
    /// system.
    ///
    /// # Errors
    ///
    /// [`PluginError::UnknownPlugin`] (with a "did you mean" suggestion
    /// when one is close) if the spec names an unregistered plugin, or
    /// whatever the plugin itself raises for bad parameters.
    pub fn build(
        &self,
        spec: &PrefetcherSpec,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let plugin = self
            .get(&spec.plugin)
            .ok_or_else(|| PluginError::UnknownPlugin {
                name: spec.plugin.clone(),
                suggestion: closest_match(&spec.plugin, self.names().into_iter()),
            })?;
        plugin.build(&spec.params, num_cpus)
    }
}

/// The candidate most plausibly intended by a mistyped `name`, if any is
/// close enough (edit distance at most 2, or one is a prefix of the other).
///
/// Shared by the registry's unknown-plugin errors and the experiment CLI's
/// unknown-experiment errors.
pub fn closest_match<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let name_lower = name.to_ascii_lowercase();
    let mut best: Option<(usize, &str)> = None;
    for candidate in candidates {
        let candidate_lower = candidate.to_ascii_lowercase();
        if candidate_lower.starts_with(&name_lower) || name_lower.starts_with(&candidate_lower) {
            return Some(candidate.to_string());
        }
        let distance = edit_distance(&name_lower, &candidate_lower);
        if best.is_none_or(|(d, _)| distance < d) {
            best = Some((distance, candidate));
        }
    }
    match best {
        Some((distance, candidate)) if distance <= 2 => Some(candidate.to_string()),
        _ => None,
    }
}

/// Levenshtein distance between two short strings (single-row DP).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitution = prev_diag + usize::from(ca != cb);
            prev_diag = row[j + 1];
            row[j + 1] = substitution.min(row[j] + 1).min(prev_diag + 1);
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("sms", "sms"), 0);
        assert_eq!(edit_distance("sms", "smss"), 1);
        assert_eq!(edit_distance("ghb", "gbh"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn closest_match_suggests_and_gives_up() {
        let names = ["null", "sms", "ghb", "density-probe"];
        assert_eq!(
            closest_match("smss", names.iter().copied()),
            Some("sms".to_string())
        );
        assert_eq!(
            closest_match("density", names.iter().copied()),
            Some("density-probe".to_string()),
            "prefixes are always suggested"
        );
        assert_eq!(
            closest_match("GHB", names.iter().copied()),
            Some("ghb".to_string()),
            "matching is case-insensitive"
        );
        assert_eq!(closest_match("zzzzzzzz", names.iter().copied()), None);
    }

    #[test]
    fn probe_report_round_trips_payloads() {
        let report = ProbeReport::new(
            "training",
            &TrainingReport {
                extra_misses: 7,
                pht_len: 42,
            },
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: ProbeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let payload = back.training().expect("training payload");
        assert_eq!(payload.extra_misses, 7);
        assert_eq!(payload.pht_len, 42);
        assert!(back.density().is_none(), "kind mismatch must yield None");
        assert_eq!(ProbeReport::none().kind, "none");
    }
}
