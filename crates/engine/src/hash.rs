//! Canonical hashing of job specs: the content-addressed result-cache key.
//!
//! Engine jobs are deterministic — a [`JobList`] plus the engine-relevant
//! execution parameters fully determines every byte of the results — so a
//! canonical hash of that pair *is* the identity of the result set.  The job
//! server (`crates/server`) uses [`spec_fingerprint`] as its cache key;
//! anything that cannot change the results is deliberately excluded:
//!
//! * `workers` — thread count is a scheduling choice; results are
//!   bit-identical across worker counts by construction;
//! * the spec's `version` and `name` fields — the version is normalized on
//!   load and the name is a client-facing label;
//! * JSON presentation — object key order and whitespace are erased by
//!   [`canonical_json`], so a reordered or reformatted spec file hashes
//!   identically.
//!
//! `segment_size` and `speculate` are **included** even though they, too,
//! preserve results by construction: they select different execution code
//! paths, and a cache keyed on them stays trustworthy even while one of
//! those paths is being debugged.  Two submissions differing only in
//! workers share a cache line; differing in any job field, segment size or
//! speculation depth do not.

use crate::runner::{EngineConfig, JobList, SimJob};
use serde::Serialize;
use serde_json::Value;

/// Renders a JSON value canonically: object keys sorted (recursively),
/// compact separators, no insignificant whitespace.
///
/// Two values that differ only in object key order or formatting render to
/// the same string.  Array order is semantic and preserved.
pub fn canonical_json(value: &Value) -> String {
    serde_json::to_string(&sort_keys(value)).expect("compact JSON rendering is infallible")
}

/// Recursively sorts every object's entries by key; arrays keep their order.
fn sort_keys(value: &Value) -> Value {
    match value {
        Value::Object(entries) => {
            let mut sorted: Vec<(String, Value)> = entries
                .iter()
                .map(|(key, v)| (key.clone(), sort_keys(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        Value::Array(items) => Value::Array(items.iter().map(sort_keys).collect()),
        other => other.clone(),
    }
}

/// 64-bit FNV-1a over a byte string: small, dependency-free, and stable
/// across platforms and releases (the constants are fixed by the algorithm,
/// not by this build).  Public because it doubles as the workspace's
/// content checksum (the server's persistent cache files carry it).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The content-addressed identity of a job submission: a 16-hex-digit
/// fingerprint of the canonical JSON of the jobs plus the engine-relevant
/// execution parameters (`segment_size`, `speculate` — never `workers`, see
/// the module docs for the rationale).
///
/// Equal fingerprints ⇒ byte-identical results, because jobs are
/// deterministic and the canonicalization erases only non-semantic JSON
/// presentation.
pub fn spec_fingerprint(jobs: &[SimJob], config: &EngineConfig) -> String {
    let keyed = Value::Object(vec![
        ("jobs".to_string(), jobs.to_value()),
        (
            "segment_size".to_string(),
            match config.segment_size {
                Some(size) => Value::UInt(size as u64),
                None => Value::Null,
            },
        ),
        (
            "speculate".to_string(),
            Value::UInt(config.speculate as u64),
        ),
    ]);
    format!("{:016x}", fnv1a_64(canonical_json(&keyed).as_bytes()))
}

/// [`spec_fingerprint`] for a whole spec file: hashes the list's jobs,
/// ignoring its `version` and `name` fields (both presentation, neither
/// affects execution).
pub fn list_fingerprint(list: &JobList, config: &EngineConfig) -> String {
    spec_fingerprint(&list.jobs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PrefetcherSpec;
    use memsim::HierarchyConfig;
    use trace::{Application, GeneratorConfig};

    fn jobs() -> Vec<SimJob> {
        vec![SimJob::new(memsim::SimJob::synthetic(
            Application::OltpDb2,
            GeneratorConfig::default().with_cpus(2),
            2006,
            2,
            HierarchyConfig::scaled(),
            PrefetcherSpec::sms_paper_default(),
            8_000,
        ))]
    }

    #[test]
    fn canonical_json_sorts_keys_recursively_and_drops_whitespace() {
        let a: Value = serde_json::from_str(r#"{"b": {"y": 2, "x": [1, 2]}, "a": 1}"#).unwrap();
        let b: Value = serde_json::from_str("{\"a\":1,\n  \"b\":{\"x\":[1,2],\"y\":2}}").unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_json(&a), r#"{"a":1,"b":{"x":[1,2],"y":2}}"#);
        // Array order is semantic, not presentation.
        let c: Value = serde_json::from_str(r#"{"a":1,"b":{"x":[2,1],"y":2}}"#).unwrap();
        assert_ne!(canonical_json(&a), canonical_json(&c));
    }

    #[test]
    fn fingerprint_is_stable_under_spec_reordering_and_reformatting() {
        let config = EngineConfig::with_workers(3);
        let baseline = spec_fingerprint(&jobs(), &config);

        // Round-trip the jobs through differently-presented JSON: pretty
        // whitespace and reversed object key order must not change the key.
        let value = jobs().to_value();
        let pretty = serde_json::to_string_pretty(&value).unwrap();
        let reordered = reverse_keys(&serde_json::from_str::<Value>(&pretty).unwrap());
        let reloaded: Vec<SimJob> = serde::Deserialize::from_value(&reordered).unwrap();
        assert_eq!(spec_fingerprint(&reloaded, &config), baseline);

        // Worker count is a scheduling choice, not an identity.
        assert_eq!(spec_fingerprint(&jobs(), &EngineConfig::serial()), baseline);
        assert_eq!(
            spec_fingerprint(&jobs(), &EngineConfig::with_workers(16)),
            baseline
        );

        // The list wrapper's version/name labels are not identity either.
        let named = JobList::new(jobs()).with_name("fig05 rerun");
        assert_eq!(list_fingerprint(&named, &config), baseline);
    }

    #[test]
    fn fingerprint_changes_with_every_engine_relevant_field() {
        let config = EngineConfig::with_workers(2);
        let baseline = spec_fingerprint(&jobs(), &config);

        // A prefetcher parameter change.
        let mut tweaked = jobs();
        tweaked[0].sim.prefetcher = PrefetcherSpec::null();
        assert_ne!(spec_fingerprint(&tweaked, &config), baseline);

        // An access-budget change.
        let mut tweaked = jobs();
        tweaked[0].sim.accesses += 1;
        assert_ne!(spec_fingerprint(&tweaked, &config), baseline);

        // Execution-strategy parameters that select different code paths.
        assert_ne!(
            spec_fingerprint(&jobs(), &config.with_segment_size(10_000)),
            baseline
        );
        assert_ne!(
            spec_fingerprint(&jobs(), &config.with_speculation(4)),
            baseline
        );
        assert_ne!(
            spec_fingerprint(&jobs(), &config.with_segment_size(10_000)),
            spec_fingerprint(&jobs(), &config.with_segment_size(20_000)),
        );
    }

    /// Recursively reverses every object's key order (keeping arrays).
    fn reverse_keys(value: &Value) -> Value {
        match value {
            Value::Object(entries) => Value::Object(
                entries
                    .iter()
                    .rev()
                    .map(|(k, v)| (k.clone(), reverse_keys(v)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(reverse_keys).collect()),
            other => other.clone(),
        }
    }
}
