//! Serializable prefetcher specifications and the built-in plugins that
//! realize them.
//!
//! A [`PrefetcherSpec`] is plain data: the stable name of a registered
//! [`PrefetcherPlugin`](crate::plugin::PrefetcherPlugin) plus a
//! plugin-specific JSON parameter tree.  Jobs carry specs rather than live
//! prefetchers so they can be shipped to any worker thread (and to and from
//! job files on disk); the engine resolves the spec through a
//! [`Registry`](crate::plugin::Registry) on the executing thread and, after
//! the run, extracts a [`ProbeReport`](crate::plugin::ProbeReport) from the
//! built prefetcher.
//!
//! This module also houses the six built-in plugins the registry ships
//! with — `null`, `sms`, `ghb`, `training`, `density-probe` and
//! `oracle-probe` — and typed constructors for their specs.

use crate::plugin::{
    decode_params, BuiltPrefetcher, DensityReport, OracleReport, PluginError, PrefetcherPlugin,
    Probe, ProbeReport, TrainingReport,
};
use ghb::{GhbConfig, GhbPrefetcher};
use memsim::{NullPrefetcher, PrefetchRequest, Prefetcher, SystemOutcome};
use serde::{Deserialize, Serialize};
use sms::{
    DensityObserver, IndexScheme, OracleObserver, PhtCapacity, RegionConfig, SmsConfig,
    SmsPrefetcher, TrainerKind, TrainingPrefetcher,
};
use std::sync::Arc;
use trace::MemAccess;

/// A serializable description of the prefetcher (or passive probe) attached
/// to a simulation job: a registered plugin name plus that plugin's
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefetcherSpec {
    /// Stable name of the plugin that builds this prefetcher.
    pub plugin: String,
    /// Plugin-specific configuration.
    pub params: serde_json::Value,
}

impl PrefetcherSpec {
    /// A spec for an arbitrary (possibly custom) plugin with serialized
    /// parameters.
    pub fn custom<T: Serialize + ?Sized>(plugin: &str, params: &T) -> Self {
        Self {
            plugin: plugin.to_string(),
            params: serde_json::to_value(params).expect("value-tree serialization cannot fail"),
        }
    }

    /// No prefetching (baseline runs).
    pub fn null() -> Self {
        Self {
            plugin: "null".to_string(),
            params: serde_json::Value::Null,
        }
    }

    /// Spatial Memory Streaming with the given configuration.
    pub fn sms(config: &SmsConfig) -> Self {
        Self::custom("sms", config)
    }

    /// The practical SMS configuration evaluated in Figure 11.
    pub fn sms_paper_default() -> Self {
        Self::sms(&SmsConfig::paper_default())
    }

    /// The GHB PC/DC baseline prefetcher.
    pub fn ghb(config: &GhbConfig) -> Self {
        Self::custom("ghb", config)
    }

    /// An alternative training structure feeding the SMS PHT.
    pub fn training(spec: &TrainingSpec) -> Self {
        Self::custom("training", spec)
    }

    /// Passive access-density measurement (Figure 5).
    pub fn density_probe(region: &RegionConfig) -> Self {
        Self::custom("density-probe", region)
    }

    /// Passive oracle-opportunity measurement at several region sizes
    /// (Figure 4).
    pub fn oracle_probe(spec: &OracleProbeSpec) -> Self {
        Self::custom("oracle-probe", spec)
    }
}

/// Configuration of a [`TrainingPrefetcher`] (Figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSpec {
    /// Training structure (AGT, logical sectored, decoupled sectored).
    pub trainer: TrainerKind,
    /// Spatial region geometry.
    pub region: RegionConfig,
    /// Prediction-index scheme.
    pub index_scheme: IndexScheme,
    /// Pattern history table bound.
    pub pht: PhtCapacity,
    /// Capacity of the L1 the sectored tag arrays shadow.
    pub l1_capacity_bytes: u64,
}

/// Configuration of a bank of [`OracleObserver`]s measured in one run
/// (Figure 4 measures every region size against a single 64 B baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleProbeSpec {
    /// One oracle per region geometry, reported in this order.
    pub regions: Vec<RegionConfig>,
    /// Track read accesses only (the paper reports read miss rates).
    pub read_only: bool,
}

/// A bank of independent [`OracleObserver`]s fed by one baseline run, so a
/// single simulation yields the opportunity curve for every region size.
#[derive(Debug)]
pub struct MultiOracle {
    /// One oracle per requested region geometry, in spec order.
    pub oracles: Vec<OracleObserver>,
}

impl Prefetcher for MultiOracle {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        self.on_access_into(access, outcome, &mut Vec::new());
        Vec::new()
    }

    fn on_access_into(
        &mut self,
        access: &MemAccess,
        outcome: &SystemOutcome,
        _out: &mut Vec<PrefetchRequest>,
    ) {
        for oracle in &mut self.oracles {
            let _ = oracle.on_access(access, outcome);
        }
    }

    fn name(&self) -> &str {
        "multi-oracle"
    }
}

// ---------------------------------------------------------------------------
// Probe implementations for the built-in prefetchers
// ---------------------------------------------------------------------------

impl Probe for NullPrefetcher {
    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(self.clone()))
    }
}

impl Probe for GhbPrefetcher {
    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(self.clone()))
    }
}

impl Probe for SmsPrefetcher {
    fn into_report(self: Box<Self>) -> ProbeReport {
        ProbeReport::new("sms", &self.total_stats())
    }

    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(self.clone()))
    }
}

// `TrainingPrefetcher` keeps no `fork`: its sectored tag arrays are not
// cheaply cloneable, so speculative fault injection skips training jobs
// (clean-path speculation still applies — it needs no snapshots).
impl Probe for TrainingPrefetcher {
    fn into_report(self: Box<Self>) -> ProbeReport {
        ProbeReport::new(
            "training",
            &TrainingReport {
                extra_misses: self.extra_misses(),
                pht_len: self.pht_len() as u64,
            },
        )
    }
}

impl Probe for DensityObserver {
    fn into_report(self: Box<Self>) -> ProbeReport {
        let (l1, l2) = (*self).finish();
        ProbeReport::new("density", &DensityReport { l1, l2 })
    }

    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(self.clone()))
    }
}

impl Probe for MultiOracle {
    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(MultiOracle {
            oracles: self.oracles.clone(),
        }))
    }

    fn into_report(self: Box<Self>) -> ProbeReport {
        ProbeReport::new(
            "oracle",
            &OracleReport {
                l1_misses: self
                    .oracles
                    .iter()
                    .map(|o| o.l1().oracle_misses())
                    .collect(),
                l2_misses: self
                    .oracles
                    .iter()
                    .map(|o| o.l2().oracle_misses())
                    .collect(),
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Built-in plugins
// ---------------------------------------------------------------------------

struct NullPlugin;

impl PrefetcherPlugin for NullPlugin {
    fn name(&self) -> &str {
        "null"
    }

    fn description(&self) -> &str {
        "no prefetching (baseline runs); parameters ignored"
    }

    fn build(
        &self,
        _params: &serde_json::Value,
        _num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        Ok(BuiltPrefetcher::new(NullPrefetcher::new()))
    }
}

struct SmsPlugin;

impl PrefetcherPlugin for SmsPlugin {
    fn name(&self) -> &str {
        "sms"
    }

    fn description(&self) -> &str {
        "Spatial Memory Streaming (params: SmsConfig)"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let config: SmsConfig = decode_params(self.name(), params)?;
        Ok(BuiltPrefetcher::new(SmsPrefetcher::new(num_cpus, &config)))
    }
}

struct GhbPlugin;

impl PrefetcherPlugin for GhbPlugin {
    fn name(&self) -> &str {
        "ghb"
    }

    fn description(&self) -> &str {
        "GHB PC/DC delta-correlation prefetcher (params: GhbConfig)"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let config: GhbConfig = decode_params(self.name(), params)?;
        Ok(BuiltPrefetcher::new(GhbPrefetcher::new(num_cpus, &config)))
    }
}

struct TrainingPlugin;

impl PrefetcherPlugin for TrainingPlugin {
    fn name(&self) -> &str {
        "training"
    }

    fn description(&self) -> &str {
        "SMS with an alternative training structure (params: TrainingSpec)"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let spec: TrainingSpec = decode_params(self.name(), params)?;
        Ok(BuiltPrefetcher::new(TrainingPrefetcher::new(
            num_cpus,
            spec.trainer,
            spec.region,
            spec.index_scheme,
            spec.pht,
            spec.l1_capacity_bytes,
        )))
    }
}

struct DensityProbePlugin;

impl PrefetcherPlugin for DensityProbePlugin {
    fn name(&self) -> &str {
        "density-probe"
    }

    fn description(&self) -> &str {
        "passive access-density measurement (params: RegionConfig)"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let region: RegionConfig = decode_params(self.name(), params)?;
        Ok(BuiltPrefetcher::new(DensityObserver::new(num_cpus, region)))
    }
}

struct OracleProbePlugin;

impl PrefetcherPlugin for OracleProbePlugin {
    fn name(&self) -> &str {
        "oracle-probe"
    }

    fn description(&self) -> &str {
        "passive oracle-opportunity measurement (params: OracleProbeSpec)"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let spec: OracleProbeSpec = decode_params(self.name(), params)?;
        Ok(BuiltPrefetcher::new(MultiOracle {
            oracles: spec
                .regions
                .iter()
                .map(|&region| OracleObserver::new(num_cpus, region, spec.read_only))
                .collect(),
        }))
    }
}

/// The plugins every registry built with
/// [`Registry::with_builtins`](crate::plugin::Registry::with_builtins)
/// starts from.
pub(crate) fn builtin_plugins() -> Vec<Arc<dyn PrefetcherPlugin>> {
    vec![
        Arc::new(NullPlugin),
        Arc::new(SmsPlugin),
        Arc::new(GhbPlugin),
        Arc::new(TrainingPlugin),
        Arc::new(DensityProbePlugin),
        Arc::new(OracleProbePlugin),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plugin::Registry;

    fn example_training_spec() -> TrainingSpec {
        TrainingSpec {
            trainer: TrainerKind::LogicalSectored,
            region: RegionConfig::paper_default(),
            index_scheme: IndexScheme::PcOffset,
            pht: PhtCapacity::paper_default(),
            l1_capacity_bytes: 64 * 1024,
        }
    }

    /// One example spec per built-in plugin, with the prefetcher name each
    /// must build into.
    fn example_specs() -> Vec<(PrefetcherSpec, &'static str)> {
        vec![
            (PrefetcherSpec::null(), "baseline"),
            (PrefetcherSpec::sms_paper_default(), "sms"),
            (PrefetcherSpec::ghb(&GhbConfig::paper_small()), "ghb-pc/dc"),
            (PrefetcherSpec::training(&example_training_spec()), "LS"),
            (
                PrefetcherSpec::density_probe(&RegionConfig::paper_default()),
                "density-observer",
            ),
            (
                PrefetcherSpec::oracle_probe(&OracleProbeSpec {
                    regions: vec![RegionConfig::paper_default()],
                    read_only: true,
                }),
                "multi-oracle",
            ),
        ]
    }

    #[test]
    fn specs_build_their_prefetchers() {
        let registry = Registry::builtin();
        for (spec, name) in example_specs() {
            let built = registry.build(&spec, 2).expect("built-in spec");
            assert_eq!(built.name(), name, "{spec:?}");
        }
    }

    #[test]
    fn every_builtin_spec_round_trips_through_json_and_rebuilds() {
        // The table covers the whole registry: every registered plugin must
        // have an example spec here, and every example must survive
        // serialize → deserialize → build.
        let registry = Registry::builtin();
        let examples = example_specs();
        let covered: Vec<&str> = examples.iter().map(|(s, _)| s.plugin.as_str()).collect();
        for name in registry.names() {
            assert!(
                covered.contains(&name),
                "built-in plugin {name:?} has no round-trip example"
            );
        }
        for (spec, prefetcher_name) in examples {
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: PrefetcherSpec = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(spec, back, "spec must round-trip bit-identically");
            let built = registry.build(&back, 2).expect("rebuilt from round-trip");
            assert_eq!(built.name(), prefetcher_name);
        }
    }

    #[test]
    fn unknown_plugin_names_error_with_a_suggestion() {
        let registry = Registry::builtin();
        let spec = PrefetcherSpec {
            plugin: "smss".to_string(),
            params: serde_json::Value::Null,
        };
        let err = registry.build(&spec, 1).expect_err("unknown plugin");
        match &err {
            PluginError::UnknownPlugin { name, suggestion } => {
                assert_eq!(name, "smss");
                assert_eq!(suggestion.as_deref(), Some("sms"));
            }
            other => panic!("expected UnknownPlugin, got {other:?}"),
        }
        assert!(err.to_string().contains("did you mean"), "{err}");
    }

    #[test]
    fn bad_params_error_names_the_plugin() {
        let registry = Registry::builtin();
        let spec = PrefetcherSpec {
            plugin: "sms".to_string(),
            params: serde_json::Value::String("not a config".to_string()),
        };
        let err = registry.build(&spec, 1).expect_err("bad params");
        assert!(matches!(&err, PluginError::BadParams { plugin, .. } if plugin == "sms"));
    }

    #[test]
    fn training_prefetcher_reports_post_run_state() {
        let spec = PrefetcherSpec::training(&TrainingSpec {
            trainer: TrainerKind::Agt,
            region: RegionConfig::paper_default(),
            index_scheme: IndexScheme::PcOffset,
            pht: PhtCapacity::Unbounded,
            l1_capacity_bytes: 64 * 1024,
        });
        let built = Registry::builtin().build(&spec, 1).expect("training spec");
        let report = built.into_report();
        let training = report.training().expect("training report");
        assert_eq!((training.extra_misses, training.pht_len), (0, 0));
    }

    #[test]
    fn custom_plugins_extend_the_registry() {
        /// A trivial next-line prefetcher living entirely outside the
        /// engine: the open API in one screen of code.
        #[derive(Debug)]
        struct NextLine {
            issued: u64,
        }
        impl Prefetcher for NextLine {
            fn on_access(
                &mut self,
                access: &MemAccess,
                outcome: &SystemOutcome,
            ) -> Vec<PrefetchRequest> {
                if outcome.hierarchy.l1_miss() {
                    self.issued += 1;
                    vec![PrefetchRequest {
                        cpu: access.cpu,
                        addr: access.addr + 64,
                        level: memsim::PrefetchLevel::L1,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &str {
                "next-line"
            }
        }
        impl Probe for NextLine {
            fn into_report(self: Box<Self>) -> ProbeReport {
                ProbeReport::new("next-line", &self.issued)
            }
        }
        struct NextLinePlugin;
        impl PrefetcherPlugin for NextLinePlugin {
            fn name(&self) -> &str {
                "next-line"
            }
            fn build(
                &self,
                _params: &serde_json::Value,
                _num_cpus: usize,
            ) -> Result<BuiltPrefetcher, PluginError> {
                Ok(BuiltPrefetcher::new(NextLine { issued: 0 }))
            }
        }

        let mut registry = Registry::with_builtins();
        assert!(registry.get("next-line").is_none());
        registry.register(Arc::new(NextLinePlugin));
        let spec = PrefetcherSpec::custom("next-line", &serde_json::Value::Null);
        let built = registry.build(&spec, 1).expect("custom plugin");
        assert_eq!(built.name(), "next-line");
        assert_eq!(built.into_report().decode::<u64>("next-line"), Some(0));
    }
}
