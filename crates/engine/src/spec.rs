//! Serializable prefetcher specifications and the prefetchers built from
//! them.
//!
//! A [`PrefetcherSpec`] names everything the evaluation attaches to the
//! simulated memory system — the SMS and GHB prefetchers, the alternative
//! training structures, and the passive measurement probes (density and
//! oracle observers) — as plain data.  Jobs carry specs rather than live
//! prefetchers so they can be shipped to any worker thread; the engine calls
//! [`PrefetcherFactory::build`] on the executing thread and, after the run,
//! extracts a [`ProbeReport`] of whatever post-run state the spec's
//! prefetcher exposes.

use ghb::{GhbConfig, GhbPrefetcher};
use memsim::{NullPrefetcher, PrefetchRequest, Prefetcher, PrefetcherFactory, SystemOutcome};
use serde::{Deserialize, Serialize};
use sms::{
    DensityHistogram, DensityObserver, IndexScheme, OracleObserver, PhtCapacity, PredictorStats,
    RegionConfig, SmsConfig, SmsPrefetcher, TrainerKind, TrainingPrefetcher,
};
use trace::MemAccess;

/// Configuration of a [`TrainingPrefetcher`] (Figures 8 and 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSpec {
    /// Training structure (AGT, logical sectored, decoupled sectored).
    pub trainer: TrainerKind,
    /// Spatial region geometry.
    pub region: RegionConfig,
    /// Prediction-index scheme.
    pub index_scheme: IndexScheme,
    /// Pattern history table bound.
    pub pht: PhtCapacity,
    /// Capacity of the L1 the sectored tag arrays shadow.
    pub l1_capacity_bytes: u64,
}

/// Configuration of a bank of [`OracleObserver`]s measured in one run
/// (Figure 4 measures every region size against a single 64 B baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleProbeSpec {
    /// One oracle per region geometry, reported in this order.
    pub regions: Vec<RegionConfig>,
    /// Track read accesses only (the paper reports read miss rates).
    pub read_only: bool,
}

/// A serializable description of the prefetcher (or passive probe) attached
/// to a simulation job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PrefetcherSpec {
    /// No prefetching (baseline runs).
    Null,
    /// Spatial Memory Streaming with the given configuration.
    Sms(SmsConfig),
    /// The GHB PC/DC baseline prefetcher.
    Ghb(GhbConfig),
    /// An alternative training structure feeding the SMS PHT.
    Training(TrainingSpec),
    /// Passive access-density measurement (Figure 5).
    DensityProbe(RegionConfig),
    /// Passive oracle-opportunity measurement at several region sizes
    /// (Figure 4).
    OracleProbe(OracleProbeSpec),
}

impl PrefetcherSpec {
    /// The practical SMS configuration evaluated in Figure 11.
    pub fn sms_paper_default() -> Self {
        PrefetcherSpec::Sms(SmsConfig::paper_default())
    }
}

/// A bank of independent [`OracleObserver`]s fed by one baseline run, so a
/// single simulation yields the opportunity curve for every region size.
#[derive(Debug)]
pub struct MultiOracle {
    /// One oracle per requested region geometry, in spec order.
    pub oracles: Vec<OracleObserver>,
}

impl Prefetcher for MultiOracle {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        for oracle in &mut self.oracles {
            let _ = oracle.on_access(access, outcome);
        }
        Vec::new()
    }

    fn name(&self) -> &str {
        "multi-oracle"
    }
}

/// A live prefetcher instantiated from a [`PrefetcherSpec`].
#[derive(Debug)]
pub enum BuiltPrefetcher {
    /// Built from [`PrefetcherSpec::Null`].
    Null(NullPrefetcher),
    /// Built from [`PrefetcherSpec::Sms`].
    Sms(SmsPrefetcher),
    /// Built from [`PrefetcherSpec::Ghb`].
    Ghb(GhbPrefetcher),
    /// Built from [`PrefetcherSpec::Training`].
    Training(Box<TrainingPrefetcher>),
    /// Built from [`PrefetcherSpec::DensityProbe`].
    Density(DensityObserver),
    /// Built from [`PrefetcherSpec::OracleProbe`].
    Oracle(MultiOracle),
}

impl BuiltPrefetcher {
    /// Extracts the post-run measurement state this prefetcher exposes.
    pub fn into_report(self) -> ProbeReport {
        match self {
            BuiltPrefetcher::Null(_) | BuiltPrefetcher::Ghb(_) => ProbeReport::None,
            BuiltPrefetcher::Sms(sms) => ProbeReport::Sms(sms.total_stats()),
            BuiltPrefetcher::Training(t) => ProbeReport::Training {
                extra_misses: t.extra_misses(),
                pht_len: t.pht_len() as u64,
            },
            BuiltPrefetcher::Density(obs) => {
                let (l1, l2) = obs.finish();
                ProbeReport::Density { l1, l2 }
            }
            BuiltPrefetcher::Oracle(multi) => ProbeReport::Oracle {
                l1_misses: multi
                    .oracles
                    .iter()
                    .map(|o| o.l1().oracle_misses())
                    .collect(),
                l2_misses: multi
                    .oracles
                    .iter()
                    .map(|o| o.l2().oracle_misses())
                    .collect(),
            },
        }
    }
}

impl Prefetcher for BuiltPrefetcher {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        match self {
            BuiltPrefetcher::Null(p) => p.on_access(access, outcome),
            BuiltPrefetcher::Sms(p) => p.on_access(access, outcome),
            BuiltPrefetcher::Ghb(p) => p.on_access(access, outcome),
            BuiltPrefetcher::Training(p) => p.on_access(access, outcome),
            BuiltPrefetcher::Density(p) => p.on_access(access, outcome),
            BuiltPrefetcher::Oracle(p) => p.on_access(access, outcome),
        }
    }

    fn on_stream_eviction(&mut self, cpu: u8, block_addr: u64) {
        match self {
            BuiltPrefetcher::Null(p) => p.on_stream_eviction(cpu, block_addr),
            BuiltPrefetcher::Sms(p) => p.on_stream_eviction(cpu, block_addr),
            BuiltPrefetcher::Ghb(p) => p.on_stream_eviction(cpu, block_addr),
            BuiltPrefetcher::Training(p) => p.on_stream_eviction(cpu, block_addr),
            BuiltPrefetcher::Density(p) => p.on_stream_eviction(cpu, block_addr),
            BuiltPrefetcher::Oracle(p) => p.on_stream_eviction(cpu, block_addr),
        }
    }

    fn name(&self) -> &str {
        match self {
            BuiltPrefetcher::Null(p) => p.name(),
            BuiltPrefetcher::Sms(p) => p.name(),
            BuiltPrefetcher::Ghb(p) => p.name(),
            BuiltPrefetcher::Training(p) => p.name(),
            BuiltPrefetcher::Density(p) => p.name(),
            BuiltPrefetcher::Oracle(p) => p.name(),
        }
    }
}

impl PrefetcherFactory for PrefetcherSpec {
    type Output = BuiltPrefetcher;

    fn build(&self, num_cpus: usize) -> BuiltPrefetcher {
        match self {
            PrefetcherSpec::Null => BuiltPrefetcher::Null(NullPrefetcher::new()),
            PrefetcherSpec::Sms(config) => {
                BuiltPrefetcher::Sms(SmsPrefetcher::new(num_cpus, config))
            }
            PrefetcherSpec::Ghb(config) => {
                BuiltPrefetcher::Ghb(GhbPrefetcher::new(num_cpus, config))
            }
            PrefetcherSpec::Training(spec) => {
                BuiltPrefetcher::Training(Box::new(TrainingPrefetcher::new(
                    num_cpus,
                    spec.trainer,
                    spec.region,
                    spec.index_scheme,
                    spec.pht,
                    spec.l1_capacity_bytes,
                )))
            }
            PrefetcherSpec::DensityProbe(region) => {
                BuiltPrefetcher::Density(DensityObserver::new(num_cpus, *region))
            }
            PrefetcherSpec::OracleProbe(spec) => BuiltPrefetcher::Oracle(MultiOracle {
                oracles: spec
                    .regions
                    .iter()
                    .map(|&region| OracleObserver::new(num_cpus, region, spec.read_only))
                    .collect(),
            }),
        }
    }
}

/// Post-run state extracted from a built prefetcher, in spec-specific form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbeReport {
    /// The spec exposes no post-run state (null and GHB prefetchers — the
    /// GHB's issued-prefetch count is already in the run summary).
    None,
    /// Summed per-processor SMS predictor counters.
    Sms(PredictorStats),
    /// Extra-miss and PHT-population counters of a training structure.
    Training {
        /// Misses added by the decoupled sectored cache's constrained
        /// contents (zero for the other trainers).
        extra_misses: u64,
        /// Patterns resident in the PHT at the end of the run.
        pht_len: u64,
    },
    /// Density histograms from a [`PrefetcherSpec::DensityProbe`] run.
    Density {
        /// L1 read-miss density histogram.
        l1: DensityHistogram,
        /// Off-chip read-miss density histogram.
        l2: DensityHistogram,
    },
    /// Oracle misses from a [`PrefetcherSpec::OracleProbe`] run, one entry
    /// per requested region geometry, in spec order.
    Oracle {
        /// L1 oracle misses per region geometry.
        l1_misses: Vec<u64>,
        /// Off-chip oracle misses per region geometry.
        l2_misses: Vec<u64>,
    },
}

impl ProbeReport {
    /// The density histograms, if this report came from a density probe.
    pub fn density(&self) -> Option<(&DensityHistogram, &DensityHistogram)> {
        match self {
            ProbeReport::Density { l1, l2 } => Some((l1, l2)),
            _ => None,
        }
    }

    /// The training counters, if this report came from a training run.
    pub fn training(&self) -> Option<(u64, u64)> {
        match self {
            ProbeReport::Training {
                extra_misses,
                pht_len,
            } => Some((*extra_misses, *pht_len)),
            _ => None,
        }
    }

    /// The per-region oracle misses, if this report came from an oracle
    /// probe.
    pub fn oracle(&self) -> Option<(&[u64], &[u64])> {
        match self {
            ProbeReport::Oracle {
                l1_misses,
                l2_misses,
            } => Some((l1_misses, l2_misses)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_their_prefetchers() {
        let cases = [
            (PrefetcherSpec::Null, "baseline"),
            (PrefetcherSpec::sms_paper_default(), "sms"),
            (PrefetcherSpec::Ghb(GhbConfig::paper_small()), "ghb-pc/dc"),
            (
                PrefetcherSpec::DensityProbe(RegionConfig::paper_default()),
                "density-observer",
            ),
            (
                PrefetcherSpec::OracleProbe(OracleProbeSpec {
                    regions: vec![RegionConfig::paper_default()],
                    read_only: true,
                }),
                "multi-oracle",
            ),
        ];
        for (spec, name) in cases {
            let built = spec.build(2);
            assert_eq!(built.name(), name, "{spec:?}");
        }
        let training = PrefetcherSpec::Training(TrainingSpec {
            trainer: TrainerKind::Agt,
            region: RegionConfig::paper_default(),
            index_scheme: IndexScheme::PcOffset,
            pht: PhtCapacity::Unbounded,
            l1_capacity_bytes: 64 * 1024,
        });
        let built = training.build(1);
        assert!(matches!(built, BuiltPrefetcher::Training(_)));
        assert_eq!(built.into_report().training(), Some((0, 0)));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = PrefetcherSpec::Training(TrainingSpec {
            trainer: TrainerKind::LogicalSectored,
            region: RegionConfig::paper_default(),
            index_scheme: IndexScheme::PcOffset,
            pht: PhtCapacity::paper_default(),
            l1_capacity_bytes: 64 * 1024,
        });
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: PrefetcherSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
    }
}
