//! The unified parallel simulation engine behind every figure of the SMS
//! reproduction — now a general simulation service with an **open plugin
//! API**.
//!
//! Every experiment in the evaluation is some number of independent
//! trace→cache→prefetcher simulations.  This crate turns each of those runs
//! into a declarative, fully serializable [`SimJob`] — a
//! [`trace::TraceSource`] (synthetic generator or streamed trace file),
//! system configuration, a registry-resolved [`PrefetcherSpec`], access
//! budget, and an optional timing-model evaluation — and executes whole job
//! lists with [`run_jobs`]:
//!
//! * prefetchers and probes are **plugins**: a [`PrefetcherSpec`] is just a
//!   stable plugin name plus a JSON parameter tree, resolved through a
//!   [`Registry`] that ships with the built-ins (`null`, `sms`, `ghb`,
//!   `training`, `density-probe`, `oracle-probe`) and accepts custom
//!   [`PrefetcherPlugin`]s from experiments and tests;
//! * jobs are sharded across worker threads (`std::thread::scope` with an
//!   atomic work-stealing cursor; worker count from [`EngineConfig`],
//!   defaulting to the available hardware parallelism);
//! * every job builds its own access stream and prefetcher from the job
//!   description on the executing thread, so parallel results are
//!   **bit-identical** to the serial path;
//! * results are merged deterministically back into submission order, each
//!   carrying the run's [`memsim::RunSummary`], an open serializable
//!   [`ProbeReport`] (`{kind, data}` — density histograms, oracle misses,
//!   predictor counters), and the [`timing::TimingResult`] for timing jobs;
//! * whole job lists round-trip through JSON spec files ([`JobList`]), which
//!   is what `sms-experiments run --spec jobs.json` executes and every
//!   figure's `--emit-spec` writes.
//!
//! # Example
//!
//! ```
//! use engine::{run_jobs_with, EngineConfig, PrefetcherSpec, SimJob};
//! use memsim::HierarchyConfig;
//! use trace::{Application, GeneratorConfig};
//!
//! let jobs: Vec<SimJob> = [PrefetcherSpec::null(), PrefetcherSpec::sms_paper_default()]
//!     .into_iter()
//!     .map(|prefetcher| {
//!         SimJob::new(memsim::SimJob::synthetic(
//!             Application::OltpDb2,
//!             GeneratorConfig::default().with_cpus(2),
//!             2006,
//!             2,
//!             HierarchyConfig::scaled(),
//!             prefetcher,
//!             10_000,
//!         ))
//!     })
//!     .collect();
//! let results = run_jobs_with(&jobs, &EngineConfig::with_workers(2));
//! assert_eq!(results.len(), 2);
//! // SMS must not increase the baseline's L1 read misses.
//! assert!(results[1].summary.l1.read_misses <= results[0].summary.l1.read_misses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
pub mod plugin;
pub mod runner;
pub mod segment;
pub mod spec;
pub mod speculate;
pub mod telemetry;

pub use hash::{canonical_json, fnv1a_64, list_fingerprint, spec_fingerprint};
pub use plugin::{
    closest_match, decode_params, BuiltPrefetcher, DensityReport, KindSink, OracleReport,
    PluginError, PrefetcherPlugin, Probe, ProbeReport, Registry, TrainingReport,
};
pub use runner::{
    run_job, run_job_metered, run_jobs, run_jobs_in, run_jobs_metered, run_jobs_observed,
    run_jobs_streamed, run_jobs_streamed_observed, run_jobs_with, CancelToken, EngineConfig,
    EngineError, JobList, JobResult, JobWarning, SimJob, SpecError, TimingSpec,
};
pub use segment::{run_job_segmented, run_job_segmented_observed, SegmentPlan};
pub use spec::{MultiOracle, OracleProbeSpec, PrefetcherSpec, TrainingSpec};
pub use telemetry::{EngineMetrics, JobMetrics, WorkerMetrics};
