//! The unified parallel simulation engine behind every figure of the SMS
//! reproduction.
//!
//! Every experiment in the evaluation is some number of independent
//! trace→cache→prefetcher simulations.  This crate turns each of those runs
//! into a declarative [`SimJob`] — workload, generator parameters, seed,
//! system configuration, serializable [`PrefetcherSpec`], access budget, and
//! an optional timing-model evaluation — and executes whole job lists with
//! [`run_jobs`]:
//!
//! * jobs are sharded across worker threads (`std::thread::scope` with an
//!   atomic work-stealing cursor; worker count from [`EngineConfig`],
//!   defaulting to the available hardware parallelism);
//! * every job builds its own trace generator and prefetcher from the job
//!   description on the executing thread, so parallel results are
//!   **bit-identical** to the serial path;
//! * results are merged deterministically back into submission order, each
//!   carrying the run's [`memsim::RunSummary`], a spec-specific
//!   [`ProbeReport`] (density histograms, oracle misses, predictor
//!   counters), and the [`timing::TimingResult`] for timing jobs.
//!
//! # Example
//!
//! ```
//! use engine::{run_jobs_with, EngineConfig, PrefetcherSpec, SimJob};
//! use memsim::HierarchyConfig;
//! use trace::{Application, GeneratorConfig};
//!
//! let jobs: Vec<SimJob> = [PrefetcherSpec::Null, PrefetcherSpec::sms_paper_default()]
//!     .into_iter()
//!     .map(|prefetcher| {
//!         SimJob::new(memsim::SimJob {
//!             app: Application::OltpDb2,
//!             generator: GeneratorConfig::default().with_cpus(2),
//!             seed: 2006,
//!             cpus: 2,
//!             hierarchy: HierarchyConfig::scaled(),
//!             prefetcher,
//!             accesses: 10_000,
//!         })
//!     })
//!     .collect();
//! let results = run_jobs_with(&jobs, &EngineConfig::with_workers(2));
//! assert_eq!(results.len(), 2);
//! // SMS must not increase the baseline's L1 read misses.
//! assert!(results[1].summary.l1.read_misses <= results[0].summary.l1.read_misses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod runner;
pub mod spec;

pub use runner::{run_job, run_jobs, run_jobs_with, EngineConfig, JobResult, SimJob, TimingSpec};
pub use spec::{
    BuiltPrefetcher, MultiOracle, OracleProbeSpec, PrefetcherSpec, ProbeReport, TrainingSpec,
};
