//! Engine-level telemetry: per-job, per-worker and whole-run timing.
//!
//! Metrics travel on a **separate channel** from results: a
//! [`JobResult`](crate::runner::JobResult) carries only simulated state (so
//! `--out` files and golden hashes stay bit-identical whether or not
//! telemetry is collected), while [`run_jobs_metered`](crate::runner::run_jobs_metered)
//! returns an [`EngineMetrics`] alongside the results.  The whole-run view
//! splits wall-clock time into the three phases of the engine — in-loop
//! **simulate** time per worker, the residual **queue wait** (claiming from
//! the shared cursor plus per-job preparation), and the deterministic
//! result **merge** — which is exactly the breakdown the next scaling steps
//! (segment sharding, async trace IO) need as a baseline.

use memsim::DriverMetrics;
use metrics::{per_sec, Histogram, MetricsReport};
use serde::{Deserialize, Serialize};

/// Telemetry of one executed job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Index of the job in the submitted list.
    pub job_index: usize,
    /// Wall-clock seconds spent inside the job's simulation loop (driving
    /// accesses through the system, or the timing model's walk).  Job
    /// preparation — resolving the prefetcher spec, opening the trace
    /// source, building the system — happens before this clock starts and
    /// lands in the worker's
    /// [`queue_wait_seconds`](WorkerMetrics::queue_wait_seconds).
    pub elapsed_seconds: f64,
    /// Demand accesses the job simulated.
    pub accesses: u64,
    /// Demand accesses simulated per wall-clock second.
    pub accesses_per_sec: f64,
    /// Cache operations performed (demand accesses + applied prefetch
    /// fills).
    pub cache_ops: u64,
    /// Prefetch fills applied to a cache.
    pub prefetch_issues: u64,
    /// Non-empty prefetch-request batches drained by the driver.
    pub request_batches: u64,
    /// Segments the job was split into (zero for unsegmented execution).
    pub segments: u64,
    /// Busy seconds the segment pipeline's pull stage spent reading the
    /// trace (zero for unsegmented execution).
    pub pull_seconds: f64,
    /// Busy seconds the segment pipeline's account stage spent replaying
    /// outcome tapes (zero for unsegmented execution).
    pub account_seconds: f64,
    /// Speculatively simulated segments that passed fingerprint
    /// verification and were committed (zero outside speculative runs).
    pub spec_commits: u64,
    /// Speculatively simulated segments whose verification failed and whose
    /// outcome was discarded and replayed (nonzero only under test-only
    /// fault injection — clean-path chained speculation always verifies).
    pub spec_mispredicts: u64,
    /// Accesses re-simulated on the replay path after failed verifications.
    pub spec_replayed_accesses: u64,
    /// Per-segment pull-stage latency distribution, microseconds (empty for
    /// unsegmented execution or disabled metrics).
    pub pull_segment_us: Histogram,
    /// Per-segment simulate-stage latency distribution, microseconds.
    pub simulate_segment_us: Histogram,
    /// Per-segment account-stage latency distribution, microseconds.
    pub account_segment_us: Histogram,
}

impl JobMetrics {
    /// Job telemetry from the driver's own metrics (plain cache-simulation
    /// jobs, where the driver's loop time is the job time).
    pub fn from_driver(job_index: usize, driver: &DriverMetrics) -> Self {
        Self {
            job_index,
            elapsed_seconds: driver.elapsed_seconds,
            accesses: driver.cache_ops - driver.prefetch_issues,
            accesses_per_sec: driver.accesses_per_sec,
            cache_ops: driver.cache_ops,
            prefetch_issues: driver.prefetch_issues,
            request_batches: driver.request_batches,
            segments: 0,
            pull_seconds: 0.0,
            account_seconds: 0.0,
            spec_commits: 0,
            spec_mispredicts: 0,
            spec_replayed_accesses: 0,
            pull_segment_us: Histogram::new(),
            simulate_segment_us: Histogram::new(),
            account_segment_us: Histogram::new(),
        }
    }

    /// Job telemetry derived from a run summary plus an externally measured
    /// elapsed time (timing-model jobs, whose loop lives in the `timing`
    /// crate).
    pub fn from_summary(
        job_index: usize,
        summary: &memsim::RunSummary,
        elapsed_seconds: f64,
    ) -> Self {
        let prefetch_issues = summary.l1.prefetch_fills + summary.l2.prefetch_fills;
        Self {
            job_index,
            elapsed_seconds,
            accesses: summary.accesses,
            accesses_per_sec: per_sec(summary.accesses, elapsed_seconds),
            cache_ops: summary.accesses + prefetch_issues,
            prefetch_issues,
            request_batches: 0,
            segments: 0,
            pull_seconds: 0.0,
            account_seconds: 0.0,
            spec_commits: 0,
            spec_mispredicts: 0,
            spec_replayed_accesses: 0,
            pull_segment_us: Histogram::new(),
            simulate_segment_us: Histogram::new(),
            account_segment_us: Histogram::new(),
        }
    }
}

/// Telemetry of one engine worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerMetrics {
    /// Worker index (0-based; the serial path is a single worker 0).
    pub worker: usize,
    /// Jobs this worker executed.
    pub jobs_run: u64,
    /// Wall-clock seconds spent inside claimed jobs' simulation loops (the
    /// sum of their [`JobMetrics::elapsed_seconds`]).
    pub simulate_seconds: f64,
    /// Worker lifetime not spent simulating: claiming jobs from the shared
    /// cursor, per-job preparation (plugin resolution, trace opening,
    /// system construction — significant for file-backed traces on slow
    /// storage), and waiting for the scope to wind down.
    pub queue_wait_seconds: f64,
    /// Total worker lifetime.
    pub total_seconds: f64,
}

/// Whole-run engine telemetry: every worker, every job, and the run-level
/// aggregate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Per-worker timing, in worker order.
    pub workers: Vec<WorkerMetrics>,
    /// Per-job telemetry, in submission order.
    pub jobs: Vec<JobMetrics>,
    /// Demand accesses simulated across all jobs.
    pub total_accesses: u64,
    /// Sum of worker simulate time (CPU-seconds of useful work).
    pub simulate_seconds: f64,
    /// Wall-clock seconds spent merging results back into submission order.
    pub merge_seconds: f64,
    /// Whole-run wall-clock seconds.
    pub total_seconds: f64,
    /// Aggregate throughput: total accesses over whole-run wall-clock time.
    pub accesses_per_sec: f64,
}

impl EngineMetrics {
    /// The [`MetricsReport`] kind tag of serialized engine metrics.
    pub const REPORT_KIND: &'static str = "engine-run";

    /// Stamps the run-level aggregates from the collected parts.
    pub(crate) fn finish(&mut self, merge_seconds: f64, total_seconds: f64) {
        self.total_accesses = self.jobs.iter().map(|j| j.accesses).sum();
        self.simulate_seconds = self.workers.iter().map(|w| w.simulate_seconds).sum();
        self.merge_seconds = merge_seconds;
        self.total_seconds = total_seconds;
        self.accesses_per_sec = per_sec(self.total_accesses, total_seconds);
    }

    /// Wraps the metrics in the shared schema-versioned report envelope.
    pub fn report(&self) -> MetricsReport {
        MetricsReport::new(Self::REPORT_KIND, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_driver_recovers_demand_accesses() {
        let driver = DriverMetrics {
            elapsed_seconds: 2.0,
            accesses_per_sec: 500.0,
            cache_ops: 1_100,
            prefetch_issues: 100,
            request_batches: 40,
            max_batch_len: 8,
            batch_len_hist: Histogram::new(),
        };
        let job = JobMetrics::from_driver(3, &driver);
        assert_eq!(job.job_index, 3);
        assert_eq!(job.accesses, 1_000);
        assert_eq!(job.cache_ops, 1_100);
        assert_eq!(job.request_batches, 40);
    }

    #[test]
    fn finish_aggregates_and_reports() {
        let mut m = EngineMetrics {
            workers: vec![
                WorkerMetrics {
                    worker: 0,
                    jobs_run: 2,
                    simulate_seconds: 1.0,
                    queue_wait_seconds: 0.5,
                    total_seconds: 1.5,
                },
                WorkerMetrics {
                    worker: 1,
                    jobs_run: 1,
                    simulate_seconds: 2.0,
                    queue_wait_seconds: 0.0,
                    total_seconds: 2.0,
                },
            ],
            jobs: vec![
                JobMetrics {
                    job_index: 0,
                    accesses: 600,
                    ..JobMetrics::default()
                },
                JobMetrics {
                    job_index: 1,
                    accesses: 400,
                    ..JobMetrics::default()
                },
            ],
            ..EngineMetrics::default()
        };
        m.finish(0.25, 2.0);
        assert_eq!(m.total_accesses, 1_000);
        assert!((m.simulate_seconds - 3.0).abs() < 1e-12);
        assert!((m.accesses_per_sec - 500.0).abs() < 1e-9);

        let report = m.report();
        assert_eq!(report.kind, EngineMetrics::REPORT_KIND);
        assert!(report.validate().is_ok());
        let back: EngineMetrics = report
            .decode(EngineMetrics::REPORT_KIND)
            .expect("decodes")
            .expect("matching kind");
        assert_eq!(back, m);
    }
}
