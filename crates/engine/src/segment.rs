//! Segment-parallel execution of a single job.
//!
//! Job-level sharding (the runner's worker pool) cannot help the figure whose
//! wall-clock is one long trace: that job pins one worker while the others
//! idle.  This module splits such a job *internally* into fixed-size segments
//! of its access stream and runs the per-segment work as a three-stage
//! pipeline across threads:
//!
//! 1. **pull** — read the next segment of accesses from the (stateful)
//!    trace stream into a reusable buffer;
//! 2. **simulate** — drive the buffered segment through the caches,
//!    coherence and the prefetcher with classification *deferred*: the
//!    classifier-relevant facts are recorded on an
//!    [`OutcomeTape`](memsim::OutcomeTape) instead of being accounted inline
//!    (see `MultiCpuSystem::access_deferred`);
//! 3. **account** — replay the tape into a standalone
//!    [`MissAccounting`](memsim::MissAccounting) (and, for timing jobs, the
//!    [`TimingAccounting`](timing::TimingAccounting) cycle model).
//!
//! Each stage's state is *handed off* segment to segment — the stream
//! position, the simulator + prefetcher state, and the accounting state each
//! advance strictly in segment order — so every stage performs exactly the
//! serial computation in exactly the serial order, and the merged
//! [`RunSummary`](memsim::RunSummary) is **bit-identical to the serial run by
//! construction**.  No warm-up window, no approximation; the golden hashes in
//! `tests/deterministic_replay.rs` pin this.
//!
//! What parallelism buys: while segment `k` simulates, segment `k+1` is
//! being pulled and segment `k-1` is being accounted on other threads.
//! Profiling puts trace generation at 7–16% and miss classification at
//! 26–60% of the serial loop, so the pipeline's steady-state wall-clock
//! approaches the simulate stage alone — a 1.4–2x single-job speedup at 2–3
//! threads on unloaded cores, and exactly the serial bits either way.
//!
//! The pipeline degrades gracefully: with one thread the three stages run
//! in-line per segment (same code, same hand-off, no concurrency); with two
//! threads the pull and account stages share one helper, which the stage
//! cost profile above makes the natural split.  A probe that declares
//! [`wants_miss_kinds`](crate::plugin::Probe::wants_miss_kinds) cannot run
//! with deferred classification; the runner keeps such jobs on the serial
//! path.

use crate::plugin::{BuiltPrefetcher, Registry};
use crate::runner::{EngineError, JobResult, JobWarning, SimJob};
use crate::telemetry::JobMetrics;
use memsim::{
    DriverMeter, DriverMetrics, MissAccounting, MultiCpuSystem, OutcomeTape, PrefetchRequest,
    SegmentCounts,
};
use metrics::{per_sec, MetricsConfig, Stopwatch};
use std::io;
use std::sync::mpsc;
use timing::TimingAccounting;
use trace::{fill_segment, BoxedStream, MemAccess};

/// Buffers (and tapes) circulating through the pipeline: one being pulled,
/// one being simulated, one being accounted.  This also bounds how far the
/// pull stage can run ahead of the simulator.
const BUFFERS: usize = 3;

/// How one job should be segmented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Accesses per segment (the last segment of a trace may be shorter).
    pub segment_size: usize,
    /// Threads the pipeline may use, *including* the calling thread
    /// (clamped to `1..=3`; the pipeline has three stages).
    pub threads: usize,
}

/// Per-job stage telemetry of a segmented run (merged into [`JobMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SegmentTelemetry {
    segments: u64,
    pull_seconds: f64,
    account_seconds: f64,
}

/// Runs one job through the segment pipeline, resolving its prefetcher spec
/// through `registry`.
///
/// The result — summary, probe report, timing result, warnings — is
/// bit-identical to [`run_job_metered`](crate::runner::run_job_metered) for
/// every thread count and segment size, including a segment boundary exactly
/// at the trace end and segments larger than the whole trace.
///
/// A job whose probe [`wants_miss_kinds`](crate::plugin::Probe::wants_miss_kinds)
/// cannot run with deferred classification; it transparently falls back to
/// the serial execution path (still bit-identical — segmentation is simply
/// not applied).
///
/// # Errors
///
/// As the serial path: plugin resolution/build failures, trace-open
/// failures, and a corrupt record anywhere in the trace — even inside a late
/// segment — fails the whole job with the same `corrupt mid-stream` error
/// the serial path raises (never a silently shortened summary).
pub fn run_job_segmented(
    index: usize,
    job: &SimJob,
    registry: &Registry,
    metrics: &MetricsConfig,
    plan: SegmentPlan,
) -> Result<(JobResult, JobMetrics), EngineError> {
    let sim = &job.sim;
    let trace_error = |message: String| EngineError::Trace {
        job_index: index,
        source: sim.source.describe(),
        message,
    };
    let prefetcher =
        registry
            .build(&sim.prefetcher, sim.cpus)
            .map_err(|error| EngineError::Plugin {
                job_index: index,
                error,
            })?;
    if prefetcher.wants_miss_kinds() {
        // Deferred classification would hand this probe `None` miss kinds;
        // run it serially instead (the rebuilt prefetcher is empty state —
        // construction is deterministic and cheap).
        return crate::runner::run_job_metered(index, job, registry, metrics);
    }
    let stream = sim.source.open().map_err(|e| trace_error(e.to_string()))?;

    let pipeline = Pipeline {
        system: MultiCpuSystem::new(sim.cpus, &sim.hierarchy),
        prefetcher,
        stream,
        budget: sim.accesses,
        accounting: MissAccounting::new(sim.cpus, &sim.hierarchy),
        timing: job
            .timing
            .as_ref()
            .map(|spec| TimingAccounting::new(sim.cpus, spec.config, sim.accesses, spec.segments)),
        plan,
    };

    let watch = Stopwatch::start_if(metrics.enabled);
    let (end, telemetry, driver) = if metrics.enabled {
        let mut meter = DriverMetrics::default();
        let (end, telemetry) = pipeline.run(&mut meter);
        (end, telemetry, meter)
    } else {
        let (end, telemetry) = pipeline.run(&mut ());
        (end, telemetry, DriverMetrics::default())
    };

    if let Some(e) = end.stream_error {
        return Err(trace_error(format!("corrupt mid-stream: {e}")));
    }

    let summary = memsim::summarize_segmented(&end.system, &end.accounting, &end.counts);
    let mut result = JobResult {
        job_index: index,
        summary,
        probe: end.prefetcher.into_report(),
        timing: end.timing.map(TimingAccounting::finish),
        warnings: Vec::new(),
    };
    let delivered = result.summary.accesses + result.summary.skipped_accesses;
    if delivered < sim.accesses as u64 {
        result.warnings.push(JobWarning::short_trace(
            &sim.source.describe(),
            delivered,
            sim.accesses,
        ));
    }

    let mut job_metrics = if metrics.enabled {
        let mut driver = driver;
        driver.elapsed_seconds = watch.elapsed_seconds();
        driver.accesses_per_sec = per_sec(result.summary.accesses, driver.elapsed_seconds);
        let mut m = JobMetrics::from_driver(index, &driver);
        m.pull_seconds = telemetry.pull_seconds;
        m.account_seconds = telemetry.account_seconds;
        m
    } else {
        JobMetrics {
            job_index: index,
            ..JobMetrics::default()
        }
    };
    job_metrics.segments = telemetry.segments;
    Ok((result, job_metrics))
}

/// A task shipped to a pipeline helper thread.
enum Task {
    /// Fill this (cleared) buffer with the next segment and ship it back.
    Pull(Vec<MemAccess>),
    /// Replay this segment's tape into the accounting state, then recycle
    /// buffer and tape.
    Account(Vec<MemAccess>, OutcomeTape),
}

/// The owned state a helper needs for the stages it serves.  With three
/// threads each helper holds one half; with two threads the single helper
/// holds both.
struct HelperState {
    /// Pull stage: the live stream and its un-pulled access budget.
    stream: Option<(BoxedStream, usize)>,
    /// Account stage: the classifier state and the optional timing model.
    accounting: Option<(MissAccounting, Option<TimingAccounting>)>,
    /// Busy (non-idle) seconds spent pulling / accounting.
    pull_seconds: f64,
    account_seconds: f64,
}

impl HelperState {
    /// Serves tasks until the owner hangs up the task channel.
    fn serve(
        &mut self,
        segment_size: usize,
        tasks: mpsc::Receiver<Task>,
        pulled_tx: mpsc::Sender<Vec<MemAccess>>,
        recycle_tx: mpsc::Sender<(Vec<MemAccess>, OutcomeTape)>,
    ) {
        while let Ok(task) = tasks.recv() {
            match task {
                Task::Pull(mut buffer) => {
                    let watch = Stopwatch::started();
                    let (stream, remaining) =
                        self.stream.as_mut().expect("helper serves the pull stage");
                    let want = segment_size.min(*remaining);
                    let got = fill_segment(&mut **stream, &mut buffer, want);
                    *remaining -= got;
                    self.pull_seconds += watch.elapsed_seconds();
                    // Always respond, even with an empty buffer: the owner
                    // counts outstanding pulls and reads emptiness as
                    // end-of-stream.
                    if pulled_tx.send(buffer).is_err() {
                        break;
                    }
                }
                Task::Account(buffer, tape) => {
                    let watch = Stopwatch::started();
                    let (accounting, timing) = self
                        .accounting
                        .as_mut()
                        .expect("helper serves the account stage");
                    account_segment(accounting, timing, &buffer, &tape);
                    self.account_seconds += watch.elapsed_seconds();
                    // Recycling is best-effort; the owner may be done.
                    let _ = recycle_tx.send((buffer, tape));
                }
            }
        }
    }
}

/// Replays one segment into the accounting state (classifiers, and the
/// timing model when present) — the account stage's body.
fn account_segment(
    accounting: &mut MissAccounting,
    timing: &mut Option<TimingAccounting>,
    accesses: &[MemAccess],
    tape: &OutcomeTape,
) {
    accounting.replay(accesses, tape);
    if let Some(timing) = timing {
        for (index, access) in accesses.iter().enumerate() {
            let flags = tape.flags_at(index);
            if !flags.skipped {
                timing.observe(access, flags.l1_miss, flags.offchip);
            }
        }
    }
}

/// Everything the pipeline hands back to be merged into the job result.
struct PipelineEnd {
    system: MultiCpuSystem,
    prefetcher: BuiltPrefetcher,
    counts: SegmentCounts,
    accounting: MissAccounting,
    timing: Option<TimingAccounting>,
    stream_error: Option<io::Error>,
}

/// One job's pipeline, owning all three stages' states before they are
/// distributed across threads.
struct Pipeline {
    system: MultiCpuSystem,
    prefetcher: BuiltPrefetcher,
    stream: BoxedStream,
    budget: usize,
    accounting: MissAccounting,
    timing: Option<TimingAccounting>,
    plan: SegmentPlan,
}

impl Pipeline {
    /// Executes pull → simulate → account over the whole stream.  The
    /// calling thread always runs the simulate stage (it owns the
    /// heavyweight simulator state); helpers take the other stages
    /// according to `plan.threads`.
    fn run<M: DriverMeter>(self, meter: &mut M) -> (PipelineEnd, SegmentTelemetry) {
        match self.plan.threads.clamp(1, 3) {
            1 => self.run_inline(meter),
            threads => self.run_threaded(meter, threads),
        }
    }

    /// In-line pipeline: the same three stages and the same hand-off order,
    /// on one thread.  This is the reference the threaded paths reproduce
    /// bit for bit.
    fn run_inline<M: DriverMeter>(mut self, meter: &mut M) -> (PipelineEnd, SegmentTelemetry) {
        let segment_size = self.plan.segment_size.max(1);
        let mut telemetry = SegmentTelemetry::default();
        let mut counts = SegmentCounts::default();
        let mut batch: Vec<PrefetchRequest> = Vec::new();
        let mut buffer = Vec::with_capacity(segment_size.min(1 << 20));
        let mut tape = OutcomeTape::new();
        let mut remaining = self.budget;
        while remaining > 0 {
            let want = segment_size.min(remaining);
            let watch = Stopwatch::started();
            let got = fill_segment(&mut *self.stream, &mut buffer, want);
            telemetry.pull_seconds += watch.elapsed_seconds();
            remaining -= got;
            if got == 0 {
                break;
            }
            tape.clear();
            memsim::run_segment_deferred(
                &mut self.system,
                &mut self.prefetcher,
                &buffer,
                &mut batch,
                &mut tape,
                &mut counts,
                meter,
            );
            let watch = Stopwatch::started();
            account_segment(&mut self.accounting, &mut self.timing, &buffer, &tape);
            telemetry.account_seconds += watch.elapsed_seconds();
            telemetry.segments += 1;
            if got < want {
                break;
            }
        }
        let stream_error = self.stream.take_error();
        (
            PipelineEnd {
                system: self.system,
                prefetcher: self.prefetcher,
                counts,
                accounting: self.accounting,
                timing: self.timing,
                stream_error,
            },
            telemetry,
        )
    }

    /// Threaded pipeline.  Channel topology:
    ///
    /// ```text
    ///   owner --Task::Pull(buffer)-----> helper --(filled buffer)--> owner
    ///   owner --Task::Account(b, tape)-> helper --(recycled b, t)--> owner
    /// ```
    ///
    /// With three threads the two task kinds go to two dedicated helpers;
    /// with two threads both kinds share one helper's FIFO, which preserves
    /// each stage's segment order automatically.  The owner simulates.
    ///
    /// Liveness: the owner only blocks on `pulled_rx` while it has pull
    /// tasks outstanding, and a helper answers every pull task with exactly
    /// one response (possibly empty = end of stream).  Channels are
    /// unbounded; memory is bounded by the [`BUFFERS`] buffers in
    /// circulation.
    fn run_threaded<M: DriverMeter>(
        mut self,
        meter: &mut M,
        threads: usize,
    ) -> (PipelineEnd, SegmentTelemetry) {
        let segment_size = self.plan.segment_size.max(1);
        let mut telemetry = SegmentTelemetry::default();
        let mut counts = SegmentCounts::default();
        let mut batch: Vec<PrefetchRequest> = Vec::new();

        let (pulled_tx, pulled_rx) = mpsc::channel::<Vec<MemAccess>>();
        let (recycle_tx, recycle_rx) = mpsc::channel::<(Vec<MemAccess>, OutcomeTape)>();

        let mut pull_state = HelperState {
            stream: Some((self.stream, self.budget)),
            accounting: None,
            pull_seconds: 0.0,
            account_seconds: 0.0,
        };
        let mut account_state = HelperState {
            stream: None,
            accounting: Some((self.accounting, self.timing)),
            pull_seconds: 0.0,
            account_seconds: 0.0,
        };

        let (system, prefetcher) = std::thread::scope(|scope| {
            // Channel plumbing per thread count: with two threads one
            // helper owns both stages and both task kinds share its queue.
            let (pull_task_tx, pull_task_rx) = mpsc::channel::<Task>();
            let (account_task_tx, account_task_rx);
            let mut handles = Vec::new();
            if threads >= 3 {
                let (tx, rx) = mpsc::channel::<Task>();
                account_task_tx = tx;
                account_task_rx = Some(rx);
            } else {
                account_task_tx = pull_task_tx.clone();
                account_task_rx = None;
            }

            {
                let pulled_tx = pulled_tx.clone();
                let recycle_tx = recycle_tx.clone();
                let state = &mut pull_state;
                if threads == 2 {
                    // Single helper: move the account stage in with the
                    // pull stage.
                    state.accounting = account_state.accounting.take();
                }
                handles.push(scope.spawn(move || {
                    state.serve(segment_size, pull_task_rx, pulled_tx, recycle_tx);
                }));
            }
            if let Some(rx) = account_task_rx {
                let pulled_tx = pulled_tx.clone();
                let recycle_tx = recycle_tx.clone();
                let state = &mut account_state;
                handles.push(scope.spawn(move || {
                    state.serve(segment_size, rx, pulled_tx, recycle_tx);
                }));
            }
            drop((pulled_tx, recycle_tx));

            // The owner: prime the pull stage, then simulate each pulled
            // segment and hand its tape to the account stage, recycling
            // buffers into new pull requests as they come back.
            let mut tapes: Vec<OutcomeTape> = Vec::new();
            let mut pulls_outstanding = 0usize;
            let mut stream_done = false;
            for _ in 0..BUFFERS {
                if pull_task_tx.send(Task::Pull(Vec::new())).is_ok() {
                    pulls_outstanding += 1;
                }
            }
            while pulls_outstanding > 0 {
                let buffer = pulled_rx
                    .recv()
                    .expect("pull helper alive while pulls are outstanding");
                pulls_outstanding -= 1;
                if buffer.len() < segment_size {
                    // A short (or empty) segment: the stream or the budget
                    // ran out; everything still queued will come back empty.
                    stream_done = true;
                }
                if !buffer.is_empty() {
                    let mut tape = tapes.pop().unwrap_or_default();
                    tape.clear();
                    memsim::run_segment_deferred(
                        &mut self.system,
                        &mut self.prefetcher,
                        &buffer,
                        &mut batch,
                        &mut tape,
                        &mut counts,
                        meter,
                    );
                    telemetry.segments += 1;
                    account_task_tx
                        .send(Task::Account(buffer, tape))
                        .expect("account helper alive while the owner simulates");
                }
                // Keep the pull stage fed: convert recycled buffers into new
                // pull requests.  While the stream may still deliver, at
                // least one pull must stay outstanding — block for a recycle
                // if necessary (one is always in flight here: every consumed
                // non-empty segment was sent to the account stage, and an
                // empty one set `stream_done`).
                while !stream_done {
                    let recycled = if pulls_outstanding == 0 {
                        recycle_rx.recv().ok()
                    } else {
                        recycle_rx.try_recv().ok()
                    };
                    match recycled {
                        Some((buffer, tape)) => {
                            tapes.push(tape);
                            if pull_task_tx.send(Task::Pull(buffer)).is_ok() {
                                pulls_outstanding += 1;
                            } else {
                                stream_done = true;
                            }
                        }
                        None if pulls_outstanding == 0 => {
                            // Helpers hung up; nothing more can arrive.
                            stream_done = true;
                        }
                        None => break,
                    }
                }
            }
            drop(pull_task_tx);
            drop(account_task_tx);
            for handle in handles {
                handle.join().expect("pipeline helper panicked");
            }
            (self.system, self.prefetcher)
        });

        telemetry.pull_seconds = pull_state.pull_seconds + account_state.pull_seconds;
        telemetry.account_seconds = pull_state.account_seconds + account_state.account_seconds;
        let (mut stream, _) = pull_state.stream.take().expect("stream returns to owner");
        let stream_error = stream.take_error();
        let (accounting, timing) = pull_state
            .accounting
            .take()
            .or_else(|| account_state.accounting.take())
            .expect("accounting returns to owner");
        (
            PipelineEnd {
                system,
                prefetcher,
                counts,
                accounting,
                timing,
                stream_error,
            },
            telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_jobs_in, run_jobs_with, EngineConfig};
    use crate::spec::PrefetcherSpec;
    use ghb::GhbConfig;
    use memsim::HierarchyConfig;
    use sms::SmsConfig;
    use timing::TimingConfig;
    use trace::{Application, GeneratorConfig, TraceSource};

    const ACCESSES: usize = 8_000;

    fn job(app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        SimJob::new(memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(2),
            2006,
            2,
            HierarchyConfig::scaled(),
            prefetcher,
            ACCESSES,
        ))
    }

    /// Baselines, SMS, GHB and a timing job: every execution path segments.
    fn job_list() -> Vec<SimJob> {
        vec![
            job(Application::OltpDb2, PrefetcherSpec::null()),
            job(
                Application::Ocean,
                PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ),
            job(
                Application::Sparse,
                PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ),
            job(Application::DssQry1, PrefetcherSpec::sms_paper_default())
                .with_timing(TimingConfig::table1(), 4),
        ]
    }

    #[test]
    fn segmented_results_are_bit_identical_across_sizes_and_threads() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        // Segment sizes hit: many tiny segments, a boundary exactly at the
        // budget (8000 % 1000 == 0), an odd size, and a segment larger than
        // the whole trace.  Worker budgets hit the inline (1), shared-helper
        // (2) and full three-stage (3+) pipelines.
        for segment_size in [97, 1_000, ACCESSES, 5 * ACCESSES] {
            for workers in [1, 2, 3, 6] {
                let config = EngineConfig::with_workers(workers).with_segment_size(segment_size);
                let segmented = run_jobs_with(&jobs, &config);
                assert_eq!(
                    serial, segmented,
                    "segment_size={segment_size} workers={workers} diverged from serial"
                );
                let a = serde_json::to_string(&serial).expect("serialize");
                let b = serde_json::to_string(&segmented).expect("serialize");
                assert_eq!(a, b, "byte-level divergence at {segment_size}/{workers}");
            }
        }
    }

    #[test]
    fn segment_plan_splits_the_thread_budget() {
        let config = EngineConfig::with_workers(6).with_segment_size(1_000);
        let plan = config.segment_plan().expect("segmentation on");
        assert_eq!(plan.threads, 3);
        assert_eq!(plan.segment_size, 1_000);
        assert!(EngineConfig::with_workers(6).segment_plan().is_none());
        assert!(EngineConfig::with_workers(6)
            .with_segment_size(0)
            .segment_plan()
            .is_none());
        let serial_plan = EngineConfig::serial()
            .with_segment_size(500)
            .segment_plan()
            .expect("segmentation on");
        assert_eq!(
            serial_plan.threads, 1,
            "one worker means an inline pipeline"
        );
    }

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sms-engine-segment-{tag}-{}", std::process::id()))
    }

    fn recorded_trace(n: usize) -> Vec<trace::MemAccess> {
        Application::Ocean
            .stream(11, &GeneratorConfig::default().with_cpus(2))
            .take(n)
            .collect()
    }

    /// A file-backed job with an explicit access budget.
    fn file_job(path: &std::path::Path, accesses: usize) -> SimJob {
        SimJob::new(memsim::SimJob {
            source: TraceSource::binary_file(path.to_string_lossy()),
            cpus: 2,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::sms_paper_default(),
            accesses,
        })
    }

    #[test]
    fn trace_end_exactly_on_segment_boundary_matches_serial() {
        // 3000 recorded accesses, budget 3000, segments of 1000: the last
        // segment ends exactly at the trace end, with no empty tail segment
        // changing the result.
        let recorded = recorded_trace(3_000);
        let path = temp_file("boundary");
        trace::io::write_binary(std::fs::File::create(&path).unwrap(), &recorded).unwrap();
        let jobs = vec![file_job(&path, 3_000)];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        for workers in [1, 2, 3] {
            let segmented = run_jobs_with(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(1_000),
            );
            assert_eq!(serial, segmented, "workers={workers}");
            assert!(segmented[0].warnings.is_empty(), "no short-trace warning");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_larger_than_trace_matches_serial_and_warns_short() {
        // 500 recorded accesses against a 2000 budget with 10k segments:
        // one short segment, and the short_trace warning must survive
        // segmentation byte-for-byte.
        let recorded = recorded_trace(500);
        let path = temp_file("oversize");
        trace::io::write_binary(std::fs::File::create(&path).unwrap(), &recorded).unwrap();
        let jobs = vec![file_job(&path, 2_000)];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        assert_eq!(serial[0].warnings.len(), 1);
        assert_eq!(
            serial[0].warnings[0].kind,
            crate::runner::JobWarning::SHORT_TRACE
        );
        for workers in [1, 2, 3] {
            let segmented = run_jobs_with(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(10_000),
            );
            assert_eq!(serial, segmented, "workers={workers}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_in_a_late_segment_fails_the_whole_job() {
        // A trace corrupted in its final records: the segmented run must
        // fail the job with the serial path's corrupt-mid-stream error — on
        // every thread count — not return a silently shortened summary.
        let recorded = recorded_trace(2_500);
        let mut bytes = Vec::new();
        trace::io::write_binary(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 9);
        let path = temp_file("corrupt-late");
        std::fs::write(&path, &bytes).unwrap();
        let jobs = vec![file_job(&path, 2_500)];

        let serial_err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("corrupt trace must fail serially");
        for workers in [1, 2, 3] {
            let err = run_jobs_in(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(1_000),
                Registry::builtin(),
            )
            .expect_err("corrupt trace must fail segmented");
            assert_eq!(serial_err, err, "workers={workers}");
            assert!(err.to_string().contains("corrupt mid-stream"), "{err}");
        }
        std::fs::remove_file(&path).ok();
    }

    /// A probe that inspects miss kinds: must be excluded from deferred
    /// classification and still see inline kinds via the serial fallback.
    struct KindCountingProbe {
        inner: memsim::NullPrefetcher,
        classified: u64,
    }

    impl memsim::Prefetcher for KindCountingProbe {
        fn on_access(
            &mut self,
            access: &trace::MemAccess,
            outcome: &memsim::SystemOutcome,
        ) -> Vec<memsim::PrefetchRequest> {
            if outcome.l1_miss_kind.is_some() {
                self.classified += 1;
            }
            self.inner.on_access(access, outcome)
        }

        fn name(&self) -> &str {
            "kind-counter"
        }
    }

    impl crate::plugin::Probe for KindCountingProbe {
        fn wants_miss_kinds(&self) -> bool {
            true
        }

        fn into_report(self: Box<Self>) -> crate::plugin::ProbeReport {
            crate::plugin::ProbeReport::new("kind-counter", &self.classified)
        }
    }

    struct KindCountingPlugin;

    impl crate::plugin::PrefetcherPlugin for KindCountingPlugin {
        fn name(&self) -> &str {
            "kind-counter"
        }

        fn build(
            &self,
            _params: &serde_json::Value,
            _num_cpus: usize,
        ) -> Result<BuiltPrefetcher, crate::plugin::PluginError> {
            Ok(BuiltPrefetcher::new(KindCountingProbe {
                inner: memsim::NullPrefetcher::new(),
                classified: 0,
            }))
        }
    }

    #[test]
    fn miss_kind_probes_fall_back_to_serial_and_still_see_kinds() {
        let mut registry = Registry::with_builtins();
        registry.register(std::sync::Arc::new(KindCountingPlugin));
        let jobs = vec![job(
            Application::OltpDb2,
            PrefetcherSpec {
                plugin: "kind-counter".to_string(),
                params: serde_json::Value::Null,
            },
        )];
        let serial = run_jobs_in(&jobs, &EngineConfig::serial(), &registry).expect("runs");
        let segmented = run_jobs_in(
            &jobs,
            &EngineConfig::with_workers(3).with_segment_size(1_000),
            &registry,
        )
        .expect("runs via fallback");
        assert_eq!(serial, segmented);
        let classified: u64 = serial[0]
            .probe
            .decode("kind-counter")
            .expect("kind-counter report");
        assert!(
            classified > 0,
            "the fallback path must still deliver inline miss kinds"
        );
    }
}
