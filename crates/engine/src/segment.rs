//! Segment-parallel execution of a single job.
//!
//! Job-level sharding (the runner's worker pool) cannot help the figure whose
//! wall-clock is one long trace: that job pins one worker while the others
//! idle.  This module splits such a job *internally* into fixed-size segments
//! of its access stream and runs the per-segment work as a three-stage
//! pipeline across threads:
//!
//! 1. **pull** — read the next segment of accesses from the (stateful)
//!    trace stream into a reusable buffer;
//! 2. **simulate** — drive the buffered segment through the caches,
//!    coherence and the prefetcher with classification *deferred*: the
//!    classifier-relevant facts are recorded on an
//!    [`OutcomeTape`](memsim::OutcomeTape) instead of being accounted inline
//!    (see `MultiCpuSystem::access_deferred`);
//! 3. **account** — replay the tape into a standalone
//!    [`MissAccounting`](memsim::MissAccounting) (and, for timing jobs, the
//!    [`TimingAccounting`](timing::TimingAccounting) cycle model).
//!
//! Each stage's state is *handed off* segment to segment — the stream
//! position, the simulator + prefetcher state, and the accounting state each
//! advance strictly in segment order — so every stage performs exactly the
//! serial computation in exactly the serial order, and the merged
//! [`RunSummary`](memsim::RunSummary) is **bit-identical to the serial run by
//! construction**.  No warm-up window, no approximation; the golden hashes in
//! `tests/deterministic_replay.rs` pin this.
//!
//! What parallelism buys: while segment `k` simulates, segment `k+1` is
//! being pulled and segment `k-1` is being accounted on other threads.
//! Profiling puts trace generation at 7–16% and miss classification at
//! 26–60% of the serial loop, so the pipeline's steady-state wall-clock
//! approaches the simulate stage alone — a 1.4–2x single-job speedup at 2–3
//! threads on unloaded cores, and exactly the serial bits either way.
//!
//! The pipeline degrades gracefully: with one thread the three stages run
//! in-line per segment (same code, same hand-off, no concurrency); with two
//! threads the pull and account stages share one helper, which the stage
//! cost profile above makes the natural split.
//!
//! With [`SegmentPlan::with_speculation`] the simulate stage additionally
//! runs **speculatively ahead** of the commit frontier on a dedicated worker
//! thread: each segment's result is committed only after its start
//! fingerprint is verified against the committed state, and a failed
//! verification discards the speculative work and replays the segment from
//! the authoritative state (see [`crate::speculate`]).  Committed results
//! are bit-identical to the serial run by the same hand-off argument.
//!
//! A probe that declares
//! [`wants_miss_kinds`](crate::plugin::Probe::wants_miss_kinds) hands its
//! [`KindSink`](crate::plugin::KindSink) to the engine; on segmented runs
//! the **account stage** feeds that sink the authoritative miss kinds while
//! replaying each tape (via `MissAccounting::replay_with_kinds`), so
//! kind-consuming probes segment — and speculate — like any other probe with
//! no serial fallback.

use crate::plugin::{BuiltPrefetcher, KindSink, Registry};
use crate::runner::{EngineError, JobResult, JobWarning, SimJob};
use crate::telemetry::JobMetrics;
use memsim::{
    DriverMeter, DriverMetrics, MissAccounting, MultiCpuSystem, OutcomeTape, PrefetchRequest,
    SegmentCounts,
};
use metrics::{per_sec, Histogram, MetricsConfig, Stopwatch};
use std::io;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;
use timing::TimingAccounting;
use trace::{fill_segment, BoxedStream, MemAccess};
use tracelog::{Recorder, Trace};

/// Converts a stopwatch reading to the whole microseconds the histograms
/// bucket.
pub(crate) fn as_micros(seconds: f64) -> u64 {
    (seconds * 1e6) as u64
}

/// Buffers (and tapes) circulating through the pipeline: one being pulled,
/// one being simulated, one being accounted.  This also bounds how far the
/// pull stage can run ahead of the simulator.
const BUFFERS: usize = 3;

/// How one job should be segmented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Accesses per segment (the last segment of a trace may be shorter).
    pub segment_size: usize,
    /// Threads the pipeline may use, *including* the calling thread
    /// (clamped to `1..=3` without speculation — the pipeline has three
    /// stages — and `1..=4` with it, the fourth thread being the
    /// speculative simulate worker).
    pub threads: usize,
    /// Speculative run-ahead depth: how many segments the simulate worker
    /// may run ahead of the verified commit frontier.  `0` disables
    /// speculation; any depth needs at least two threads (it is ignored on
    /// an inline pipeline).
    pub speculation: usize,
    /// Test-only fault injection: when nonzero, every `mispredict_every`-th
    /// speculatively simulated segment is started from a deliberately
    /// perturbed state so its verification fails and the replay path runs.
    /// Has no effect on committed results — that is the point.
    #[doc(hidden)]
    pub mispredict_every: u64,
}

impl SegmentPlan {
    /// A plan with no speculation.
    pub fn new(segment_size: usize, threads: usize) -> Self {
        Self {
            segment_size,
            threads,
            speculation: 0,
            mispredict_every: 0,
        }
    }

    /// Returns a copy with speculative run-ahead at the given depth
    /// (`0` disables it).
    pub fn with_speculation(mut self, depth: usize) -> Self {
        self.speculation = depth;
        self
    }

    /// Returns a copy with test-only mispredict fault injection (`0`
    /// disables it).
    #[doc(hidden)]
    pub fn with_mispredict_every(mut self, every: u64) -> Self {
        self.mispredict_every = every;
        self
    }
}

/// Per-job stage telemetry of a segmented run (merged into [`JobMetrics`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SegmentTelemetry {
    pub(crate) segments: u64,
    pub(crate) pull_seconds: f64,
    pub(crate) account_seconds: f64,
    pub(crate) spec_commits: u64,
    pub(crate) spec_mispredicts: u64,
    pub(crate) spec_replayed_accesses: u64,
    /// Per-segment stage latency distributions, microseconds.
    pub(crate) pull_hist: Histogram,
    pub(crate) simulate_hist: Histogram,
    pub(crate) account_hist: Histogram,
}

/// Runs one job through the segment pipeline, resolving its prefetcher spec
/// through `registry`.
///
/// The result — summary, probe report, timing result, warnings — is
/// bit-identical to [`run_job_metered`](crate::runner::run_job_metered) for
/// every thread count, segment size and speculation depth, including a
/// segment boundary exactly at the trace end and segments larger than the
/// whole trace.
///
/// A job whose probe [`wants_miss_kinds`](crate::plugin::Probe::wants_miss_kinds)
/// runs segmented like any other: its [`KindSink`] is detached from the
/// probe, shipped to the account stage, fed the authoritative kinds during
/// tape replay, and restored into the probe before the report is taken.
///
/// # Errors
///
/// As the serial path: plugin resolution/build failures, trace-open
/// failures, and a corrupt record anywhere in the trace — even inside a late
/// segment — fails the whole job with the same `corrupt mid-stream` error
/// the serial path raises (never a silently shortened summary).
pub fn run_job_segmented(
    index: usize,
    job: &SimJob,
    registry: &Registry,
    metrics: &MetricsConfig,
    plan: SegmentPlan,
) -> Result<(JobResult, JobMetrics), EngineError> {
    run_job_segmented_observed(index, job, registry, metrics, plan, &Trace::disabled())
}

/// [`run_job_segmented`] with span tracing: each pipeline thread records
/// per-segment stage spans (`seg.pull`, `seg.simulate`, `seg.account`,
/// `seg.speculate`) and the speculative owner records commit/mispredict/
/// replay events.  With a disabled trace this *is* [`run_job_segmented`].
///
/// # Errors
///
/// As [`run_job_segmented`].
pub fn run_job_segmented_observed(
    index: usize,
    job: &SimJob,
    registry: &Registry,
    metrics: &MetricsConfig,
    plan: SegmentPlan,
    trace: &Trace,
) -> Result<(JobResult, JobMetrics), EngineError> {
    let sim = &job.sim;
    let trace_error = |message: String| EngineError::Trace {
        job_index: index,
        source: sim.source.describe(),
        message,
    };
    // Prepare and finalize get their own spans so the stage spans plus
    // these two account for (nearly) the whole job span: coverage gaps in
    // a trace read as instrumented time that was actually spent elsewhere.
    let recorder = trace.recorder(&format!("job{index}.pipeline"));
    let mut prepare_span = recorder.span("job.prepare");
    prepare_span.arg_u64("job", index as u64);
    let mut prefetcher =
        registry
            .build(&sim.prefetcher, sim.cpus)
            .map_err(|error| EngineError::Plugin {
                job_index: index,
                error,
            })?;
    // Deferred classification delivers `None` kinds during simulation, so a
    // kind-consuming probe's sink travels with the *account* stage, which
    // replays the authoritative kinds into it segment by segment.
    let sink = prefetcher.take_kind_sink();
    let stream = sim.source.open().map_err(|e| trace_error(e.to_string()))?;

    let pipeline = Pipeline {
        system: MultiCpuSystem::new(sim.cpus, &sim.hierarchy),
        prefetcher,
        stream,
        budget: sim.accesses,
        account: AccountState {
            accounting: MissAccounting::new(sim.cpus, &sim.hierarchy),
            timing: job.timing.as_ref().map(|spec| {
                TimingAccounting::new(sim.cpus, spec.config, sim.accesses, spec.segments)
            }),
            sink,
        },
        plan,
        job: index,
        trace: trace.clone(),
    };
    drop(prepare_span);

    let watch = Stopwatch::start_if(metrics.enabled);
    let (end, telemetry, driver) = if metrics.enabled {
        let mut meter = DriverMetrics::default();
        let (end, telemetry) = pipeline.run(&mut meter);
        (end, telemetry, meter)
    } else {
        let (end, telemetry) = pipeline.run(&mut ());
        (end, telemetry, DriverMetrics::default())
    };

    if let Some(e) = end.stream_error {
        return Err(trace_error(format!("corrupt mid-stream: {e}")));
    }

    let mut finalize_span = recorder.span("job.finalize");
    finalize_span.arg_u64("job", index as u64);
    let summary = memsim::summarize_segmented(&end.system, &end.account.accounting, &end.counts);
    let mut prefetcher = end.prefetcher;
    if let Some(sink) = end.account.sink {
        prefetcher.restore_kind_sink(sink);
    }
    let mut result = JobResult {
        job_index: index,
        summary,
        probe: prefetcher.into_report(),
        timing: end.account.timing.map(TimingAccounting::finish),
        warnings: Vec::new(),
    };
    let delivered = result.summary.accesses + result.summary.skipped_accesses;
    if delivered < sim.accesses as u64 {
        result.warnings.push(JobWarning::short_trace(
            &sim.source.describe(),
            delivered,
            sim.accesses,
        ));
    }
    drop(finalize_span);

    let mut job_metrics = if metrics.enabled {
        let mut driver = driver;
        driver.elapsed_seconds = watch.elapsed_seconds();
        driver.accesses_per_sec = per_sec(result.summary.accesses, driver.elapsed_seconds);
        let mut m = JobMetrics::from_driver(index, &driver);
        m.pull_seconds = telemetry.pull_seconds;
        m.account_seconds = telemetry.account_seconds;
        m.pull_segment_us = telemetry.pull_hist;
        m.simulate_segment_us = telemetry.simulate_hist;
        m.account_segment_us = telemetry.account_hist;
        m
    } else {
        JobMetrics {
            job_index: index,
            ..JobMetrics::default()
        }
    };
    job_metrics.segments = telemetry.segments;
    job_metrics.spec_commits = telemetry.spec_commits;
    job_metrics.spec_mispredicts = telemetry.spec_mispredicts;
    job_metrics.spec_replayed_accesses = telemetry.spec_replayed_accesses;
    Ok((result, job_metrics))
}

/// A task shipped to a pipeline helper thread.
enum Task {
    /// Fill this (cleared) buffer with the next segment and ship it back.
    Pull(Vec<MemAccess>),
    /// Replay this segment's tape into the accounting state, then recycle
    /// buffer and tape.
    Account(Vec<MemAccess>, OutcomeTape),
}

/// The account stage's owned state: classifiers, the optional timing model,
/// and (for kind-consuming probes) the probe's detached [`KindSink`].
pub(crate) struct AccountState {
    pub(crate) accounting: MissAccounting,
    pub(crate) timing: Option<TimingAccounting>,
    pub(crate) sink: Option<Box<dyn KindSink>>,
}

impl AccountState {
    /// Replays one segment into the accounting state — classifiers, the
    /// probe's kind sink, and the timing model when present.
    pub(crate) fn replay_segment(&mut self, accesses: &[MemAccess], tape: &OutcomeTape) {
        let Self {
            accounting,
            timing,
            sink,
        } = self;
        match sink {
            Some(sink) => accounting.replay_with_kinds(accesses, tape, |access, l1, l2| {
                sink.on_kinds(access, l1, l2)
            }),
            None => accounting.replay(accesses, tape),
        }
        if let Some(timing) = timing {
            for (index, access) in accesses.iter().enumerate() {
                let flags = tape.flags_at(index);
                if !flags.skipped {
                    timing.observe(access, flags.l1_miss, flags.offchip);
                }
            }
        }
    }
}

/// The owned state a helper needs for the stages it serves.  With three
/// threads each helper holds one half; with two threads the single helper
/// holds both.
struct HelperState {
    /// Pull stage: the live stream and its un-pulled access budget.
    stream: Option<(BoxedStream, usize)>,
    /// Account stage state, when this helper serves it.
    account: Option<AccountState>,
    /// Busy (non-idle) seconds spent pulling / accounting.
    pull_seconds: f64,
    account_seconds: f64,
    /// Per-segment stage latencies, microseconds.
    pull_hist: Histogram,
    account_hist: Histogram,
}

impl HelperState {
    fn new() -> HelperState {
        HelperState {
            stream: None,
            account: None,
            pull_seconds: 0.0,
            account_seconds: 0.0,
            pull_hist: Histogram::new(),
            account_hist: Histogram::new(),
        }
    }

    /// Serves tasks until the owner hangs up the task channel.
    fn serve(
        &mut self,
        segment_size: usize,
        tasks: mpsc::Receiver<Task>,
        pulled_tx: mpsc::Sender<Vec<MemAccess>>,
        recycle_tx: mpsc::Sender<(Vec<MemAccess>, OutcomeTape)>,
        recorder: &Recorder,
    ) {
        let mut pulls = 0u64;
        let mut accounts = 0u64;
        while let Ok(task) = tasks.recv() {
            match task {
                Task::Pull(mut buffer) => {
                    let mut span = recorder.span("seg.pull");
                    span.arg_u64("segment", pulls);
                    pulls += 1;
                    let watch = Stopwatch::started();
                    let (stream, remaining) =
                        self.stream.as_mut().expect("helper serves the pull stage");
                    let want = segment_size.min(*remaining);
                    let got = fill_segment(&mut **stream, &mut buffer, want);
                    *remaining -= got;
                    let seconds = watch.elapsed_seconds();
                    self.pull_seconds += seconds;
                    self.pull_hist.record(as_micros(seconds));
                    drop(span);
                    // Always respond, even with an empty buffer: the owner
                    // counts outstanding pulls and reads emptiness as
                    // end-of-stream.
                    if pulled_tx.send(buffer).is_err() {
                        break;
                    }
                }
                Task::Account(buffer, tape) => {
                    let mut span = recorder.span("seg.account");
                    span.arg_u64("segment", accounts);
                    accounts += 1;
                    let watch = Stopwatch::started();
                    let account = self
                        .account
                        .as_mut()
                        .expect("helper serves the account stage");
                    account.replay_segment(&buffer, &tape);
                    let seconds = watch.elapsed_seconds();
                    self.account_seconds += seconds;
                    self.account_hist.record(as_micros(seconds));
                    drop(span);
                    // Recycling is best-effort; the owner may be done.
                    let _ = recycle_tx.send((buffer, tape));
                }
            }
        }
    }
}

/// Everything the pipeline hands back to be merged into the job result.
pub(crate) struct PipelineEnd {
    pub(crate) system: MultiCpuSystem,
    pub(crate) prefetcher: BuiltPrefetcher,
    pub(crate) counts: SegmentCounts,
    pub(crate) account: AccountState,
    pub(crate) stream_error: Option<io::Error>,
}

/// One job's pipeline, owning all three stages' states before they are
/// distributed across threads.
pub(crate) struct Pipeline {
    pub(crate) system: MultiCpuSystem,
    pub(crate) prefetcher: BuiltPrefetcher,
    pub(crate) stream: BoxedStream,
    pub(crate) budget: usize,
    pub(crate) account: AccountState,
    pub(crate) plan: SegmentPlan,
    /// Submission index of the job, used to label per-thread trace tracks.
    pub(crate) job: usize,
    /// Span trace the pipeline threads record into (disabled = free no-op).
    pub(crate) trace: Trace,
}

impl Pipeline {
    /// Executes pull → simulate → account over the whole stream.  The
    /// calling thread always runs the simulate stage (it owns the
    /// heavyweight simulator state); helpers take the other stages
    /// according to `plan.threads`.  With speculation enabled and at least
    /// two threads, the simulate stage instead runs ahead on a dedicated
    /// worker under the verify-commit-replay protocol of
    /// [`crate::speculate`].
    pub(crate) fn run<M: DriverMeter>(self, meter: &mut M) -> (PipelineEnd, SegmentTelemetry) {
        if self.plan.speculation > 0 {
            let threads = self.plan.threads.clamp(1, 4);
            if threads >= 2 {
                return crate::speculate::run_speculative(self, meter, threads);
            }
        }
        match self.plan.threads.clamp(1, 3) {
            1 => self.run_inline(meter),
            threads => self.run_threaded(meter, threads),
        }
    }

    /// In-line pipeline: the same three stages and the same hand-off order,
    /// on one thread.  This is the reference the threaded paths reproduce
    /// bit for bit.
    fn run_inline<M: DriverMeter>(mut self, meter: &mut M) -> (PipelineEnd, SegmentTelemetry) {
        let segment_size = self.plan.segment_size.max(1);
        let recorder = self.trace.recorder(&format!("job{}.pipeline", self.job));
        let mut telemetry = SegmentTelemetry::default();
        let mut counts = SegmentCounts::default();
        let mut batch: Vec<PrefetchRequest> = Vec::new();
        let mut buffer = Vec::with_capacity(segment_size.min(1 << 20));
        let mut tape = OutcomeTape::new();
        let mut remaining = self.budget;
        while remaining > 0 {
            let segment = telemetry.segments;
            let want = segment_size.min(remaining);
            let mut span = recorder.span("seg.pull");
            span.arg_u64("segment", segment);
            let watch = Stopwatch::started();
            let got = fill_segment(&mut *self.stream, &mut buffer, want);
            let seconds = watch.elapsed_seconds();
            drop(span);
            telemetry.pull_seconds += seconds;
            telemetry.pull_hist.record(as_micros(seconds));
            remaining -= got;
            if got == 0 {
                break;
            }
            tape.clear();
            let mut span = recorder.span("seg.simulate");
            span.arg_u64("segment", segment);
            let watch = Stopwatch::started();
            memsim::run_segment_deferred(
                &mut self.system,
                &mut self.prefetcher,
                &buffer,
                &mut batch,
                &mut tape,
                &mut counts,
                meter,
            );
            telemetry
                .simulate_hist
                .record(as_micros(watch.elapsed_seconds()));
            drop(span);
            let mut span = recorder.span("seg.account");
            span.arg_u64("segment", segment);
            let watch = Stopwatch::started();
            self.account.replay_segment(&buffer, &tape);
            let seconds = watch.elapsed_seconds();
            drop(span);
            telemetry.account_seconds += seconds;
            telemetry.account_hist.record(as_micros(seconds));
            telemetry.segments += 1;
            if got < want {
                break;
            }
        }
        let stream_error = self.stream.take_error();
        (
            PipelineEnd {
                system: self.system,
                prefetcher: self.prefetcher,
                counts,
                account: self.account,
                stream_error,
            },
            telemetry,
        )
    }

    /// Threaded pipeline.  Channel topology:
    ///
    /// ```text
    ///   owner --Task::Pull(buffer)-----> helper --(filled buffer)--> owner
    ///   owner --Task::Account(b, tape)-> helper --(recycled b, t)--> owner
    /// ```
    ///
    /// With three threads the two task kinds go to two dedicated helpers;
    /// with two threads both kinds share one helper's FIFO, which preserves
    /// each stage's segment order automatically.  The owner simulates.
    ///
    /// Liveness: the owner only blocks on `pulled_rx` while it has pull
    /// tasks outstanding, and a helper answers every pull task with exactly
    /// one response (possibly empty = end of stream).  Channels are
    /// unbounded; memory is bounded by the [`BUFFERS`] buffers in
    /// circulation.
    fn run_threaded<M: DriverMeter>(
        mut self,
        meter: &mut M,
        threads: usize,
    ) -> (PipelineEnd, SegmentTelemetry) {
        let segment_size = self.plan.segment_size.max(1);
        let job = self.job;
        let trace = self.trace.clone();
        let mut telemetry = SegmentTelemetry::default();
        let mut counts = SegmentCounts::default();
        let mut batch: Vec<PrefetchRequest> = Vec::new();

        let (pulled_tx, pulled_rx) = mpsc::channel::<Vec<MemAccess>>();
        let (recycle_tx, recycle_rx) = mpsc::channel::<(Vec<MemAccess>, OutcomeTape)>();

        // A helper that panics (tape replay feeds a plugin's kind sink)
        // parks its payload here for the owner to re-raise.  The owner must
        // poll the slot from its blocking receives: with two helpers the
        // *other* helper's live senders would keep those receives from ever
        // erroring, which would otherwise turn the panic into a deadlock.
        let helper_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        let mut pull_state = HelperState {
            stream: Some((self.stream, self.budget)),
            ..HelperState::new()
        };
        let mut account_state = HelperState {
            account: Some(self.account),
            ..HelperState::new()
        };

        let (system, prefetcher) = std::thread::scope(|scope| {
            // Channel plumbing per thread count: with two threads one
            // helper owns both stages and both task kinds share its queue.
            let (pull_task_tx, pull_task_rx) = mpsc::channel::<Task>();
            let (account_task_tx, account_task_rx);
            let mut handles = Vec::new();
            if threads >= 3 {
                let (tx, rx) = mpsc::channel::<Task>();
                account_task_tx = tx;
                account_task_rx = Some(rx);
            } else {
                account_task_tx = pull_task_tx.clone();
                account_task_rx = None;
            }

            {
                let pulled_tx = pulled_tx.clone();
                let recycle_tx = recycle_tx.clone();
                let state = &mut pull_state;
                let label = if threads == 2 {
                    // Single helper: move the account stage in with the
                    // pull stage.
                    state.account = account_state.account.take();
                    format!("job{job}.helper")
                } else {
                    format!("job{job}.pull")
                };
                let trace = &trace;
                let helper_panic = &helper_panic;
                handles.push(scope.spawn(move || {
                    let recorder = trace.recorder(&label);
                    // Keep the response channels open until the slot is
                    // filled, so the owner never observes the hangup before
                    // the payload is available.
                    let keepalive = (pulled_tx.clone(), recycle_tx.clone());
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        state.serve(segment_size, pull_task_rx, pulled_tx, recycle_tx, &recorder);
                    }));
                    if let Err(payload) = caught {
                        *helper_panic.lock().unwrap() = Some(payload);
                    }
                    drop(keepalive);
                }));
            }
            if let Some(rx) = account_task_rx {
                let pulled_tx = pulled_tx.clone();
                let recycle_tx = recycle_tx.clone();
                let state = &mut account_state;
                let trace = &trace;
                let helper_panic = &helper_panic;
                handles.push(scope.spawn(move || {
                    let recorder = trace.recorder(&format!("job{job}.account"));
                    let keepalive = (pulled_tx.clone(), recycle_tx.clone());
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        state.serve(segment_size, rx, pulled_tx, recycle_tx, &recorder);
                    }));
                    if let Err(payload) = caught {
                        *helper_panic.lock().unwrap() = Some(payload);
                    }
                    drop(keepalive);
                }));
            }
            drop((pulled_tx, recycle_tx));

            // Re-raises a parked helper panic on the owner's thread, so it
            // reaches the engine's per-job `catch_unwind` with its original
            // message after the scope joins the surviving helper.
            let check_helper_panic = || {
                if let Some(payload) = helper_panic.lock().unwrap().take() {
                    std::panic::resume_unwind(payload);
                }
            };

            // The owner: prime the pull stage, then simulate each pulled
            // segment and hand its tape to the account stage, recycling
            // buffers into new pull requests as they come back.
            let recorder = trace.recorder(&format!("job{job}.simulate"));
            let mut tapes: Vec<OutcomeTape> = Vec::new();
            let mut pulls_outstanding = 0usize;
            let mut stream_done = false;
            for _ in 0..BUFFERS {
                if pull_task_tx.send(Task::Pull(Vec::new())).is_ok() {
                    pulls_outstanding += 1;
                }
            }
            while pulls_outstanding > 0 {
                let buffer = loop {
                    match pulled_rx.recv_timeout(Duration::from_millis(20)) {
                        Ok(buffer) => break buffer,
                        Err(mpsc::RecvTimeoutError::Timeout) => check_helper_panic(),
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            check_helper_panic();
                            panic!("pull helper hung up while pulls are outstanding");
                        }
                    }
                };
                pulls_outstanding -= 1;
                if buffer.len() < segment_size {
                    // A short (or empty) segment: the stream or the budget
                    // ran out; everything still queued will come back empty.
                    stream_done = true;
                }
                if !buffer.is_empty() {
                    let mut tape = tapes.pop().unwrap_or_default();
                    tape.clear();
                    let mut span = recorder.span("seg.simulate");
                    span.arg_u64("segment", telemetry.segments);
                    let watch = Stopwatch::started();
                    memsim::run_segment_deferred(
                        &mut self.system,
                        &mut self.prefetcher,
                        &buffer,
                        &mut batch,
                        &mut tape,
                        &mut counts,
                        meter,
                    );
                    telemetry
                        .simulate_hist
                        .record(as_micros(watch.elapsed_seconds()));
                    drop(span);
                    telemetry.segments += 1;
                    if account_task_tx.send(Task::Account(buffer, tape)).is_err() {
                        // The account helper only hangs up by panicking:
                        // stop pulling and drain, and the post-join check
                        // below re-raises its payload.
                        stream_done = true;
                    }
                }
                // Keep the pull stage fed: convert recycled buffers into new
                // pull requests.  While the stream may still deliver, at
                // least one pull must stay outstanding — block for a recycle
                // if necessary (one is always in flight here: every consumed
                // non-empty segment was sent to the account stage, and an
                // empty one set `stream_done`).
                while !stream_done {
                    let recycled = if pulls_outstanding == 0 {
                        loop {
                            match recycle_rx.recv_timeout(Duration::from_millis(20)) {
                                Ok(pair) => break Some(pair),
                                Err(mpsc::RecvTimeoutError::Timeout) => check_helper_panic(),
                                Err(mpsc::RecvTimeoutError::Disconnected) => {
                                    check_helper_panic();
                                    break None;
                                }
                            }
                        }
                    } else {
                        recycle_rx.try_recv().ok()
                    };
                    match recycled {
                        Some((buffer, tape)) => {
                            tapes.push(tape);
                            if pull_task_tx.send(Task::Pull(buffer)).is_ok() {
                                pulls_outstanding += 1;
                            } else {
                                stream_done = true;
                            }
                        }
                        None if pulls_outstanding == 0 => {
                            // Helpers hung up; nothing more can arrive.
                            stream_done = true;
                        }
                        None => break,
                    }
                }
            }
            drop(pull_task_tx);
            drop(account_task_tx);
            for handle in handles {
                handle.join().expect("pipeline helper panicked");
            }
            // A helper can panic on its final task after the owner is done
            // dispatching, leaving e.g. the accounting state half replayed:
            // re-raise rather than return state a caught panic corrupted.
            check_helper_panic();
            (self.system, self.prefetcher)
        });

        telemetry.pull_seconds = pull_state.pull_seconds + account_state.pull_seconds;
        telemetry.account_seconds = pull_state.account_seconds + account_state.account_seconds;
        telemetry.pull_hist.merge(&pull_state.pull_hist);
        telemetry.pull_hist.merge(&account_state.pull_hist);
        telemetry.account_hist.merge(&pull_state.account_hist);
        telemetry.account_hist.merge(&account_state.account_hist);
        let (mut stream, _) = pull_state.stream.take().expect("stream returns to owner");
        let stream_error = stream.take_error();
        let account = pull_state
            .account
            .take()
            .or_else(|| account_state.account.take())
            .expect("accounting returns to owner");
        (
            PipelineEnd {
                system,
                prefetcher,
                counts,
                account,
                stream_error,
            },
            telemetry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_jobs_in, run_jobs_metered, run_jobs_with, EngineConfig};
    use crate::spec::{OracleProbeSpec, PrefetcherSpec};
    use ghb::GhbConfig;
    use memsim::HierarchyConfig;
    use sms::{RegionConfig, SmsConfig};
    use timing::TimingConfig;
    use trace::{Application, GeneratorConfig, TraceSource};

    const ACCESSES: usize = 8_000;

    fn job(app: Application, prefetcher: PrefetcherSpec) -> SimJob {
        SimJob::new(memsim::SimJob::synthetic(
            app,
            GeneratorConfig::default().with_cpus(2),
            2006,
            2,
            HierarchyConfig::scaled(),
            prefetcher,
            ACCESSES,
        ))
    }

    /// Baselines, SMS, GHB and a timing job: every execution path segments.
    fn job_list() -> Vec<SimJob> {
        vec![
            job(Application::OltpDb2, PrefetcherSpec::null()),
            job(
                Application::Ocean,
                PrefetcherSpec::sms(&SmsConfig::paper_default()),
            ),
            job(
                Application::Sparse,
                PrefetcherSpec::ghb(&GhbConfig::paper_small()),
            ),
            job(Application::DssQry1, PrefetcherSpec::sms_paper_default())
                .with_timing(TimingConfig::table1(), 4),
        ]
    }

    #[test]
    fn segmented_results_are_bit_identical_across_sizes_and_threads() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        // Segment sizes hit: many tiny segments, a boundary exactly at the
        // budget (8000 % 1000 == 0), an odd size, and a segment larger than
        // the whole trace.  Worker budgets hit the inline (1), shared-helper
        // (2) and full three-stage (3+) pipelines.
        for segment_size in [97, 1_000, ACCESSES, 5 * ACCESSES] {
            for workers in [1, 2, 3, 6] {
                let config = EngineConfig::with_workers(workers).with_segment_size(segment_size);
                let segmented = run_jobs_with(&jobs, &config);
                assert_eq!(
                    serial, segmented,
                    "segment_size={segment_size} workers={workers} diverged from serial"
                );
                let a = serde_json::to_string(&serial).expect("serialize");
                let b = serde_json::to_string(&segmented).expect("serialize");
                assert_eq!(a, b, "byte-level divergence at {segment_size}/{workers}");
            }
        }
    }

    #[test]
    fn speculative_results_are_bit_identical_and_commit() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        // Thread budgets hit the owner-does-everything (2), account-helper
        // (3) and fully split (4+) speculative topologies.
        for depth in [1, 3] {
            for workers in [2, 3, 4, 8] {
                let config = EngineConfig::with_workers(workers)
                    .with_segment_size(1_000)
                    .with_speculation(depth);
                let (speculative, metrics) = run_jobs_metered(
                    &jobs,
                    &config,
                    Registry::builtin(),
                    &metrics::MetricsConfig::enabled(),
                )
                .expect("jobs prepare");
                assert_eq!(
                    serial, speculative,
                    "depth={depth} workers={workers} diverged from serial"
                );
                let a = serde_json::to_string(&serial).expect("serialize");
                let b = serde_json::to_string(&speculative).expect("serialize");
                assert_eq!(a, b, "byte-level divergence at depth={depth}/{workers}");
                for m in &metrics.jobs {
                    assert!(
                        m.spec_commits > 0,
                        "depth={depth} workers={workers} job={} committed nothing",
                        m.job_index
                    );
                    assert_eq!(m.spec_commits, m.segments);
                    assert_eq!(
                        m.spec_mispredicts, 0,
                        "chained speculation never mispredicts without fault injection"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_mispredicts_replay_and_stay_bit_identical() {
        let jobs = job_list();
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        // `mispredict_every = 1` faults every speculatively dispatched
        // segment (maximal wrong-path work); 3 faults periodically with
        // clean commits in between.
        for every in [1, 3] {
            for (index, job) in jobs.iter().enumerate() {
                let plan = SegmentPlan::new(500, 4)
                    .with_speculation(3)
                    .with_mispredict_every(every);
                let (result, m) = run_job_segmented(
                    index,
                    job,
                    Registry::builtin(),
                    &MetricsConfig::enabled(),
                    plan,
                )
                .expect("job runs");
                assert_eq!(serial[index], result, "every={every} job={index}");
                assert!(m.spec_mispredicts > 0, "fault injection must fire");
                assert!(m.spec_replayed_accesses > 0);
                assert_eq!(m.spec_commits, m.segments, "every segment still commits");
            }
        }
    }

    #[test]
    fn unforkable_probes_skip_fault_injection_but_still_speculate() {
        // The training prefetcher deliberately has no `fork` (sectored tag
        // arrays are not cheaply cloneable), so the fault-injection knob is
        // a no-op for it — clean-path speculation needs no snapshots and
        // still runs and commits.
        let jobs = vec![job(
            Application::Ocean,
            PrefetcherSpec::training(&crate::spec::TrainingSpec {
                trainer: sms::TrainerKind::LogicalSectored,
                region: RegionConfig::paper_default(),
                index_scheme: sms::IndexScheme::PcOffset,
                pht: sms::PhtCapacity::paper_default(),
                l1_capacity_bytes: 64 * 1024,
            }),
        )];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        let plan = SegmentPlan::new(1_000, 4)
            .with_speculation(2)
            .with_mispredict_every(1);
        let (result, m) = run_job_segmented(
            0,
            &jobs[0],
            Registry::builtin(),
            &MetricsConfig::enabled(),
            plan,
        )
        .expect("job runs");
        assert_eq!(serial[0], result);
        assert_eq!(m.spec_mispredicts, 0, "no fork, no injected faults");
        assert!(m.spec_commits > 0);
    }

    #[test]
    fn segment_plan_splits_the_thread_budget() {
        let config = EngineConfig::with_workers(6).with_segment_size(1_000);
        let plan = config.segment_plan().expect("segmentation on");
        assert_eq!(plan.threads, 3);
        assert_eq!(plan.segment_size, 1_000);
        assert_eq!(plan.speculation, 0);
        assert!(EngineConfig::with_workers(6).segment_plan().is_none());
        assert!(EngineConfig::with_workers(6)
            .with_segment_size(0)
            .segment_plan()
            .is_none());
        let serial_plan = EngineConfig::serial()
            .with_segment_size(500)
            .segment_plan()
            .expect("segmentation on");
        assert_eq!(
            serial_plan.threads, 1,
            "one worker means an inline pipeline"
        );
        // Speculation grants the pipeline a fourth thread (the speculative
        // simulate worker) when the budget allows.
        let spec_plan = EngineConfig::with_workers(6)
            .with_segment_size(1_000)
            .with_speculation(4)
            .segment_plan()
            .expect("segmentation on");
        assert_eq!(spec_plan.threads, 4);
        assert_eq!(spec_plan.speculation, 4);
        assert_eq!(spec_plan.mispredict_every, 0);
    }

    fn temp_file(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sms-engine-segment-{tag}-{}", std::process::id()))
    }

    fn recorded_trace(n: usize) -> Vec<trace::MemAccess> {
        Application::Ocean
            .stream(11, &GeneratorConfig::default().with_cpus(2))
            .take(n)
            .collect()
    }

    /// A file-backed job with an explicit access budget.
    fn file_job(path: &std::path::Path, accesses: usize) -> SimJob {
        SimJob::new(memsim::SimJob {
            source: TraceSource::binary_file(path.to_string_lossy()),
            cpus: 2,
            hierarchy: HierarchyConfig::scaled(),
            prefetcher: PrefetcherSpec::sms_paper_default(),
            accesses,
        })
    }

    #[test]
    fn trace_end_exactly_on_segment_boundary_matches_serial() {
        // 3000 recorded accesses, budget 3000, segments of 1000: the last
        // segment ends exactly at the trace end, with no empty tail segment
        // changing the result.
        let recorded = recorded_trace(3_000);
        let path = temp_file("boundary");
        trace::io::write_binary(std::fs::File::create(&path).unwrap(), &recorded).unwrap();
        let jobs = vec![file_job(&path, 3_000)];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        for workers in [1, 2, 3] {
            let segmented = run_jobs_with(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(1_000),
            );
            assert_eq!(serial, segmented, "workers={workers}");
            assert!(segmented[0].warnings.is_empty(), "no short-trace warning");
        }
        let speculative = run_jobs_with(
            &jobs,
            &EngineConfig::with_workers(4)
                .with_segment_size(1_000)
                .with_speculation(2),
        );
        assert_eq!(serial, speculative, "speculative boundary run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_larger_than_trace_matches_serial_and_warns_short() {
        // 500 recorded accesses against a 2000 budget with 10k segments:
        // one short segment, and the short_trace warning must survive
        // segmentation byte-for-byte.
        let recorded = recorded_trace(500);
        let path = temp_file("oversize");
        trace::io::write_binary(std::fs::File::create(&path).unwrap(), &recorded).unwrap();
        let jobs = vec![file_job(&path, 2_000)];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        assert_eq!(serial[0].warnings.len(), 1);
        assert_eq!(
            serial[0].warnings[0].kind,
            crate::runner::JobWarning::SHORT_TRACE
        );
        for workers in [1, 2, 3] {
            let segmented = run_jobs_with(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(10_000),
            );
            assert_eq!(serial, segmented, "workers={workers}");
        }
        let speculative = run_jobs_with(
            &jobs,
            &EngineConfig::with_workers(4)
                .with_segment_size(10_000)
                .with_speculation(3),
        );
        assert_eq!(serial, speculative, "speculative oversize run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_in_a_late_segment_fails_the_whole_job() {
        // A trace corrupted in its final records: the segmented run must
        // fail the job with the serial path's corrupt-mid-stream error — on
        // every thread count — not return a silently shortened summary.
        let recorded = recorded_trace(2_500);
        let mut bytes = Vec::new();
        trace::io::write_binary(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 9);
        let path = temp_file("corrupt-late");
        std::fs::write(&path, &bytes).unwrap();
        let jobs = vec![file_job(&path, 2_500)];

        let serial_err = run_jobs_in(&jobs, &EngineConfig::serial(), Registry::builtin())
            .expect_err("corrupt trace must fail serially");
        for workers in [1, 2, 3] {
            let err = run_jobs_in(
                &jobs,
                &EngineConfig::with_workers(workers).with_segment_size(1_000),
                Registry::builtin(),
            )
            .expect_err("corrupt trace must fail segmented");
            assert_eq!(serial_err, err, "workers={workers}");
            assert!(err.to_string().contains("corrupt mid-stream"), "{err}");
        }
        let err = run_jobs_in(
            &jobs,
            &EngineConfig::with_workers(4)
                .with_segment_size(1_000)
                .with_speculation(2),
            Registry::builtin(),
        )
        .expect_err("corrupt trace must fail speculatively");
        assert_eq!(serial_err, err, "speculative corrupt-late run");
        std::fs::remove_file(&path).ok();
    }

    /// The engine-owned half of the kind-counting probe: the [`KindSink`]
    /// that receives inline miss kinds from whichever stage classifies —
    /// the simulator itself on the serial path, the account stage's tape
    /// replay on segmented and speculative paths.
    struct KindCounter {
        classified: u64,
    }

    impl KindSink for KindCounter {
        fn on_kinds(
            &mut self,
            _access: &trace::MemAccess,
            l1: Option<memsim::MissKind>,
            _l2: Option<memsim::MissKind>,
        ) {
            if l1.is_some() {
                self.classified += 1;
            }
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    /// A probe that consumes miss kinds through the [`KindSink`] seam.  Its
    /// own `on_access` never reads the outcome's kind fields — that is the
    /// contract that lets it run with deferred classification.
    struct KindCountingProbe {
        inner: memsim::NullPrefetcher,
        counter: Option<Box<KindCounter>>,
    }

    impl memsim::Prefetcher for KindCountingProbe {
        fn on_access(
            &mut self,
            access: &trace::MemAccess,
            outcome: &memsim::SystemOutcome,
        ) -> Vec<memsim::PrefetchRequest> {
            self.inner.on_access(access, outcome)
        }

        fn name(&self) -> &str {
            "kind-counter"
        }
    }

    impl crate::plugin::Probe for KindCountingProbe {
        fn wants_miss_kinds(&self) -> bool {
            true
        }

        fn take_kind_sink(&mut self) -> Option<Box<dyn KindSink>> {
            self.counter.take().map(|c| c as Box<dyn KindSink>)
        }

        fn restore_kind_sink(&mut self, sink: Box<dyn KindSink>) {
            self.counter = Some(
                sink.into_any()
                    .downcast()
                    .expect("kind-counter sink round-trips"),
            );
        }

        fn into_report(self: Box<Self>) -> crate::plugin::ProbeReport {
            let classified = self.counter.as_ref().map_or(0, |c| c.classified);
            crate::plugin::ProbeReport::new("kind-counter", &classified)
        }
    }

    struct KindCountingPlugin;

    impl crate::plugin::PrefetcherPlugin for KindCountingPlugin {
        fn name(&self) -> &str {
            "kind-counter"
        }

        fn build(
            &self,
            _params: &serde_json::Value,
            _num_cpus: usize,
        ) -> Result<BuiltPrefetcher, crate::plugin::PluginError> {
            Ok(BuiltPrefetcher::new(KindCountingProbe {
                inner: memsim::NullPrefetcher::new(),
                counter: Some(Box::new(KindCounter { classified: 0 })),
            }))
        }
    }

    #[test]
    fn miss_kind_probes_segment_and_speculate_with_identical_kinds() {
        let mut registry = Registry::with_builtins();
        registry.register(std::sync::Arc::new(KindCountingPlugin));
        let jobs = vec![job(
            Application::OltpDb2,
            PrefetcherSpec {
                plugin: "kind-counter".to_string(),
                params: serde_json::Value::Null,
            },
        )];
        let serial = run_jobs_in(&jobs, &EngineConfig::serial(), &registry).expect("runs");
        let classified: u64 = serial[0]
            .probe
            .decode("kind-counter")
            .expect("kind-counter report");
        assert!(classified > 0, "the serial path delivers inline kinds");
        for (workers, speculate) in [(3, 0), (2, 2), (4, 3)] {
            let config = EngineConfig::with_workers(workers)
                .with_segment_size(1_000)
                .with_speculation(speculate);
            let segmented = run_jobs_in(&jobs, &config, &registry).expect("runs segmented");
            assert_eq!(
                serial, segmented,
                "workers={workers} speculate={speculate}: the account stage \
                 must feed the sink exactly the inline kinds"
            );
        }
    }

    #[test]
    fn density_and_oracle_probes_segment_equivalently() {
        // Passive measurement probes (Figures 4 and 5) exercise the probe
        // report path through the segment pipeline and the speculative
        // worker's state hand-off.
        let jobs = vec![
            job(
                Application::OltpDb2,
                PrefetcherSpec::density_probe(&RegionConfig::paper_default()),
            ),
            job(
                Application::Ocean,
                PrefetcherSpec::oracle_probe(&OracleProbeSpec {
                    regions: vec![RegionConfig::new(512, 64), RegionConfig::new(1024, 64)],
                    read_only: true,
                }),
            ),
        ];
        let serial = run_jobs_with(&jobs, &EngineConfig::serial());
        for (workers, speculate) in [(1, 0), (3, 0), (4, 2)] {
            let config = EngineConfig::with_workers(workers)
                .with_segment_size(777)
                .with_speculation(speculate);
            let segmented = run_jobs_with(&jobs, &config);
            assert_eq!(
                serial, segmented,
                "workers={workers} speculate={speculate} diverged"
            );
        }
    }
}
