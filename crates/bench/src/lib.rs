//! Benchmark harness crate.
//!
//! The Criterion benchmarks live in `benches/`:
//!
//! * `figures` — one benchmark per paper table/figure, each running a
//!   scaled-down version of the corresponding experiment from the
//!   `experiments` crate (the full-size runs are produced by the
//!   `sms-experiments` binary);
//! * `predictor_micro` — micro-benchmarks of the individual hardware
//!   structures (AGT, PHT, prediction registers, GHB, cache).
//!
//! This library only exposes the shared benchmark-scale configuration.

#![warn(missing_docs)]

use experiments::common::ExperimentConfig;
use memsim::HierarchyConfig;

/// The experiment scale used inside Criterion benchmark iterations: small
/// enough that a single iteration completes in tens of milliseconds, while
/// still exercising every code path of the full experiments.
///
/// Benchmarks pin the engine to one worker (`workers: 1`) so iteration
/// timings measure the simulation itself, not thread scheduling; the
/// `engine` benchmark group measures the parallel path explicitly.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        cpus: 1,
        accesses: 8_000,
        seed: 2006,
        hierarchy: HierarchyConfig::scaled(),
        workers: 1,
        segment_size: None,
        speculate: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        let c = bench_config();
        assert!(c.accesses <= 10_000);
        assert_eq!(c.cpus, 1);
    }
}
