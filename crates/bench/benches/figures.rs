//! One Criterion benchmark per table/figure of the paper.
//!
//! Each benchmark runs a scaled-down version of the corresponding experiment
//! (1 CPU, 8 k accesses, representative applications) so that `cargo bench`
//! exercises every experiment code path end-to-end.  The full-size figures
//! are regenerated with the `sms-experiments` binary.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use engine::EngineConfig;
use experiments::{
    agt_size, fig04_block_size, fig05_density, fig06_indexing, fig07_pht_size, fig08_training,
    fig09_pht_training, fig10_region_size, fig11_ghb_comparison, fig12_speedup, fig13_breakdown,
    table1,
};
use sms::PhtCapacity;
use std::hint::black_box;
use timing::TimingConfig;
use trace::Application;

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1_parameters", |b| {
        b.iter(|| {
            let sys = table1::system_table(&cfg.hierarchy, &TimingConfig::table1(), cfg.cpus);
            let apps = table1::application_table();
            black_box((sys.rows.len(), apps.rows.len()))
        })
    });

    group.bench_function("fig04_block_size", |b| {
        b.iter(|| black_box(fig04_block_size::run(&cfg, true).points.len()))
    });

    group.bench_function("fig05_density", |b| {
        b.iter(|| {
            black_box(
                fig05_density::run(&cfg, &[Application::OltpDb2, Application::Ocean])
                    .per_app
                    .len(),
            )
        })
    });

    group.bench_function("fig06_indexing", |b| {
        b.iter(|| black_box(fig06_indexing::run(&cfg, true).points.len()))
    });

    group.bench_function("fig07_pht_size", |b| {
        b.iter(|| black_box(fig07_pht_size::run(&cfg, true, &[]).points.len()))
    });

    group.bench_function("fig08_training", |b| {
        b.iter(|| {
            black_box(
                fig08_training::run(&cfg, true, PhtCapacity::Unbounded)
                    .points
                    .len(),
            )
        })
    });

    group.bench_function("fig09_pht_training", |b| {
        b.iter(|| black_box(fig09_pht_training::run(&cfg, true).points.len()))
    });

    group.bench_function("fig10_region_size", |b| {
        b.iter(|| black_box(fig10_region_size::run(&cfg, true).points.len()))
    });

    group.bench_function("agt_size", |b| {
        b.iter(|| black_box(agt_size::run(&cfg, true).points.len()))
    });

    group.bench_function("fig11_ghb_comparison", |b| {
        b.iter(|| {
            black_box(
                fig11_ghb_comparison::run(&cfg, &[Application::OltpDb2, Application::Sparse])
                    .points
                    .len(),
            )
        })
    });

    group.bench_function("fig12_speedup", |b| {
        b.iter(|| {
            black_box(
                fig12_speedup::run(&cfg, &[Application::Sparse, Application::WebApache])
                    .points
                    .len(),
            )
        })
    });

    group.bench_function("fig13_breakdown", |b| {
        b.iter(|| {
            black_box(
                fig13_breakdown::run(&cfg, &[Application::Sparse])
                    .points
                    .len(),
            )
        })
    });

    group.finish();
}

/// Benchmarks of the engine's execution paths themselves: the same job list
/// through the serial fallback and the sharded thread pool, so the overhead
/// (or win) of parallel execution is visible next to the figure timings.
fn bench_engine(c: &mut Criterion) {
    let cfg = bench_config();
    let jobs = fig11_ghb_comparison::jobs(&cfg, &[Application::OltpDb2, Application::Sparse]);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));

    group.bench_function("run_jobs_serial", |b| {
        b.iter(|| black_box(engine::run_jobs_with(&jobs, &EngineConfig::serial()).len()))
    });

    group.bench_function("run_jobs_2_workers", |b| {
        b.iter(|| black_box(engine::run_jobs_with(&jobs, &EngineConfig::with_workers(2)).len()))
    });

    group.finish();
}

criterion_group!(benches, bench_figures, bench_engine);
criterion_main!(benches);
