//! Micro-benchmarks of the individual hardware structures: the per-access
//! cost of the AGT, PHT, prediction registers, GHB and the cache model, plus
//! the end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ghb::{GhbConfig, GhbPredictor};
use memsim::{CacheConfig, HierarchyConfig, MultiCpuSystem, NullPrefetcher, SetAssocCache};
use sms::{
    ActiveGenerationTable, AgtConfig, IndexScheme, PatternHistoryTable, PhtCapacity, RegionConfig,
    SmsConfig, SmsPredictor, SmsPrefetcher, SpatialPattern,
};
use std::hint::black_box;
use trace::{AccessKind, Application, GeneratorConfig};

const OPS: u64 = 10_000;

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures");
    group.throughput(Throughput::Elements(OPS));

    group.bench_function("cache_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::l1_table1());
        b.iter(|| {
            for i in 0..OPS {
                black_box(cache.access((i * 192) % (1 << 20), AccessKind::Read));
            }
        })
    });

    group.bench_function("agt_record_access", |b| {
        let mut agt =
            ActiveGenerationTable::new(RegionConfig::paper_default(), AgtConfig::paper_default());
        b.iter(|| {
            for i in 0..OPS {
                let addr = (i * 7 * 64) % (1 << 22);
                black_box(agt.record_access(addr, 0x4000 + (i % 64) * 4));
            }
        })
    });

    group.bench_function("pht_insert_lookup", |b| {
        let mut pht = PatternHistoryTable::new(PhtCapacity::paper_default());
        let pattern = SpatialPattern::from_offsets(32, &[0, 3, 7, 12, 31]);
        b.iter(|| {
            for i in 0..OPS {
                pht.insert(i % 50_000, pattern);
                black_box(pht.lookup((i * 13) % 50_000));
            }
        })
    });

    group.bench_function("ghb_on_miss", |b| {
        let mut ghb = GhbPredictor::new(&GhbConfig::paper_large());
        b.iter(|| {
            for i in 0..OPS {
                let pc = 0x4000 + (i % 128) * 4;
                black_box(ghb.on_miss(pc, (i * 320) % (1 << 24)));
            }
        })
    });

    group.bench_function("sms_predictor_on_access", |b| {
        let mut predictor = SmsPredictor::new(&SmsConfig::paper_default());
        b.iter(|| {
            for i in 0..OPS {
                let addr = (i * 96) % (1 << 22);
                black_box(predictor.on_access(addr, 0x4000 + (i % 256) * 4));
                if i % 37 == 0 {
                    predictor.on_block_removed(addr);
                }
            }
        })
    });

    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let accesses = 20_000usize;
    group.throughput(Throughput::Elements(accesses as u64));
    let generator = GeneratorConfig::default().with_cpus(2);

    group.bench_function("baseline_oltp_20k", |b| {
        b.iter(|| {
            let mut system = MultiCpuSystem::new(2, &HierarchyConfig::scaled());
            let mut stream = Application::OltpDb2.stream(1, &generator);
            black_box(memsim::run(
                &mut system,
                &mut NullPrefetcher::new(),
                &mut stream,
                accesses,
            ))
        })
    });

    group.bench_function("sms_oltp_20k", |b| {
        b.iter(|| {
            let mut system = MultiCpuSystem::new(2, &HierarchyConfig::scaled());
            let mut sms = SmsPrefetcher::new(2, &SmsConfig::paper_default());
            let mut stream = Application::OltpDb2.stream(1, &generator);
            black_box(memsim::run(&mut system, &mut sms, &mut stream, accesses))
        })
    });

    group.bench_function("sms_idealized_dss_20k", |b| {
        b.iter(|| {
            let mut system = MultiCpuSystem::new(2, &HierarchyConfig::scaled());
            let config = SmsConfig::idealized(IndexScheme::PcOffset, RegionConfig::paper_default());
            let mut sms = SmsPrefetcher::new(2, &config);
            let mut stream = Application::DssQry1.stream(1, &generator);
            black_box(memsim::run(&mut system, &mut sms, &mut stream, accesses))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_structures, bench_end_to_end);
criterion_main!(benches);
