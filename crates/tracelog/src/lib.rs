//! Span-based pipeline tracing with Chrome trace-event export.
//!
//! The engine's counters (PR 4) say *that* simulate dominates; this crate
//! says *where time goes within and between stages*.  The design follows the
//! same telemetry contract as `crates/metrics`:
//!
//! - **Zero-cost when disabled.**  A disabled [`Trace`] hands out disabled
//!   [`Recorder`]s whose spans and events are no-ops that never read the
//!   clock and never allocate.  Simulation results are byte-identical with
//!   tracing on or off (pinned by `tests/metrics_telemetry.rs`).
//! - **The hot loop never locks.**  Each thread records into its own bounded
//!   ring buffer through a [`Recorder`]; buffers are drained into the shared
//!   collector exactly once, when the recorder is dropped.  When a ring
//!   overflows it drops the *oldest* events and counts them, so a trace is
//!   never silently truncated.
//! - **Run-relative microseconds.**  All timestamps are measured from the
//!   moment the trace was enabled, so exported files load directly into
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) with t=0 at the
//!   start of the run.
//!
//! ```
//! let trace = tracelog::Trace::enabled();
//! {
//!     let rec = trace.recorder("worker0");
//!     let mut span = rec.span("job");
//!     span.arg_u64("job", 0);
//!     // ... do the work ...
//! } // recorder drops: its ring drains into the trace
//! let json = trace.to_chrome_json().expect("enabled");
//! let check = tracelog::check_chrome_trace(&json, &["job"]).unwrap();
//! assert_eq!(check.spans, 1);
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod chrome;

pub use chrome::{check_chrome_trace, span_total_us, TraceCheck};

/// Default per-thread ring-buffer capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// A typed argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// Boolean argument.
    Bool(bool),
    /// Text argument.
    Text(String),
}

/// What kind of trace event a [`TraceEvent`] is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span: work that started at `start_us` and ran `dur_us`.
    Span {
        /// Run-relative start, microseconds.
        start_us: u64,
        /// Duration, microseconds.
        dur_us: u64,
    },
    /// A point-in-time event.
    Instant {
        /// Run-relative timestamp, microseconds.
        ts_us: u64,
    },
    /// A sampled gauge value (rendered as a counter track).
    Counter {
        /// Run-relative timestamp, microseconds.
        ts_us: u64,
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event.  Names are `&'static str` on purpose: recording a
/// span must not allocate.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (the span/track label in Perfetto).
    pub name: &'static str,
    /// Span, instant or counter payload.
    pub kind: EventKind,
    /// Typed arguments, shown in the Perfetto detail pane.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Run-relative sort key (span start / event timestamp), microseconds.
    fn ts_us(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_us, .. } => start_us,
            EventKind::Instant { ts_us } => ts_us,
            EventKind::Counter { ts_us, .. } => ts_us,
        }
    }
}

/// The drained log of one recorder: everything one thread observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadLog {
    /// Human-readable thread label (becomes the Perfetto track name).
    pub label: String,
    /// Synthetic thread id, unique per recorder within one [`Trace`].
    pub tid: u64,
    /// Recorded events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the ring buffer overflowed (oldest first).
    pub dropped: u64,
}

struct TraceInner {
    origin: Instant,
    next_tid: AtomicU64,
    ring_capacity: usize,
    collected: Mutex<Vec<ThreadLog>>,
}

/// A handle to one run's trace.  Cheap to clone (an `Arc` when enabled, a
/// `None` when disabled); clones feed the same collector.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Trace")
                .field("enabled", &true)
                .field("ring_capacity", &inner.ring_capacity)
                .finish(),
            None => f.debug_struct("Trace").field("enabled", &false).finish(),
        }
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A trace that records nothing: every recorder, span and event is a
    /// no-op that never reads the clock.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// An enabled trace with the default per-thread ring capacity.  The
    /// moment of this call is t=0 for every timestamp in the trace.
    pub fn enabled() -> Trace {
        Trace::enabled_with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled trace whose per-thread rings hold at most `ring_capacity`
    /// events (older events are dropped, and counted, on overflow).
    pub fn enabled_with_capacity(ring_capacity: usize) -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                origin: Instant::now(),
                next_tid: AtomicU64::new(1),
                ring_capacity: ring_capacity.max(1),
                collected: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this trace records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a per-thread recorder labelled `label`.  On a disabled trace
    /// this is free and the returned recorder no-ops.
    pub fn recorder(&self, label: &str) -> Recorder {
        match &self.inner {
            None => Recorder { inner: None },
            Some(inner) => {
                let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed);
                Recorder {
                    inner: Some(RecorderInner {
                        trace: Arc::clone(inner),
                        tid,
                        label: label.to_string(),
                        ring: RefCell::new(Ring {
                            events: VecDeque::new(),
                            capacity: inner.ring_capacity,
                            dropped: 0,
                        }),
                    }),
                }
            }
        }
    }

    /// Clones the logs drained so far.  Recorders that are still alive have
    /// not drained yet — drop them first.
    pub fn logs(&self) -> Vec<ThreadLog> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .collected
                .lock()
                .expect("trace collector lock")
                .clone(),
        }
    }

    /// Renders the drained logs as a Chrome trace-event JSON document, or
    /// `None` when the trace is disabled.  Events are sorted by timestamp so
    /// the document is monotonic; timestamps are run-relative microseconds.
    pub fn to_chrome_json(&self) -> Option<String> {
        self.inner.as_ref().map(|_| {
            serde_json::to_string_pretty(&chrome::to_chrome_value(&self.logs()))
                .expect("a Value tree always serializes")
        })
    }

    /// Writes the Chrome trace-event JSON to `path`.  Returns `Ok(false)`
    /// without touching the filesystem when the trace is disabled.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<bool> {
        match self.to_chrome_json() {
            None => Ok(false),
            Some(json) => {
                std::fs::write(path, json + "\n")?;
                Ok(true)
            }
        }
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

struct RecorderInner {
    trace: Arc<TraceInner>,
    tid: u64,
    label: String,
    ring: RefCell<Ring>,
}

impl RecorderInner {
    fn now_us(&self) -> u64 {
        self.trace.origin.elapsed().as_micros() as u64
    }
}

/// A per-thread event recorder.  Not `Sync`: each thread opens its own via
/// [`Trace::recorder`].  Dropping the recorder drains its ring into the
/// trace's collector (the only synchronized step).
pub struct Recorder {
    inner: Option<RecorderInner>,
}

impl Recorder {
    /// A recorder that records nothing (what a disabled trace hands out).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span named `name`.  The span ends (and is recorded) when the
    /// returned guard drops; on a disabled recorder nothing happens and the
    /// clock is never read.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(inner) => SpanGuard {
                active: Some(ActiveSpan {
                    rec: inner,
                    name,
                    start_us: inner.now_us(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// Records a point-in-time event.  `fill` attaches arguments and only
    /// runs when the recorder is enabled, so call sites pay nothing for
    /// argument construction when tracing is off.
    pub fn instant<F: FnOnce(&mut Args)>(&self, name: &'static str, fill: F) {
        if let Some(inner) = &self.inner {
            let mut args = Args(Vec::new());
            fill(&mut args);
            let event = TraceEvent {
                name,
                kind: EventKind::Instant {
                    ts_us: inner.now_us(),
                },
                args: args.0,
            };
            inner.ring.borrow_mut().push(event);
        }
    }

    /// Samples a gauge value (rendered as a counter track in Perfetto).
    pub fn counter(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            let event = TraceEvent {
                name,
                kind: EventKind::Counter {
                    ts_us: inner.now_us(),
                    value,
                },
                args: Vec::new(),
            };
            inner.ring.borrow_mut().push(event);
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ring = inner.ring.into_inner();
            let log = ThreadLog {
                label: inner.label,
                tid: inner.tid,
                events: ring.events.into_iter().collect(),
                dropped: ring.dropped,
            };
            inner
                .trace
                .collected
                .lock()
                .expect("trace collector lock")
                .push(log);
        }
    }
}

/// Argument builder handed to [`Recorder::instant`] and friends.
pub struct Args(Vec<(&'static str, ArgValue)>);

impl Args {
    /// Attaches an unsigned integer argument.
    pub fn u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.0.push((key, ArgValue::U64(value)));
        self
    }

    /// Attaches a signed integer argument.
    pub fn i64(&mut self, key: &'static str, value: i64) -> &mut Self {
        self.0.push((key, ArgValue::I64(value)));
        self
    }

    /// Attaches a floating-point argument.
    pub fn f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        self.0.push((key, ArgValue::F64(value)));
        self
    }

    /// Attaches a boolean argument.
    pub fn bool(&mut self, key: &'static str, value: bool) -> &mut Self {
        self.0.push((key, ArgValue::Bool(value)));
        self
    }

    /// Attaches a text argument.
    pub fn text(&mut self, key: &'static str, value: &str) -> &mut Self {
        self.0.push((key, ArgValue::Text(value.to_string())));
        self
    }
}

struct ActiveSpan<'a> {
    rec: &'a RecorderInner,
    name: &'static str,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// An in-flight span.  Recorded when dropped; arguments can be attached any
/// time before that.  Nest guards lexically and the enclosing span encloses
/// the inner one on the timeline.
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl SpanGuard<'_> {
    /// Attaches an unsigned integer argument to the span.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.active {
            active.args.push((key, ArgValue::U64(value)));
        }
    }

    /// Attaches a floating-point argument to the span.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if let Some(active) = &mut self.active {
            active.args.push((key, ArgValue::F64(value)));
        }
    }

    /// Attaches a text argument to the span.
    pub fn arg_text(&mut self, key: &'static str, value: &str) {
        if let Some(active) = &mut self.active {
            active.args.push((key, ArgValue::Text(value.to_string())));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let end_us = active.rec.now_us();
            let event = TraceEvent {
                name: active.name,
                kind: EventKind::Span {
                    start_us: active.start_us,
                    dur_us: end_us.saturating_sub(active.start_us),
                },
                args: active.args,
            };
            active.rec.ring.borrow_mut().push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_inert() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        let rec = trace.recorder("nothing");
        assert!(!rec.is_enabled());
        {
            let mut span = rec.span("never");
            span.arg_u64("k", 1);
        }
        rec.instant("never", |a| {
            a.u64("k", 2);
        });
        rec.counter("never", 3.0);
        drop(rec);
        assert!(trace.logs().is_empty());
        assert!(trace.to_chrome_json().is_none());
    }

    #[test]
    fn spans_nest_and_order_on_one_thread() {
        let trace = Trace::enabled();
        {
            let rec = trace.recorder("t0");
            let outer = rec.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = rec.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            drop(outer);
        }
        let logs = trace.logs();
        assert_eq!(logs.len(), 1);
        let log = &logs[0];
        assert_eq!(log.label, "t0");
        assert_eq!(log.dropped, 0);
        // Guards drop inner-first, so the inner span is recorded first.
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].name, "inner");
        assert_eq!(log.events[1].name, "outer");
        let (outer_start, outer_dur) = match log.events[1].kind {
            EventKind::Span { start_us, dur_us } => (start_us, dur_us),
            _ => panic!("outer must be a span"),
        };
        let (inner_start, inner_dur) = match log.events[0].kind {
            EventKind::Span { start_us, dur_us } => (start_us, dur_us),
            _ => panic!("inner must be a span"),
        };
        // The outer span encloses the inner span on the timeline.
        assert!(outer_start <= inner_start);
        assert!(inner_start + inner_dur <= outer_start + outer_dur);
        assert!(inner_dur <= outer_dur);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let trace = Trace::enabled_with_capacity(4);
        {
            let rec = trace.recorder("t0");
            for i in 0..10u64 {
                rec.instant("tick", |a| {
                    a.u64("i", i);
                });
            }
        }
        let logs = trace.logs();
        assert_eq!(logs.len(), 1);
        let log = &logs[0];
        assert_eq!(log.dropped, 6);
        assert_eq!(log.events.len(), 4);
        // The survivors are the newest four events, oldest dropped first.
        let survivors: Vec<u64> = log
            .events
            .iter()
            .map(|e| match e.args[0].1 {
                ArgValue::U64(v) => v,
                _ => panic!("u64 arg"),
            })
            .collect();
        assert_eq!(survivors, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recorders_on_many_threads_all_drain() {
        let trace = Trace::enabled();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let trace = trace.clone();
                scope.spawn(move || {
                    let rec = trace.recorder(&format!("thread{t}"));
                    let _span = rec.span("work");
                });
            }
        });
        let logs = trace.logs();
        assert_eq!(logs.len(), 4);
        let mut tids: Vec<u64> = logs.iter().map(|l| l.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4, "every recorder gets a distinct tid");
        assert!(logs.iter().all(|l| l.events.len() == 1));
    }
}
