//! Chrome trace-event export and validation.
//!
//! The export format is the JSON object flavor of the [trace-event format]
//! understood by `chrome://tracing` and Perfetto: a top-level
//! `{"traceEvents": [...]}` array of `"ph": "X"` complete events (spans),
//! `"ph": "i"` instants, `"ph": "C"` counters and `"ph": "M"` thread-name
//! metadata.  Timestamps are run-relative microseconds and the array is
//! sorted by timestamp, so a valid export is monotonic by construction —
//! which is exactly what [`check_chrome_trace`] (and the CI trace checker
//! built on it) verifies.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeSet;

use serde::Value;

use crate::{ArgValue, EventKind, ThreadLog};

/// The synthetic process id every event carries (one process per trace).
pub const PID: u64 = 1;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn args_value(args: &[(&'static str, ArgValue)]) -> Value {
    Value::Object(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(u) => Value::UInt(*u),
                    ArgValue::I64(i) => Value::Int(*i),
                    ArgValue::F64(f) => Value::Float(*f),
                    ArgValue::Bool(b) => Value::Bool(*b),
                    ArgValue::Text(s) => Value::String(s.clone()),
                };
                (k.to_string(), value)
            })
            .collect(),
    )
}

/// Renders drained thread logs as a Chrome trace-event [`Value`] tree.
///
/// Thread-name metadata events come first (timestamp 0), then every recorded
/// event sorted by `(timestamp, tid)`.  Rings that overflowed contribute a
/// `tracelog.dropped` instant so truncation is visible in the trace itself.
pub fn to_chrome_value(logs: &[ThreadLog]) -> Value {
    let mut logs: Vec<&ThreadLog> = logs.iter().collect();
    logs.sort_by_key(|l| l.tid);

    let mut events: Vec<(u64, u64, Value)> = Vec::new();
    for log in &logs {
        for event in &log.events {
            let value = match event.kind {
                EventKind::Span { start_us, dur_us } => obj(vec![
                    ("name", Value::String(event.name.to_string())),
                    ("ph", Value::String("X".to_string())),
                    ("ts", Value::UInt(start_us)),
                    ("dur", Value::UInt(dur_us)),
                    ("pid", Value::UInt(PID)),
                    ("tid", Value::UInt(log.tid)),
                    ("args", args_value(&event.args)),
                ]),
                EventKind::Instant { ts_us } => obj(vec![
                    ("name", Value::String(event.name.to_string())),
                    ("ph", Value::String("i".to_string())),
                    ("ts", Value::UInt(ts_us)),
                    ("s", Value::String("t".to_string())),
                    ("pid", Value::UInt(PID)),
                    ("tid", Value::UInt(log.tid)),
                    ("args", args_value(&event.args)),
                ]),
                EventKind::Counter { ts_us, value } => obj(vec![
                    ("name", Value::String(event.name.to_string())),
                    ("ph", Value::String("C".to_string())),
                    ("ts", Value::UInt(ts_us)),
                    ("pid", Value::UInt(PID)),
                    ("tid", Value::UInt(log.tid)),
                    ("args", obj(vec![("value", Value::Float(value))])),
                ]),
            };
            events.push((event.ts_us(), log.tid, value));
        }
        if log.dropped > 0 {
            let ts = log.events.first().map(|e| e.ts_us()).unwrap_or(0);
            events.push((
                ts,
                log.tid,
                obj(vec![
                    ("name", Value::String("tracelog.dropped".to_string())),
                    ("ph", Value::String("i".to_string())),
                    ("ts", Value::UInt(ts)),
                    ("s", Value::String("t".to_string())),
                    ("pid", Value::UInt(PID)),
                    ("tid", Value::UInt(log.tid)),
                    ("args", obj(vec![("dropped", Value::UInt(log.dropped))])),
                ]),
            ));
        }
    }
    events.sort_by_key(|(ts, tid, _)| (*ts, *tid));

    let mut trace_events: Vec<Value> = logs
        .iter()
        .map(|log| {
            obj(vec![
                ("name", Value::String("thread_name".to_string())),
                ("ph", Value::String("M".to_string())),
                ("ts", Value::UInt(0)),
                ("pid", Value::UInt(PID)),
                ("tid", Value::UInt(log.tid)),
                (
                    "args",
                    obj(vec![("name", Value::String(log.label.clone()))]),
                ),
            ])
        })
        .collect();
    trace_events.extend(events.into_iter().map(|(_, _, v)| v));

    obj(vec![
        ("displayTimeUnit", Value::String("ms".to_string())),
        ("traceEvents", Value::Array(trace_events)),
    ])
}

/// Summary of a validated Chrome trace, as produced by [`check_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events in the document (all phases).
    pub events: usize,
    /// `"ph": "X"` complete spans.
    pub spans: usize,
    /// Distinct span names seen.
    pub span_names: BTreeSet<String>,
    /// Total events dropped to ring overflow (`tracelog.dropped` instants).
    pub dropped: u64,
    /// Largest `ts + dur` over all spans: the run-relative end of the trace,
    /// microseconds.
    pub end_us: u64,
}

fn event_u64(event: &Value, key: &str) -> Result<u64, String> {
    match event.get(key) {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "event field {key:?} must be a non-negative integer, got {other:?}"
        )),
    }
}

/// Parses and validates a Chrome trace-event JSON document.
///
/// Checks, in order: the text is valid JSON with a non-empty `traceEvents`
/// array; every event has a name and a phase; spans/instants/counters carry
/// non-negative integer timestamps (and durations for spans); non-metadata
/// timestamps are monotonically non-decreasing in document order; and every
/// name in `required` appears among the span names.  Returns a [`TraceCheck`]
/// summary on success and a human-readable reason on failure.
pub fn check_chrome_trace(text: &str, required: &[&str]) -> Result<TraceCheck, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }

    let mut check = TraceCheck {
        events: events.len(),
        spans: 0,
        span_names: BTreeSet::new(),
        dropped: 0,
        end_us: 0,
    };
    let mut last_ts = 0u64;
    for (i, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let phase = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} ({name}) has no phase"))?;
        if phase == "M" {
            continue;
        }
        let ts = event_u64(event, "ts").map_err(|e| format!("event {i} ({name}): {e}"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i} ({name}) breaks timestamp monotonicity: ts {ts} after {last_ts}"
            ));
        }
        last_ts = ts;
        match phase {
            "X" => {
                let dur =
                    event_u64(event, "dur").map_err(|e| format!("event {i} ({name}): {e}"))?;
                check.spans += 1;
                check.span_names.insert(name.to_string());
                check.end_us = check.end_us.max(ts + dur);
            }
            "i" => {
                if name == "tracelog.dropped" {
                    if let Some(Value::UInt(d)) = event.get("args").and_then(|a| a.get("dropped")) {
                        check.dropped += *d;
                    }
                }
                check.end_us = check.end_us.max(ts);
            }
            "C" => {
                event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("counter event {i} ({name}) has no value"))?;
                check.end_us = check.end_us.max(ts);
            }
            other => {
                return Err(format!("event {i} ({name}) has unknown phase {other:?}"));
            }
        }
    }
    if check.spans == 0 {
        return Err("trace contains no spans".to_string());
    }
    for want in required {
        if !check.span_names.contains(*want) {
            return Err(format!(
                "required span {want:?} not present (have: {:?})",
                check.span_names
            ));
        }
    }
    Ok(check)
}

/// Sums the durations of every span named `name`, in microseconds.
pub fn span_total_us(text: &str, name: &str) -> Result<u64, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut total = 0u64;
    for event in events {
        if event.get("ph").and_then(Value::as_str) == Some("X")
            && event.get("name").and_then(Value::as_str) == Some(name)
        {
            total += event_u64(event, "dur")?;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn sample_trace() -> Trace {
        let trace = Trace::enabled();
        {
            let rec = trace.recorder("worker0");
            let outer = rec.span("job");
            {
                let mut inner = rec.span("seg.simulate");
                inner.arg_u64("segment", 0);
            }
            rec.instant("spec.mispredict", |a| {
                a.u64("segment", 3);
            });
            rec.counter("queue_depth", 2.0);
            drop(outer);
        }
        trace
    }

    #[test]
    fn export_round_trips_through_the_vendored_serde() {
        let trace = sample_trace();
        let json = trace.to_chrome_json().expect("enabled");
        // Parse back through the vendored stand-in and re-serialize: the
        // document survives a full round trip unchanged.
        let parsed: Value = serde_json::from_str(&json).expect("export parses");
        assert_eq!(
            serde_json::to_string_pretty(&parsed).expect("re-serializes"),
            json
        );
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        // 1 metadata + 2 spans + 1 instant + 1 counter.
        assert_eq!(events.len(), 5);
        let check = check_chrome_trace(&json, &["job", "seg.simulate"]).expect("valid trace");
        assert_eq!(check.spans, 2);
        assert_eq!(check.dropped, 0);
        assert!(check.span_names.contains("job"));
    }

    #[test]
    fn checker_rejects_missing_required_span() {
        let trace = sample_trace();
        let json = trace.to_chrome_json().expect("enabled");
        let err = check_chrome_trace(&json, &["seg.pull"]).expect_err("span absent");
        assert!(err.contains("seg.pull"), "{err}");
    }

    #[test]
    fn checker_rejects_garbage_and_non_monotonic_timestamps() {
        assert!(check_chrome_trace("not json", &[]).is_err());
        assert!(check_chrome_trace("{}", &[]).is_err());
        assert!(check_chrome_trace("{\"traceEvents\": []}", &[]).is_err());
        let out_of_order = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1, "args": {}},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1, "args": {}}
        ]}"#;
        let err = check_chrome_trace(out_of_order, &[]).expect_err("non-monotonic");
        assert!(err.contains("monotonicity"), "{err}");
    }

    #[test]
    fn dropped_events_surface_in_the_export() {
        let trace = Trace::enabled_with_capacity(2);
        {
            let rec = trace.recorder("t0");
            for _ in 0..5 {
                let _s = rec.span("tick");
            }
        }
        let json = trace.to_chrome_json().expect("enabled");
        let check = check_chrome_trace(&json, &["tick"]).expect("valid");
        assert_eq!(check.dropped, 3);
        assert_eq!(check.spans, 2);
    }

    #[test]
    fn span_totals_sum_per_name() {
        let trace = sample_trace();
        let json = trace.to_chrome_json().expect("enabled");
        let job = span_total_us(&json, "job").expect("job total");
        let sim = span_total_us(&json, "seg.simulate").expect("sim total");
        assert!(job >= sim);
        assert_eq!(span_total_us(&json, "absent").expect("absent total"), 0);
    }
}
