//! Deterministic fault injection for the serving stack.
//!
//! Fault tolerance is only trustworthy if it is *tested*, and fault tests
//! are only trustworthy if they are **deterministic** — a chaos suite that
//! rolls fresh dice every run cannot be bisected.  This crate provides the
//! two pieces the workspace's chaos harness (`tests/chaos.rs`) is built
//! from:
//!
//! * the **chaos plugin** ([`ChaosPlugin`], plugin name `"chaos"`): a
//!   registry plugin whose prefetcher never issues a prefetch — so a
//!   non-faulting chaos job is byte-identical to a `null`-prefetcher job —
//!   but misbehaves on a precise schedule given by its parameters: panic at
//!   the N-th observed access, sleep a fixed number of microseconds every
//!   N-th access, or hold its first access until a test opens a gate file
//!   ([`open_gate`]).  Threaded through the engine's ordinary plugin
//!   seam, it exercises panic isolation and deadline cancellation exactly
//!   where a buggy third-party plugin would;
//! * the **fault plan** ([`FaultPlan`]): a seeded, reproducible assignment
//!   of faults to the jobs of a submission, drawn from the vendored
//!   ChaCha8 generator.  The same seed always yields the same plan, so a
//!   failing chaos case is a constant, not a flake.
//!
//! Faults the plugin cannot express from inside a job — corrupt trace
//! files, dropped connections — get helpers here too
//! ([`write_corrupt_trace`]) or are driven directly by the harness.
//!
//! Everything is plain data and standard seams: when no fault is
//! configured, nothing in this crate runs — the production binaries do not
//! link it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use engine::{
    decode_params, BuiltPrefetcher, PluginError, PrefetcherPlugin, PrefetcherSpec, Probe, Registry,
};
use memsim::{PrefetchRequest, Prefetcher, SystemOutcome};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::Arc;
use trace::MemAccess;

/// Plugin name of the chaos prefetcher.
pub const PLUGIN_NAME: &str = "chaos";

/// One fault a job can carry, as stored in a [`FaultPlan`] and encoded in
/// the chaos plugin's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// No misbehavior: the job must stay byte-identical to a `null`
    /// prefetcher run.
    None,
    /// Panic when the prefetcher observes its `after`-th access (1-based).
    Panic {
        /// Access count at which the panic fires.
        after: u64,
    },
    /// Sleep `micros` microseconds at every `every`-th observed access —
    /// slow, never wrong; the deadline watchdog's prey.
    Delay {
        /// Period, in observed accesses.
        every: u64,
        /// Sleep length per firing, microseconds.
        micros: u64,
    },
    /// Hold the job's first observed access until the gate file for
    /// `token` exists (see [`open_gate`]), then run normally.  Lets a test
    /// keep a job occupying the scheduler for exactly as long as it needs —
    /// a provable condition instead of a timing bet.
    Gate {
        /// Gate identity; resolved to a path by [`gate_path`].
        token: u64,
    },
}

/// Wire form of the chaos plugin's parameter tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosParams {
    /// Fault kind: `"none"`, `"panic"` or `"delay"`.
    pub fault: String,
    /// For `"panic"`: the 1-based access count at which the panic fires
    /// (absent = the first access).
    pub after: Option<u64>,
    /// For `"delay"`: period in observed accesses (absent = every access).
    pub every: Option<u64>,
    /// For `"delay"`: sleep length per firing in microseconds (absent =
    /// 100).
    pub micros: Option<u64>,
    /// For `"gate"`: the gate identity (absent = 0).
    pub token: Option<u64>,
}

impl Fault {
    /// The chaos-plugin spec that injects this fault.
    pub fn spec(&self) -> PrefetcherSpec {
        let params = match *self {
            Fault::None => ChaosParams {
                fault: "none".to_string(),
                after: None,
                every: None,
                micros: None,
                token: None,
            },
            Fault::Panic { after } => ChaosParams {
                fault: "panic".to_string(),
                after: Some(after),
                every: None,
                micros: None,
                token: None,
            },
            Fault::Delay { every, micros } => ChaosParams {
                fault: "delay".to_string(),
                after: None,
                every: Some(every),
                micros: Some(micros),
                token: None,
            },
            Fault::Gate { token } => ChaosParams {
                fault: "gate".to_string(),
                after: None,
                every: None,
                micros: None,
                token: Some(token),
            },
        };
        PrefetcherSpec::custom(PLUGIN_NAME, &params)
    }

    /// Whether this fault panics the job.
    pub fn panics(&self) -> bool {
        matches!(self, Fault::Panic { .. })
    }
}

/// The chaos prefetcher: counts observed accesses and misbehaves on its
/// configured schedule; never issues a prefetch.
#[derive(Debug, Clone)]
struct ChaosPrefetcher {
    fault: Fault,
    seen: u64,
}

impl ChaosPrefetcher {
    fn observe(&mut self) {
        self.seen += 1;
        match self.fault {
            Fault::None => {}
            Fault::Panic { after } => {
                if self.seen >= after.max(1) {
                    panic!("injected chaos panic at access {}", self.seen);
                }
            }
            Fault::Delay { every, micros } => {
                if self.seen.is_multiple_of(every.max(1)) {
                    std::thread::sleep(std::time::Duration::from_micros(micros));
                }
            }
            Fault::Gate { token } => {
                if self.seen == 1 {
                    while !gate_path(token).exists() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

impl Prefetcher for ChaosPrefetcher {
    fn on_access(&mut self, _access: &MemAccess, _outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        self.observe();
        Vec::new()
    }

    fn on_access_into(
        &mut self,
        _access: &MemAccess,
        _outcome: &SystemOutcome,
        _out: &mut Vec<PrefetchRequest>,
    ) {
        self.observe();
    }

    fn name(&self) -> &str {
        PLUGIN_NAME
    }
}

impl Probe for ChaosPrefetcher {
    fn fork(&self) -> Option<Box<dyn Probe>> {
        Some(Box::new(self.clone()))
    }
}

/// The registry plugin wrapping [`ChaosPrefetcher`]; see the crate docs.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChaosPlugin;

impl PrefetcherPlugin for ChaosPlugin {
    fn name(&self) -> &str {
        PLUGIN_NAME
    }

    fn description(&self) -> &str {
        "fault-injection prefetcher: panics or stalls on a deterministic schedule, never prefetches"
    }

    fn build(
        &self,
        params: &serde_json::Value,
        _num_cpus: usize,
    ) -> Result<BuiltPrefetcher, PluginError> {
        let params: ChaosParams = decode_params(PLUGIN_NAME, params)?;
        let fault = match params.fault.as_str() {
            "none" => Fault::None,
            "panic" => Fault::Panic {
                after: params.after.unwrap_or(1),
            },
            "delay" => Fault::Delay {
                every: params.every.unwrap_or(1),
                micros: params.micros.unwrap_or(100),
            },
            "gate" => Fault::Gate {
                token: params.token.unwrap_or(0),
            },
            other => {
                return Err(PluginError::BadParams {
                    plugin: PLUGIN_NAME.to_string(),
                    message: format!(
                        "unknown fault kind {other:?} (expected \"none\", \"panic\", \
                         \"delay\" or \"gate\")"
                    ),
                })
            }
        };
        Ok(BuiltPrefetcher::new(ChaosPrefetcher { fault, seen: 0 }))
    }
}

/// The built-in registry plus the chaos plugin — what a chaos-enabled
/// server or test passes to the engine.
pub fn registry() -> Registry {
    let mut registry = Registry::with_builtins();
    registry.register(Arc::new(ChaosPlugin));
    registry
}

/// A seeded, reproducible assignment of faults to the jobs of one
/// submission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was drawn from.
    pub seed: u64,
    /// One fault per job, in submission order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Draws a plan for `jobs` jobs from `seed`: each job independently
    /// panics with probability `panic_p`, delays with probability
    /// `delay_p`, and otherwise runs clean.  The same arguments always
    /// yield the same plan.
    pub fn generate(seed: u64, jobs: usize, panic_p: f64, delay_p: f64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let faults = (0..jobs)
            .map(|_| {
                let roll: f64 = rng.gen();
                // Draw the fault parameters unconditionally so a job's
                // parameters do not depend on earlier jobs' outcomes.
                let after = rng.gen_range(1..200u64);
                let every = rng.gen_range(1..50u64);
                let micros = rng.gen_range(50..500u64);
                if roll < panic_p {
                    Fault::Panic { after }
                } else if roll < panic_p + delay_p {
                    Fault::Delay { every, micros }
                } else {
                    Fault::None
                }
            })
            .collect();
        Self { seed, faults }
    }

    /// Indices of the jobs this plan panics, ascending.
    pub fn panicking_jobs(&self) -> Vec<usize> {
        self.faults
            .iter()
            .enumerate()
            .filter(|(_, fault)| fault.panics())
            .map(|(index, _)| index)
            .collect()
    }

    /// The first panicking job, if any — the index the engine's
    /// lowest-index-error semantics will report.
    pub fn first_panicking_job(&self) -> Option<usize> {
        self.panicking_jobs().first().copied()
    }
}

/// The file whose existence opens gate `token`; see [`Fault::Gate`].
pub fn gate_path(token: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sms-chaos-gate-{token}"))
}

/// Opens gate `token`: every job blocked on [`Fault::Gate`] with this
/// token proceeds.
///
/// # Errors
///
/// Any I/O error creating the gate file.
pub fn open_gate(token: u64) -> std::io::Result<()> {
    std::fs::File::create(gate_path(token)).map(|_| ())
}

/// Removes gate `token`'s file, so the token starts closed if reused.
///
/// # Errors
///
/// Any I/O error removing the gate file (including it not existing).
pub fn close_gate(token: u64) -> std::io::Result<()> {
    std::fs::remove_file(gate_path(token))
}

/// Writes a file that fails the binary trace reader's header validation,
/// for trace-read fault cases.  The bytes are constant, so the resulting
/// error is too.
///
/// # Errors
///
/// Any I/O error creating or writing the file.
pub fn write_corrupt_trace(path: &std::path::Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(b"NOTATRACE\x00\x01corrupted header")?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let a = FaultPlan::generate(7, 12, 0.3, 0.3);
        let b = FaultPlan::generate(7, 12, 0.3, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, 12, 0.3, 0.3);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn probabilities_partition_the_fault_kinds() {
        let all_panic = FaultPlan::generate(1, 20, 1.0, 0.0);
        assert_eq!(all_panic.panicking_jobs().len(), 20);
        let all_delay = FaultPlan::generate(1, 20, 0.0, 1.0);
        assert!(all_delay
            .faults
            .iter()
            .all(|f| matches!(f, Fault::Delay { .. })));
        let all_clean = FaultPlan::generate(1, 20, 0.0, 0.0);
        assert!(all_clean.faults.iter().all(|f| *f == Fault::None));
        assert_eq!(all_clean.first_panicking_job(), None);
    }

    #[test]
    fn chaos_specs_build_through_the_registry() {
        let registry = registry();
        for fault in [
            Fault::None,
            Fault::Panic { after: 5 },
            Fault::Delay {
                every: 3,
                micros: 10,
            },
            Fault::Gate { token: 9 },
        ] {
            registry
                .build(&fault.spec(), 2)
                .expect("chaos spec must build");
        }
    }

    #[test]
    fn unknown_fault_kind_is_a_bad_params_error() {
        let registry = registry();
        let spec = PrefetcherSpec::custom(
            PLUGIN_NAME,
            &ChaosParams {
                fault: "explode".to_string(),
                after: None,
                every: None,
                micros: None,
                token: None,
            },
        );
        match registry.build(&spec, 2) {
            Err(PluginError::BadParams { plugin, .. }) => assert_eq!(plugin, PLUGIN_NAME),
            other => panic!("expected BadParams, got {other:?}"),
        }
    }

    #[test]
    fn faults_round_trip_through_specs() {
        let fault = Fault::Delay {
            every: 7,
            micros: 123,
        };
        let spec = fault.spec();
        assert_eq!(spec.plugin, PLUGIN_NAME);
        let params: ChaosParams = serde::Deserialize::from_value(&spec.params).unwrap();
        assert_eq!(params.fault, "delay");
        assert_eq!(params.every, Some(7));
        assert_eq!(params.micros, Some(123));

        let spec = Fault::Gate { token: 42 }.spec();
        let params: ChaosParams = serde::Deserialize::from_value(&spec.params).unwrap();
        assert_eq!(params.fault, "gate");
        assert_eq!(params.token, Some(42));
    }
}
