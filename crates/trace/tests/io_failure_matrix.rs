//! Failure-path matrix for the trace readers: short files and mid-file
//! corruption, exercised at every reader granularity — the whole-`Vec`
//! convenience wrappers, the streaming iterators, and the
//! [`TraceSource`]→[`AccessStream`] adapter the engine consumes — for both
//! the binary and the text format.
//!
//! The contract under test: a *short* trace (well-formed, just fewer records
//! than a consumer wants) streams cleanly and ends early with no error,
//! while *truncation* and *corruption* surface as `InvalidData` errors at
//! the exact granularity the caller reads at, after which the reader fuses.

use std::io;
use trace::io::{
    read_binary, read_binary_iter, read_text, read_text_iter, write_binary, write_text,
};
use trace::{Application, GeneratorConfig, MemAccess, TraceSource};

fn recorded(n: usize) -> Vec<MemAccess> {
    Application::Sparse
        .stream(7, &GeneratorConfig::default().with_cpus(2))
        .take(n)
        .collect()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "sms-io-failure-matrix-{tag}-{}",
        std::process::id()
    ))
}

/// Drains an opened trace source, returning the yielded accesses and the
/// recorded stream error, if any.
fn drain_source(source: &TraceSource) -> (Vec<MemAccess>, Option<io::Error>) {
    let mut stream = source.open().expect("source opens");
    let got: Vec<MemAccess> = (&mut *stream).collect();
    (got, stream.take_error())
}

// ---------------------------------------------------------------------------
// Binary: short (well-formed, fewer records than wanted)
// ---------------------------------------------------------------------------

#[test]
fn binary_short_file_streams_cleanly_at_every_granularity() {
    let trace = recorded(25);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &trace).unwrap();

    // Whole-vec: all records come back.
    assert_eq!(read_binary(bytes.as_slice()).unwrap(), trace);

    // Streaming iterator: 25 Ok items, then clean end.
    let iter = read_binary_iter(bytes.as_slice()).unwrap();
    let got: Vec<MemAccess> = iter.map(|r| r.expect("intact record")).collect();
    assert_eq!(got, trace);

    // Source adapter: ends early with NO recorded error — "short" is a
    // legitimate end of trace (the engine records a short_trace warning when
    // a job wanted more, but the stream itself is clean).
    let path = temp_path("bin-short");
    std::fs::write(&path, &bytes).unwrap();
    let (got, error) = drain_source(&TraceSource::binary_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace);
    assert!(error.is_none(), "a short trace is not an error");
}

// ---------------------------------------------------------------------------
// Binary: truncation mid-record
// ---------------------------------------------------------------------------

#[test]
fn binary_truncation_errors_at_every_granularity() {
    let trace = recorded(25);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &trace).unwrap();
    bytes.truncate(bytes.len() - 9); // slice the final record in half

    // Whole-vec: the read fails outright.
    let err = read_binary(bytes.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    // Streaming iterator: 24 intact records, then the error, then fused.
    let mut iter = read_binary_iter(bytes.as_slice()).unwrap();
    for expected in &trace[..24] {
        assert_eq!(&iter.next().unwrap().unwrap(), expected);
    }
    let err = iter.next().unwrap().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("truncated"), "{err}");
    assert!(iter.next().is_none(), "reader must fuse after the error");

    // Source adapter: the intact prefix streams, the error is recorded.
    let path = temp_path("bin-truncated");
    std::fs::write(&path, &bytes).unwrap();
    let (got, error) = drain_source(&TraceSource::binary_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace[..24]);
    let error = error.expect("truncation must be recorded");
    assert_eq!(error.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn binary_header_overcount_errors_like_truncation() {
    // A header promising more records than the body holds: the "file is
    // shorter than it claims" corruption, distinct from a clean short trace.
    let trace = recorded(10);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &trace).unwrap();
    bytes[5] = 11; // little-endian record count: one more than present

    let err = read_binary(bytes.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    let mut iter = read_binary_iter(bytes.as_slice()).unwrap();
    assert_eq!(iter.remaining(), 11);
    for expected in &trace {
        assert_eq!(&iter.next().unwrap().unwrap(), expected);
    }
    assert!(iter.next().unwrap().is_err());
    assert!(iter.next().is_none());

    let path = temp_path("bin-overcount");
    std::fs::write(&path, &bytes).unwrap();
    let (got, error) = drain_source(&TraceSource::binary_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace);
    assert!(error.is_some(), "overcount must surface as a stream error");
}

// ---------------------------------------------------------------------------
// Text: short and truncated-final-record
// ---------------------------------------------------------------------------

#[test]
fn text_short_file_streams_cleanly_at_every_granularity() {
    let trace = recorded(25);
    let mut bytes = Vec::new();
    write_text(&mut bytes, &trace).unwrap();

    assert_eq!(read_text(bytes.as_slice()).unwrap(), trace);

    let got: Vec<MemAccess> = read_text_iter(bytes.as_slice())
        .map(|r| r.expect("intact record"))
        .collect();
    assert_eq!(got, trace);

    let path = temp_path("text-short");
    std::fs::write(&path, &bytes).unwrap();
    let (got, error) = drain_source(&TraceSource::text_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace);
    assert!(error.is_none(), "a short trace is not an error");
}

#[test]
fn text_truncated_final_record_errors_at_every_granularity() {
    // The text analog of mid-record truncation: the last line lost its
    // trailing fields.
    let trace = recorded(10);
    let mut bytes = Vec::new();
    write_text(&mut bytes, &trace).unwrap();
    let text = String::from_utf8(bytes).unwrap();
    let cut = text.trim_end().rsplit_once(' ').unwrap().0.to_string();

    let err = read_text(cut.as_bytes()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("line 10"), "{err}");

    let mut iter = read_text_iter(cut.as_bytes());
    for expected in &trace[..9] {
        assert_eq!(&iter.next().unwrap().unwrap(), expected);
    }
    assert!(iter.next().unwrap().is_err());
    assert!(iter.next().is_none(), "reader must fuse after the error");

    let path = temp_path("text-truncated");
    std::fs::write(&path, &cut).unwrap();
    let (got, error) = drain_source(&TraceSource::text_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace[..9]);
    assert!(error.is_some(), "truncated record must be recorded");
}

// ---------------------------------------------------------------------------
// Text: corruption mid-file
// ---------------------------------------------------------------------------

#[test]
fn text_midfile_corruption_errors_at_every_granularity() {
    let trace = recorded(20);
    let mut bytes = Vec::new();
    write_text(&mut bytes, &trace).unwrap();
    let mut lines: Vec<String> = String::from_utf8(bytes)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    lines[10] = "0 Q not-a-number 0x40".to_string(); // corrupt record 11
    let corrupt = lines.join("\n");

    let err = read_text(corrupt.as_bytes()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("line 11"), "{err}");

    let mut iter = read_text_iter(corrupt.as_bytes());
    for expected in &trace[..10] {
        assert_eq!(&iter.next().unwrap().unwrap(), expected);
    }
    let err = iter.next().unwrap().unwrap_err();
    assert!(err.to_string().contains("line 11"), "{err}");
    assert!(iter.next().is_none(), "reader must fuse after the error");

    let path = temp_path("text-corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    let (got, error) = drain_source(&TraceSource::text_file(path.to_string_lossy()));
    std::fs::remove_file(&path).ok();
    assert_eq!(got, trace[..10]);
    let error = error.expect("corruption must be recorded");
    assert_eq!(error.kind(), io::ErrorKind::InvalidData);
}

// ---------------------------------------------------------------------------
// Binary: corruption that is *not* detectable (flipped payload byte) must
// still decode as data, not crash — documents the format's trust model.
// ---------------------------------------------------------------------------

#[test]
fn binary_payload_bitflips_decode_as_different_data() {
    let trace = recorded(10);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &trace).unwrap();
    // Flip a byte inside record 5's address field (header is 13 bytes,
    // records 18 each; addr occupies the last 8 bytes of the record).
    let offset = 13 + 5 * 18 + 12;
    bytes[offset] ^= 0xff;

    let back = read_binary(bytes.as_slice()).unwrap();
    assert_eq!(back.len(), trace.len());
    assert_ne!(back[5], trace[5], "the flipped record decodes differently");
    assert_eq!(back[..5], trace[..5]);
    assert_eq!(back[6..], trace[6..]);
}
