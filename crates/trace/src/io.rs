//! Trace serialization: compact binary and human-readable text formats.
//!
//! Experiments normally drive simulators directly from generators, but the
//! ability to persist and replay a trace makes runs reproducible across
//! machines and lets external tools inspect generated workloads.

use crate::access::{AccessKind, MemAccess};
use std::io::{self, BufRead, Read, Write};

/// Magic bytes identifying the binary trace format.
pub const MAGIC: &[u8; 4] = b"SMST";
/// Version of the binary trace format.
pub const VERSION: u8 = 1;

/// Writes a trace in the compact binary format.
///
/// Each record is 18 bytes: cpu (1), kind (1), pc (8), addr (8).
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_binary<W: Write>(mut w: W, accesses: &[MemAccess]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(accesses.len() as u64).to_le_bytes())?;
    for a in accesses {
        w.write_all(&[a.cpu, if a.kind.is_write() { 1 } else { 0 }])?;
        w.write_all(&a.pc.to_le_bytes())?;
        w.write_all(&a.addr.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace previously written with [`write_binary`].
///
/// # Errors
///
/// Returns `InvalidData` if the header is malformed or the stream is
/// truncated, and propagates underlying I/O errors.
pub fn read_binary<R: Read>(mut r: R) -> io::Result<Vec<MemAccess>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported trace version",
        ));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        let mut head = [0u8; 2];
        r.read_exact(&mut head)?;
        let mut pc = [0u8; 8];
        r.read_exact(&mut pc)?;
        let mut addr = [0u8; 8];
        r.read_exact(&mut addr)?;
        out.push(MemAccess {
            cpu: head[0],
            kind: if head[1] == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            pc: u64::from_le_bytes(pc),
            addr: u64::from_le_bytes(addr),
        });
    }
    Ok(out)
}

/// Writes a trace as one whitespace-separated record per line:
/// `cpu kind pc addr` with `pc`/`addr` in hex.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_text<W: Write>(mut w: W, accesses: &[MemAccess]) -> io::Result<()> {
    for a in accesses {
        writeln!(w, "{} {} {:#x} {:#x}", a.cpu, a.kind, a.pc, a.addr)?;
    }
    Ok(())
}

/// Reads a trace in the text format produced by [`write_text`].
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines and propagates I/O errors.
pub fn read_text<R: BufRead>(r: R) -> io::Result<Vec<MemAccess>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        fn parse(s: Option<&str>, lineno: usize) -> io::Result<&str> {
            s.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing field", lineno + 1),
                )
            })
        }
        let cpu: u8 = parse(parts.next(), lineno)?
            .parse()
            .map_err(bad_line(lineno))?;
        let kind = match parse(parts.next(), lineno)? {
            "R" => AccessKind::Read,
            "W" => AccessKind::Write,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad access kind {other:?}", lineno + 1),
                ))
            }
        };
        let pc = parse_hex(parse(parts.next(), lineno)?).map_err(bad_line(lineno))?;
        let addr = parse_hex(parse(parts.next(), lineno)?).map_err(bad_line(lineno))?;
        out.push(MemAccess {
            cpu,
            pc,
            addr,
            kind,
        });
    }
    Ok(out)
}

fn parse_hex(s: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
}

fn bad_line<E: std::fmt::Display>(lineno: usize) -> impl Fn(E) -> io::Error {
    move |e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {}: {e}", lineno + 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemAccess> {
        vec![
            MemAccess::read(0, 0x4000, 0x1_0000),
            MemAccess::write(3, 0x4010, 0x1_0040),
            MemAccess::read(15, 0xdead_beef, 0xffff_ffff_0000),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn text_round_trip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &trace).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 R 0x10 0x40\n";
        let back = read_text(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].addr, 0x40);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"XXXX\x01\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn text_rejects_bad_kind() {
        let err = read_text("0 Q 0x1 0x2\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_truncation() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }
}
