//! Trace serialization: compact binary and human-readable text formats.
//!
//! Experiments normally drive simulators directly from generators, but the
//! ability to persist and replay a trace makes runs reproducible across
//! machines and lets external tools inspect generated workloads.
//!
//! Reading is **streaming**: [`read_binary_iter`] and [`read_text_iter`]
//! yield one [`MemAccess`] at a time without buffering the whole trace, so a
//! multi-gigabyte file can feed a simulation directly (this is the path
//! [`TraceSource`](crate::source::TraceSource) uses).  The whole-`Vec`
//! convenience wrappers [`read_binary`] and [`read_text`] are built on top of
//! the iterators.

use crate::access::{AccessKind, MemAccess};
use std::io::{self, BufRead, Read, Seek, SeekFrom, Write};

/// Magic bytes identifying the binary trace format.
pub const MAGIC: &[u8; 4] = b"SMST";
/// Version of the binary trace format.
pub const VERSION: u8 = 1;
/// Bytes per binary record: cpu (1), kind (1), pc (8), addr (8).
pub const RECORD_BYTES: usize = 18;

/// Writes a trace in the compact binary format.
///
/// Each record is [`RECORD_BYTES`] bytes: cpu (1), kind (1), pc (8),
/// addr (8).
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_binary<W: Write>(mut w: W, accesses: &[MemAccess]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(accesses.len() as u64).to_le_bytes())?;
    for a in accesses {
        w.write_all(&[a.cpu, if a.kind.is_write() { 1 } else { 0 }])?;
        w.write_all(&a.pc.to_le_bytes())?;
        w.write_all(&a.addr.to_le_bytes())?;
    }
    Ok(())
}

/// A streaming reader over a binary trace: an iterator of
/// `io::Result<MemAccess>` that validates the header eagerly (in
/// [`read_binary_iter`]) and then decodes one record per `next` call.
///
/// After a record-level error the iterator fuses: subsequent `next` calls
/// return `None`.
#[derive(Debug)]
pub struct BinaryTraceReader<R> {
    reader: R,
    remaining: u64,
    failed: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Number of records the header promises are still unread.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn read_record(&mut self) -> io::Result<MemAccess> {
        let mut buf = [0u8; RECORD_BYTES];
        self.reader.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace truncated with {} records unread", self.remaining),
                )
            } else {
                e
            }
        })?;
        let mut pc = [0u8; 8];
        pc.copy_from_slice(&buf[2..10]);
        let mut addr = [0u8; 8];
        addr.copy_from_slice(&buf[10..18]);
        Ok(MemAccess {
            cpu: buf[0],
            kind: if buf[1] == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            pc: u64::from_le_bytes(pc),
            addr: u64::from_le_bytes(addr),
        })
    }
}

impl<R: Read + Seek> BinaryTraceReader<R> {
    /// Skips the next `n` records without decoding them — an O(1) seek,
    /// which is what makes positioned restart
    /// ([`TraceSource::open_at`](crate::source::TraceSource::open_at)) free
    /// for binary traces.  Skipping past the end of the trace leaves the
    /// reader exhausted (zero remaining), exactly as if the records had been
    /// read; it is not an error.
    ///
    /// # Errors
    ///
    /// Any I/O error from the underlying seek.
    pub fn skip_records(&mut self, n: u64) -> io::Result<()> {
        let skip = n.min(self.remaining);
        self.reader
            .seek(SeekFrom::Current((skip as i64) * (RECORD_BYTES as i64)))?;
        self.remaining -= skip;
        Ok(())
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = io::Result<MemAccess>;

    fn next(&mut self) -> Option<io::Result<MemAccess>> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let record = self.read_record();
        match &record {
            Ok(_) => self.remaining -= 1,
            Err(_) => self.failed = true,
        }
        Some(record)
    }
}

/// Opens a streaming reader over a trace written with [`write_binary`].
///
/// The header (magic, version, record count) is validated immediately; the
/// records themselves are decoded lazily, one per iterator step, so the
/// whole trace is never buffered in memory.
///
/// # Errors
///
/// Returns `InvalidData` if the header is malformed; each iterator item can
/// further yield `InvalidData` (truncation) or an underlying I/O error.
pub fn read_binary_iter<R: Read>(mut r: R) -> io::Result<BinaryTraceReader<R>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported trace version",
        ));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    Ok(BinaryTraceReader {
        reader: r,
        remaining: u64::from_le_bytes(len_bytes),
        failed: false,
    })
}

/// Reads a whole trace previously written with [`write_binary`].
///
/// # Errors
///
/// Returns `InvalidData` if the header is malformed or the stream is
/// truncated, and propagates underlying I/O errors.
pub fn read_binary<R: Read>(r: R) -> io::Result<Vec<MemAccess>> {
    read_binary_iter(r)?.collect()
}

/// Writes a trace as one whitespace-separated record per line:
/// `cpu kind pc addr` with `pc`/`addr` in hex.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_text<W: Write>(mut w: W, accesses: &[MemAccess]) -> io::Result<()> {
    for a in accesses {
        writeln!(w, "{} {} {:#x} {:#x}", a.cpu, a.kind, a.pc, a.addr)?;
    }
    Ok(())
}

/// A streaming reader over a text trace: an iterator of
/// `io::Result<MemAccess>` that parses one line per `next` call, skipping
/// blank lines and `#` comments.
///
/// After a parse or I/O error the iterator fuses: subsequent `next` calls
/// return `None`.
#[derive(Debug)]
pub struct TextTraceReader<R> {
    lines: io::Lines<R>,
    lineno: usize,
    failed: bool,
}

impl<R: BufRead> Iterator for TextTraceReader<R> {
    type Item = io::Result<MemAccess>;

    fn next(&mut self) -> Option<io::Result<MemAccess>> {
        if self.failed {
            return None;
        }
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            self.lineno += 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parsed = parse_text_record(line, self.lineno);
            if parsed.is_err() {
                self.failed = true;
            }
            return Some(parsed);
        }
    }
}

/// Opens a streaming reader over a trace in the format written by
/// [`write_text`].  Parse errors surface as `InvalidData` items naming the
/// offending line.
pub fn read_text_iter<R: BufRead>(r: R) -> TextTraceReader<R> {
    TextTraceReader {
        lines: r.lines(),
        lineno: 0,
        failed: false,
    }
}

/// Reads a whole trace in the text format produced by [`write_text`].
///
/// # Errors
///
/// Returns `InvalidData` for malformed lines and propagates I/O errors.
pub fn read_text<R: BufRead>(r: R) -> io::Result<Vec<MemAccess>> {
    read_text_iter(r).collect()
}

fn parse_text_record(line: &str, lineno: usize) -> io::Result<MemAccess> {
    let mut parts = line.split_whitespace();
    let mut next_field = |what: &str| {
        parts.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: missing {what}"),
            )
        })
    };
    let cpu: u8 = next_field("cpu")?.parse().map_err(bad_line(lineno))?;
    let kind = match next_field("access kind")? {
        "R" => AccessKind::Read,
        "W" => AccessKind::Write,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {lineno}: bad access kind {other:?}"),
            ))
        }
    };
    let pc = parse_hex(next_field("pc")?).map_err(bad_line(lineno))?;
    let addr = parse_hex(next_field("addr")?).map_err(bad_line(lineno))?;
    Ok(MemAccess {
        cpu,
        pc,
        addr,
        kind,
    })
}

fn parse_hex(s: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    }
}

fn bad_line<E: std::fmt::Display>(lineno: usize) -> impl Fn(E) -> io::Error {
    move |e| io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<MemAccess> {
        vec![
            MemAccess::read(0, 0x4000, 0x1_0000),
            MemAccess::write(3, 0x4010, 0x1_0040),
            MemAccess::read(15, 0xdead_beef, 0xffff_ffff_0000),
        ]
    }

    #[test]
    fn binary_round_trip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn binary_iter_streams_without_buffering() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        let mut iter = read_binary_iter(buf.as_slice()).unwrap();
        assert_eq!(iter.remaining(), 3);
        assert_eq!(iter.next().unwrap().unwrap(), trace[0]);
        assert_eq!(iter.remaining(), 2);
        let rest: Vec<MemAccess> = iter.map(Result::unwrap).collect();
        assert_eq!(rest, trace[1..]);
    }

    #[test]
    fn text_round_trip() {
        let trace = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &trace).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 R 0x10 0x40\n";
        let back = read_text(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].addr, 0x40);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"XXXX\x01\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_bad_version() {
        let err = read_binary(&b"SMST\x7f\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_truncation_is_an_error_not_a_panic() {
        let trace = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());

        // The streaming reader yields the intact records, then the error,
        // then fuses.
        let mut iter = read_binary_iter(buf.as_slice()).unwrap();
        assert_eq!(iter.next().unwrap().unwrap(), trace[0]);
        assert_eq!(iter.next().unwrap().unwrap(), trace[1]);
        let err = iter.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(iter.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn binary_header_alone_is_an_empty_trace() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        let mut iter = read_binary_iter(buf.as_slice()).unwrap();
        assert_eq!(iter.remaining(), 0);
        assert!(iter.next().is_none());
    }

    #[test]
    fn binary_corrupt_header_count_reports_truncation() {
        // A header that promises more records than the stream contains.
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[5] = 200; // inflate the little-endian record count
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn text_rejects_bad_kind() {
        let err = read_text("0 Q 0x1 0x2\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn text_iter_reports_line_numbers_and_fuses() {
        let text = "0 R 0x10 0x40\nnot a record\n0 R 0x10 0x80\n";
        let mut iter = read_text_iter(text.as_bytes());
        assert!(iter.next().unwrap().is_ok());
        let err = iter.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(iter.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn text_rejects_missing_fields() {
        let err = read_text("0 R 0x1\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("missing"));
    }
}
