//! Interleaving of per-processor access streams into a single global order.

use crate::access::MemAccess;
use crate::stream::{AccessStream, BoxedStream};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::rng::stream_rng;

/// Merges several per-CPU streams into one globally-interleaved stream.
///
/// The interleaver models the loose, bursty interleaving seen on a real
/// multiprocessor: it repeatedly picks a processor at random and drains a
/// short burst of its accesses before switching.  Burst lengths default to a
/// handful of accesses so that independent spatial regions from different
/// processors and transactions interleave heavily, which is the property the
/// paper's AGT design specifically targets.
pub struct Interleaver {
    name: String,
    streams: Vec<BoxedStream>,
    rng: ChaCha8Rng,
    burst: usize,
    current: usize,
    remaining_in_burst: usize,
    exhausted: Vec<bool>,
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("name", &self.name)
            .field("streams", &self.streams.len())
            .field("burst", &self.burst)
            .finish()
    }
}

impl Interleaver {
    /// Creates an interleaver over `streams` with the default burst length.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn new(name: impl Into<String>, streams: Vec<BoxedStream>, seed: u64) -> Self {
        Self::with_burst(name, streams, seed, 4)
    }

    /// Creates an interleaver with an explicit maximum burst length.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `burst` is zero.
    pub fn with_burst(
        name: impl Into<String>,
        streams: Vec<BoxedStream>,
        seed: u64,
        burst: usize,
    ) -> Self {
        assert!(!streams.is_empty(), "interleaver needs at least one stream");
        assert!(burst >= 1, "burst length must be at least 1");
        let n = streams.len();
        Self {
            name: name.into(),
            streams,
            rng: stream_rng(seed, 0xC0FFEE),
            burst,
            current: 0,
            remaining_in_burst: 0,
            exhausted: vec![false; n],
        }
    }

    fn pick_next_stream(&mut self) {
        let live: Vec<usize> = (0..self.streams.len())
            .filter(|&i| !self.exhausted[i])
            .collect();
        if live.is_empty() {
            self.remaining_in_burst = 0;
            return;
        }
        let idx = live[self.rng.gen_range(0..live.len())];
        self.current = idx;
        self.remaining_in_burst = self.rng.gen_range(1..=self.burst);
    }
}

impl Iterator for Interleaver {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        loop {
            if self.exhausted.iter().all(|&e| e) {
                return None;
            }
            if self.remaining_in_burst == 0 || self.exhausted[self.current] {
                self.pick_next_stream();
                if self.exhausted.iter().all(|&e| e) {
                    return None;
                }
            }
            match self.streams[self.current].next() {
                Some(access) => {
                    self.remaining_in_burst -= 1;
                    return Some(access);
                }
                None => {
                    self.exhausted[self.current] = true;
                    self.remaining_in_burst = 0;
                }
            }
        }
    }
}

impl AccessStream for Interleaver {
    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::VecStream;

    fn cpu_stream(cpu: u8, n: usize) -> BoxedStream {
        let accesses: Vec<_> = (0..n)
            .map(|i| MemAccess::read(cpu, 0x1000 + cpu as u64, (i as u64) * 64))
            .collect();
        Box::new(VecStream::new(format!("cpu{cpu}"), accesses))
    }

    #[test]
    fn yields_all_accesses_from_all_streams() {
        let streams = vec![cpu_stream(0, 100), cpu_stream(1, 50), cpu_stream(2, 75)];
        let inter = Interleaver::new("mix", streams, 1);
        let all: Vec<_> = inter.collect();
        assert_eq!(all.len(), 225);
        assert_eq!(all.iter().filter(|a| a.cpu == 0).count(), 100);
        assert_eq!(all.iter().filter(|a| a.cpu == 1).count(), 50);
        assert_eq!(all.iter().filter(|a| a.cpu == 2).count(), 75);
    }

    #[test]
    fn per_cpu_order_is_preserved() {
        let streams = vec![cpu_stream(0, 200), cpu_stream(1, 200)];
        let inter = Interleaver::new("mix", streams, 2);
        let all: Vec<_> = inter.collect();
        for cpu in 0..2u8 {
            let addrs: Vec<u64> = all
                .iter()
                .filter(|a| a.cpu == cpu)
                .map(|a| a.addr)
                .collect();
            let mut sorted = addrs.clone();
            sorted.sort_unstable();
            assert_eq!(addrs, sorted, "cpu {cpu} order was not preserved");
        }
    }

    #[test]
    fn interleaving_actually_switches_cpus() {
        let streams = vec![cpu_stream(0, 500), cpu_stream(1, 500)];
        let inter = Interleaver::new("mix", streams, 3);
        let all: Vec<_> = inter.collect();
        let switches = all.windows(2).filter(|w| w[0].cpu != w[1].cpu).count();
        assert!(switches > 50, "only {switches} cpu switches observed");
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let streams = vec![cpu_stream(0, 100), cpu_stream(1, 100)];
            Interleaver::new("mix", streams, 99).collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streams_rejected() {
        let _ = Interleaver::new("empty", vec![], 0);
    }
}
