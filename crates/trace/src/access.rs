//! Fundamental trace record types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical (or simulated-physical) byte address.
pub type Addr = u64;

/// A program-counter value identifying the instruction that issued an access.
pub type Pc = u64;

/// Whether a memory access reads or writes its target block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (or instruction fetch treated as a load).
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// A single memory reference in a trace.
///
/// The trace carries the global interleaved order of references from all
/// simulated processors; each record names the issuing processor, the program
/// counter of the instruction, the byte address touched and whether the access
/// is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Index of the issuing processor (0-based).
    pub cpu: u8,
    /// Program counter of the load/store instruction.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Creates a read access.
    pub fn read(cpu: u8, pc: Pc, addr: Addr) -> Self {
        Self {
            cpu,
            pc,
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub fn write(cpu: u8, pc: Pc, addr: Addr) -> Self {
        Self {
            cpu,
            pc,
            addr,
            kind: AccessKind::Write,
        }
    }

    /// Address of the cache block containing this access, for the given
    /// power-of-two `block_size` in bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `block_size` is not a power of two.
    pub fn block_addr(&self, block_size: u64) -> Addr {
        debug_assert!(block_size.is_power_of_two());
        self.addr & !(block_size - 1)
    }

    /// Base address of the spatial region containing this access, for the
    /// given power-of-two `region_size` in bytes.
    pub fn region_base(&self, region_size: u64) -> Addr {
        debug_assert!(region_size.is_power_of_two());
        self.addr & !(region_size - 1)
    }

    /// Offset of the accessed block within its spatial region, measured in
    /// cache blocks.
    pub fn region_offset(&self, region_size: u64, block_size: u64) -> u32 {
        debug_assert!(region_size.is_power_of_two());
        debug_assert!(block_size.is_power_of_two());
        ((self.addr & (region_size - 1)) / block_size) as u32
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu{} {} pc={:#x} addr={:#x}",
            self.cpu, self.kind, self.pc, self.addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_masks_low_bits() {
        let a = MemAccess::read(0, 0x400, 0x12345);
        assert_eq!(a.block_addr(64), 0x12340);
        assert_eq!(a.block_addr(128), 0x12300);
    }

    #[test]
    fn region_base_and_offset_agree() {
        let a = MemAccess::read(1, 0x400, 0x1_2345);
        let region = 2048;
        let block = 64;
        let base = a.region_base(region);
        let off = a.region_offset(region, block);
        assert_eq!(base % region, 0);
        assert!(u64::from(off) < region / block);
        assert_eq!(base + u64::from(off) * block, a.block_addr(block));
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn display_formats() {
        let a = MemAccess::write(3, 0x10, 0x20);
        let s = format!("{a}");
        assert!(s.contains("cpu3"));
        assert!(s.contains('W'));
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemAccess::read(0, 1, 2).kind, AccessKind::Read);
        assert_eq!(MemAccess::write(0, 1, 2).kind, AccessKind::Write);
    }
}
