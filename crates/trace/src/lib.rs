//! Synthetic memory-access trace generation for the Spatial Memory Streaming
//! (ISCA 2006) reproduction.
//!
//! The original paper evaluates SMS on memory reference traces collected with
//! the FLEXUS full-system simulator running commercial (TPC-C OLTP on DB2 and
//! Oracle, TPC-H decision support, SPECweb on Apache and Zeus) and scientific
//! (em3d, ocean, sparse) workloads.  Those traces are proprietary, so this
//! crate provides deterministic, seedable workload generators that reproduce
//! the *structural* properties the paper relies on:
//!
//! * code-correlated spatial access patterns spanning multi-kilobyte regions
//!   (database buffer-pool pages, packet buffers, matrix rows);
//! * heavy interleaving of accesses to many concurrently-live regions
//!   (OLTP transactions, web connections);
//! * once-visited data swept by scans and joins (DSS), which only a
//!   PC-indexed predictor can cover;
//! * dense, regular traversals (scientific kernels); and
//! * read/write sharing between processors, which terminates spatial region
//!   generations through invalidations.
//!
//! # Quick example
//!
//! ```
//! use trace::{Application, GeneratorConfig};
//!
//! let config = GeneratorConfig::default().with_cpus(2);
//! let mut stream = Application::OltpDb2.stream(42, &config);
//! let accesses: Vec<_> = (&mut stream).take(1000).collect();
//! assert_eq!(accesses.len(), 1000);
//! assert!(accesses.iter().all(|a| (a.cpu as usize) < 2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod config;
pub mod interleave;
pub mod io;
pub mod rng;
pub mod source;
pub mod stream;
pub mod suite;
pub mod workloads;

pub use access::{AccessKind, Addr, MemAccess, Pc};
pub use config::GeneratorConfig;
pub use interleave::Interleaver;
pub use source::{retry_transient, ReplayStream, TraceSource};
pub use stream::{fill_segment, AccessStream, BoxedStream};
pub use suite::{Application, ApplicationClass};
