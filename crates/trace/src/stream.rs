//! The [`AccessStream`] abstraction over trace sources.

use crate::access::MemAccess;

/// An infinite (or very long) stream of memory accesses.
///
/// All workload generators implement this trait; so do trace readers and the
/// [`Interleaver`](crate::interleave::Interleaver).  The trait is
/// object-safe, allowing heterogeneous collections of workloads
/// (`Vec<BoxedStream>`) in the experiment harness.
pub trait AccessStream: Iterator<Item = MemAccess> {
    /// A short, human-readable name for this stream (used in reports).
    fn name(&self) -> &str;

    /// The error that ended the stream early, if any.
    ///
    /// Synthetic generators never fail; file-backed replay streams end at
    /// the first corrupt record and report it here, so drivers can
    /// distinguish "trace exhausted" from "trace corrupt".
    fn take_error(&mut self) -> Option<std::io::Error> {
        None
    }
}

/// A boxed, dynamically-dispatched access stream.
pub type BoxedStream = Box<dyn AccessStream + Send>;

/// An access stream backed by an in-memory vector; useful in tests and for
/// replaying recorded traces.
#[derive(Debug, Clone)]
pub struct VecStream {
    name: String,
    accesses: std::vec::IntoIter<MemAccess>,
}

impl VecStream {
    /// Creates a stream that yields `accesses` in order under `name`.
    pub fn new(name: impl Into<String>, accesses: Vec<MemAccess>) -> Self {
        Self {
            name: name.into(),
            accesses: accesses.into_iter(),
        }
    }
}

impl Iterator for VecStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        self.accesses.next()
    }
}

impl AccessStream for VecStream {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Collects the next `n` accesses from a stream into a vector.
///
/// This is a convenience wrapper around `Iterator::take` that keeps the
/// stream usable afterwards.
pub fn collect_n<S: AccessStream + ?Sized>(stream: &mut S, n: usize) -> Vec<MemAccess> {
    let mut out = Vec::with_capacity(n);
    fill_segment(stream, &mut out, n);
    out
}

/// Refills `out` with the next (up to) `n` accesses from the stream,
/// returning how many were delivered.
///
/// This is the segment-pipeline's pull primitive: the buffer is cleared and
/// reused across segments, so a steady-state segmented run allocates nothing
/// per segment.  A return value below `n` means the stream ran dry — by
/// exhaustion or by a recorded error; check
/// [`AccessStream::take_error`] to tell the two apart.
pub fn fill_segment<S: AccessStream + ?Sized>(
    stream: &mut S,
    out: &mut Vec<MemAccess>,
    n: usize,
) -> usize {
    out.clear();
    for _ in 0..n {
        match stream.next() {
            Some(a) => out.push(a),
            None => break,
        }
    }
    out.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemAccess;

    #[test]
    fn vec_stream_yields_in_order() {
        let accesses = vec![
            MemAccess::read(0, 1, 64),
            MemAccess::write(0, 2, 128),
            MemAccess::read(1, 3, 192),
        ];
        let mut s = VecStream::new("test", accesses.clone());
        assert_eq!(s.name(), "test");
        let got: Vec<_> = (&mut s).collect();
        assert_eq!(got, accesses);
    }

    #[test]
    fn collect_n_stops_at_end() {
        let accesses = vec![MemAccess::read(0, 1, 64); 5];
        let mut s = VecStream::new("short", accesses);
        let got = collect_n(&mut s, 10);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn collect_n_leaves_remainder() {
        let accesses: Vec<_> = (0..10).map(|i| MemAccess::read(0, 1, i * 64)).collect();
        let mut s = VecStream::new("long", accesses);
        let first = collect_n(&mut s, 4);
        let rest = collect_n(&mut s, 100);
        assert_eq!(first.len(), 4);
        assert_eq!(rest.len(), 6);
        assert_eq!(rest[0].addr, 4 * 64);
    }
}
