//! Configuration shared by all workload generators.

use serde::{Deserialize, Serialize};

/// Parameters controlling the scale of generated traces.
///
/// The defaults are chosen so that a few hundred thousand accesses produce a
/// representative mix of warm and cold regions on a laptop-scale run; the
/// paper's traces span billions of instructions, which the generators can
/// also emulate simply by drawing more accesses from the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of simulated processors issuing accesses (the paper uses 16).
    pub cpus: usize,
    /// Fraction of accesses that are writes for update-heavy code paths.
    ///
    /// Individual workloads scale this base rate up or down; for example the
    /// DSS scan query barely writes while TPC-C updates tuples frequently.
    pub base_write_fraction: f64,
    /// Fraction of accesses directed at data shared between processors.
    ///
    /// Shared writes induce invalidations in remote caches, which terminate
    /// spatial region generations exactly as in the paper's multiprocessor.
    pub sharing_fraction: f64,
    /// Approximate size of each application's data set in bytes.
    ///
    /// Generators scale their internal structure counts (buffer-pool pages,
    /// connections, matrix rows, ...) from this value.
    pub data_set_bytes: u64,
}

impl GeneratorConfig {
    /// Default number of simulated processors.
    pub const DEFAULT_CPUS: usize = 4;

    /// Creates a config with the default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of simulated processors.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero or greater than 64.
    pub fn with_cpus(mut self, cpus: usize) -> Self {
        assert!(cpus > 0 && cpus <= 64, "cpu count must be in 1..=64");
        self.cpus = cpus;
        self
    }

    /// Sets the data-set size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than 64 KiB; generators need at least a
    /// few regions to work with.
    pub fn with_data_set_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes >= 64 * 1024, "data set must be at least 64 KiB");
        self.data_set_bytes = bytes;
        self
    }

    /// Sets the fraction of accesses that target shared data.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_sharing_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.sharing_fraction = fraction;
        self
    }

    /// Sets the base write fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_base_write_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.base_write_fraction = fraction;
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            cpus: Self::DEFAULT_CPUS,
            base_write_fraction: 0.15,
            sharing_fraction: 0.05,
            data_set_bytes: 64 * 1024 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = GeneratorConfig::default();
        assert!(c.cpus >= 1);
        assert!(c.base_write_fraction >= 0.0 && c.base_write_fraction <= 1.0);
        assert!(c.data_set_bytes >= 64 * 1024);
    }

    #[test]
    fn builder_methods_apply() {
        let c = GeneratorConfig::default()
            .with_cpus(16)
            .with_data_set_bytes(128 * 1024 * 1024)
            .with_sharing_fraction(0.1)
            .with_base_write_fraction(0.3);
        assert_eq!(c.cpus, 16);
        assert_eq!(c.data_set_bytes, 128 * 1024 * 1024);
        assert!((c.sharing_fraction - 0.1).abs() < 1e-12);
        assert!((c.base_write_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cpu count")]
    fn zero_cpus_rejected() {
        let _ = GeneratorConfig::default().with_cpus(0);
    }

    #[test]
    #[should_panic(expected = "data set")]
    fn tiny_data_set_rejected() {
        let _ = GeneratorConfig::default().with_data_set_bytes(1024);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = GeneratorConfig::default().with_sharing_fraction(1.5);
    }
}
