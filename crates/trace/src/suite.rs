//! The application suite from Table 1 of the paper and helpers to enumerate
//! and construct it.

use crate::config::GeneratorConfig;
use crate::interleave::Interleaver;
use crate::workloads::{dss, oltp, scientific, web};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four workload classes the paper groups results by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApplicationClass {
    /// Online transaction processing (TPC-C).
    Oltp,
    /// Decision support (TPC-H).
    Dss,
    /// Web serving (SPECweb99).
    Web,
    /// Scientific kernels.
    Scientific,
}

impl fmt::Display for ApplicationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApplicationClass::Oltp => "OLTP",
            ApplicationClass::Dss => "DSS",
            ApplicationClass::Web => "Web",
            ApplicationClass::Scientific => "Scientific",
        };
        write!(f, "{s}")
    }
}

impl ApplicationClass {
    /// All four classes, in the order the paper's figures use.
    pub const ALL: [ApplicationClass; 4] = [
        ApplicationClass::Oltp,
        ApplicationClass::Dss,
        ApplicationClass::Web,
        ApplicationClass::Scientific,
    ];

    /// The applications belonging to this class.
    pub fn applications(self) -> &'static [Application] {
        match self {
            ApplicationClass::Oltp => &[Application::OltpDb2, Application::OltpOracle],
            ApplicationClass::Dss => &[
                Application::DssQry1,
                Application::DssQry2,
                Application::DssQry16,
                Application::DssQry17,
            ],
            ApplicationClass::Web => &[Application::WebApache, Application::WebZeus],
            ApplicationClass::Scientific => {
                &[Application::Em3d, Application::Ocean, Application::Sparse]
            }
        }
    }
}

/// One of the eleven applications evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// TPC-C on IBM DB2 v8 ESE.
    OltpDb2,
    /// TPC-C on Oracle 10g.
    OltpOracle,
    /// TPC-H query 1 (scan-dominated) on DB2.
    DssQry1,
    /// TPC-H query 2 (join-dominated) on DB2.
    DssQry2,
    /// TPC-H query 16 (join-dominated) on DB2.
    DssQry16,
    /// TPC-H query 17 (balanced scan/join) on DB2.
    DssQry17,
    /// SPECweb99 on Apache HTTP Server v2.0.
    WebApache,
    /// SPECweb99 on Zeus Web Server v4.3.
    WebZeus,
    /// em3d electromagnetic kernel.
    Em3d,
    /// ocean current simulation.
    Ocean,
    /// sparse matrix-vector multiply.
    Sparse,
}

impl Application {
    /// All eleven applications in the paper's figure order.
    pub const ALL: [Application; 11] = [
        Application::OltpDb2,
        Application::OltpOracle,
        Application::DssQry1,
        Application::DssQry2,
        Application::DssQry16,
        Application::DssQry17,
        Application::WebApache,
        Application::WebZeus,
        Application::Em3d,
        Application::Ocean,
        Application::Sparse,
    ];

    /// The workload class this application belongs to.
    pub fn class(self) -> ApplicationClass {
        match self {
            Application::OltpDb2 | Application::OltpOracle => ApplicationClass::Oltp,
            Application::DssQry1
            | Application::DssQry2
            | Application::DssQry16
            | Application::DssQry17 => ApplicationClass::Dss,
            Application::WebApache | Application::WebZeus => ApplicationClass::Web,
            Application::Em3d | Application::Ocean | Application::Sparse => {
                ApplicationClass::Scientific
            }
        }
    }

    /// Short name used in reports (matches the paper's figure labels).
    pub fn short_name(self) -> &'static str {
        match self {
            Application::OltpDb2 => "DB2",
            Application::OltpOracle => "Oracle",
            Application::DssQry1 => "Qry1",
            Application::DssQry2 => "Qry2",
            Application::DssQry16 => "Qry16",
            Application::DssQry17 => "Qry17",
            Application::WebApache => "Apache",
            Application::WebZeus => "Zeus",
            Application::Em3d => "em3d",
            Application::Ocean => "ocean",
            Application::Sparse => "sparse",
        }
    }

    /// Builds the globally-interleaved access stream for this application.
    pub fn stream(self, seed: u64, config: &GeneratorConfig) -> Interleaver {
        match self {
            Application::OltpDb2 => oltp::stream(oltp::OltpVariant::Db2, seed, config),
            Application::OltpOracle => oltp::stream(oltp::OltpVariant::Oracle, seed, config),
            Application::DssQry1 => dss::stream(dss::DssQuery::Qry1, seed, config),
            Application::DssQry2 => dss::stream(dss::DssQuery::Qry2, seed, config),
            Application::DssQry16 => dss::stream(dss::DssQuery::Qry16, seed, config),
            Application::DssQry17 => dss::stream(dss::DssQuery::Qry17, seed, config),
            Application::WebApache => web::stream(web::WebServer::Apache, seed, config),
            Application::WebZeus => web::stream(web::WebServer::Zeus, seed, config),
            Application::Em3d => scientific::stream(scientific::ScientificApp::Em3d, seed, config),
            Application::Ocean => {
                scientific::stream(scientific::ScientificApp::Ocean, seed, config)
            }
            Application::Sparse => {
                scientific::stream(scientific::ScientificApp::Sparse, seed, config)
            }
        }
    }

    /// Parses the short name (case-insensitive) used on experiment command
    /// lines.
    pub fn from_short_name(name: &str) -> Option<Application> {
        let lower = name.to_ascii_lowercase();
        Application::ALL
            .into_iter()
            .find(|a| a.short_name().to_ascii_lowercase() == lower)
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_eleven_unique_applications() {
        let set: std::collections::HashSet<_> = Application::ALL.into_iter().collect();
        assert_eq!(set.len(), 11);
    }

    #[test]
    fn classes_partition_the_suite() {
        let mut count = 0;
        for class in ApplicationClass::ALL {
            for app in class.applications() {
                assert_eq!(app.class(), class);
                count += 1;
            }
        }
        assert_eq!(count, 11);
    }

    #[test]
    fn every_application_produces_a_stream() {
        let config = GeneratorConfig::default().with_cpus(1);
        for app in Application::ALL {
            let n = app.stream(1, &config).take(500).count();
            assert_eq!(n, 500, "{app} produced a short stream");
        }
    }

    #[test]
    fn short_name_round_trips() {
        for app in Application::ALL {
            assert_eq!(Application::from_short_name(app.short_name()), Some(app));
        }
        assert_eq!(Application::from_short_name("nonexistent"), None);
    }

    #[test]
    fn display_matches_short_name() {
        assert_eq!(Application::OltpDb2.to_string(), "DB2");
        assert_eq!(ApplicationClass::Dss.to_string(), "DSS");
    }
}
