//! Serializable descriptions of where a simulation's accesses come from.
//!
//! A [`TraceSource`] is plain data — it names either a synthetic workload
//! generator (application, generator parameters, seed) or a trace file on
//! disk — and [`TraceSource::open`] turns it into a live [`BoxedStream`] on
//! whatever thread executes the job.  File-backed sources replay through the
//! streaming readers in [`crate::io`], so a trace of any length is fed to
//! the simulator without ever being buffered whole.

use crate::access::MemAccess;
use crate::config::GeneratorConfig;
use crate::io::{read_binary_iter, read_text_iter};
use crate::stream::{AccessStream, BoxedStream};
use crate::suite::Application;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader};

/// Where a simulation job draws its memory accesses from.
///
/// Sources are serializable so jobs can be written to spec files, shipped
/// across threads, and replayed bit-identically: opening the same source
/// twice always yields the same access sequence (synthetic generators are
/// seeded; files are read in order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSource {
    /// The deterministic synthetic generator for one application.
    Synthetic {
        /// Workload whose generator feeds the run.
        app: Application,
        /// Trace-generator parameters (CPU count, data-set size, sharing).
        generator: GeneratorConfig,
        /// Seed for the deterministic generator.
        seed: u64,
    },
    /// Streaming replay of a binary trace file written by
    /// [`crate::io::write_binary`].
    BinaryFile {
        /// Path of the trace file.
        path: String,
    },
    /// Streaming replay of a text trace file written by
    /// [`crate::io::write_text`].
    TextFile {
        /// Path of the trace file.
        path: String,
    },
}

impl TraceSource {
    /// A synthetic-generator source (the default experiment path).
    pub fn synthetic(app: Application, generator: GeneratorConfig, seed: u64) -> Self {
        TraceSource::Synthetic {
            app,
            generator,
            seed,
        }
    }

    /// A streaming binary-file source.
    pub fn binary_file(path: impl Into<String>) -> Self {
        TraceSource::BinaryFile { path: path.into() }
    }

    /// A streaming text-file source.
    pub fn text_file(path: impl Into<String>) -> Self {
        TraceSource::TextFile { path: path.into() }
    }

    /// A short human-readable description for reports and errors.
    pub fn describe(&self) -> String {
        match self {
            TraceSource::Synthetic { app, seed, .. } => format!("{app}@{seed}"),
            TraceSource::BinaryFile { path } => format!("bin:{path}"),
            TraceSource::TextFile { path } => format!("text:{path}"),
        }
    }

    /// Opens the source as a live access stream.
    ///
    /// Synthetic sources cannot fail; file sources validate that the file
    /// opens (and, for binary traces, that the header is well-formed) before
    /// returning.  A record-level corruption later in a file ends the stream
    /// early and is reported through
    /// [`AccessStream::take_error`](crate::stream::AccessStream::take_error)
    /// (the engine turns it into a job failure); tools that need per-record
    /// errors should use the iterators in [`crate::io`] directly.
    ///
    /// # Errors
    ///
    /// Any I/O error from opening the file, or `InvalidData` for a bad
    /// binary header.
    pub fn open(&self) -> io::Result<BoxedStream> {
        self.open_at(0)
    }

    /// Opens the source positioned after its first `skip` accesses — the
    /// restart primitive behind segment-granular work: a reader can resume a
    /// trace at any access boundary and see exactly the suffix a single
    /// front-to-back read would have seen.
    ///
    /// Cost depends on the source: binary traces seek in O(1)
    /// ([`BinaryTraceReader::skip_records`](crate::io::BinaryTraceReader::skip_records)),
    /// text traces parse-and-discard `skip` records (a parse error inside the
    /// skipped prefix surfaces through
    /// [`take_error`](crate::stream::AccessStream::take_error) exactly as it
    /// would when reading through it), and synthetic generators
    /// generate-and-discard (deterministic, no simulation cost).  Skipping
    /// past the end of a file yields an immediately-exhausted stream, not an
    /// error.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open), plus any I/O error from the binary seek.
    pub fn open_at(&self, skip: u64) -> io::Result<BoxedStream> {
        match self {
            TraceSource::Synthetic {
                app,
                generator,
                seed,
            } => {
                let mut stream = app.stream(*seed, generator);
                for _ in 0..skip {
                    if stream.next().is_none() {
                        break;
                    }
                }
                Ok(Box::new(stream))
            }
            TraceSource::BinaryFile { path } => {
                let mut reader =
                    read_binary_iter(BufReader::new(retry_transient(|| File::open(path))?))?;
                reader.skip_records(skip)?;
                Ok(Box::new(ReplayStream::new(self.describe(), reader)))
            }
            TraceSource::TextFile { path } => {
                let reader = read_text_iter(BufReader::new(retry_transient(|| File::open(path))?));
                let mut stream = ReplayStream::new(self.describe(), reader);
                for _ in 0..skip {
                    if stream.next().is_none() {
                        break;
                    }
                }
                Ok(Box::new(stream))
            }
        }
    }
}

/// How many times [`retry_transient`] re-attempts an operation that keeps
/// failing transiently before giving up with the last error.
const TRANSIENT_RETRIES: u32 = 3;

/// Runs a fallible I/O operation, retrying **transient** failures
/// (`Interrupted`, `WouldBlock`, `TimedOut`) a bounded number of times with
/// short exponential backoff (1 ms doubling).  Every other error kind —
/// `NotFound`, `PermissionDenied`, `InvalidData`, ... — is a property of
/// the request, not of the moment, and fails immediately.  Jobs stream
/// traces from network filesystems in practice; a single load spike must
/// not fail a whole submission.
///
/// # Errors
///
/// The first permanent error, or the last transient one once the retry
/// budget is spent.
pub fn retry_transient<T>(mut attempt: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut backoff = std::time::Duration::from_millis(1);
    let mut retries_left = TRANSIENT_RETRIES;
    loop {
        match attempt() {
            Err(e) if retries_left > 0 && is_transient(e.kind()) => {
                retries_left -= 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            outcome => return outcome,
        }
    }
}

/// Whether an error kind can plausibly succeed on an immediate re-attempt.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Adapts a fallible record iterator into an [`AccessStream`]: yields
/// accesses until the end of the trace or the first error, which it records
/// for inspection.
#[derive(Debug)]
pub struct ReplayStream<I> {
    name: String,
    inner: I,
    error: Option<io::Error>,
}

impl<I> ReplayStream<I> {
    /// Wraps `inner` under the given stream name.
    pub fn new(name: impl Into<String>, inner: I) -> Self {
        Self {
            name: name.into(),
            inner,
            error: None,
        }
    }

    /// The error that ended the stream early, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<I: Iterator<Item = io::Result<MemAccess>>> Iterator for ReplayStream<I> {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        if self.error.is_some() {
            return None;
        }
        match self.inner.next()? {
            Ok(access) => Some(access),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

impl<I: Iterator<Item = io::Result<MemAccess>>> AccessStream for ReplayStream<I> {
    fn name(&self) -> &str {
        &self.name
    }

    fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::stream::collect_n;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sms-trace-source-{tag}-{}", std::process::id()))
    }

    #[test]
    fn synthetic_source_matches_direct_generator() {
        let generator = GeneratorConfig::default().with_cpus(2);
        let source = TraceSource::synthetic(Application::OltpDb2, generator.clone(), 7);
        let mut via_source = source.open().expect("synthetic sources cannot fail");
        let mut direct = Application::OltpDb2.stream(7, &generator);
        let a = collect_n(&mut *via_source, 500);
        let b = collect_n(&mut direct, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn binary_file_source_replays_recorded_trace() {
        let generator = GeneratorConfig::default().with_cpus(2);
        let recorded = collect_n(&mut Application::Sparse.stream(3, &generator), 1_000);
        let path = temp_path("replay");
        write_binary(File::create(&path).unwrap(), &recorded).unwrap();

        let source = TraceSource::binary_file(path.to_string_lossy());
        let mut stream = source.open().expect("valid trace file");
        let replayed = collect_n(&mut *stream, 2_000);
        std::fs::remove_file(&path).ok();
        assert_eq!(replayed, recorded);
    }

    #[test]
    fn missing_file_is_an_open_error() {
        let source = TraceSource::binary_file("/nonexistent/path/trace.bin");
        assert!(source.open().is_err());
        let source = TraceSource::text_file("/nonexistent/path/trace.txt");
        assert!(source.open().is_err());
    }

    #[test]
    fn corrupt_binary_header_fails_at_open() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"XXXX\x01\0\0\0\0\0\0\0\0").unwrap();
        let source = TraceSource::binary_file(path.to_string_lossy());
        let err = match source.open() {
            Err(e) => e,
            Ok(_) => panic!("corrupt header must fail at open"),
        };
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_binary_file_ends_stream_with_recorded_error() {
        let generator = GeneratorConfig::default().with_cpus(1);
        let recorded = collect_n(&mut Application::Ocean.stream(1, &generator), 10);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &recorded).unwrap();
        bytes.truncate(bytes.len() - 5);
        let path = temp_path("truncated");
        std::fs::write(&path, &bytes).unwrap();

        let reader = read_binary_iter(BufReader::new(File::open(&path).unwrap())).unwrap();
        let mut stream = ReplayStream::new("truncated", reader);
        let got: Vec<MemAccess> = (&mut stream).collect();
        std::fs::remove_file(&path).ok();
        assert_eq!(got, recorded[..recorded.len() - 1]);
        assert!(stream.error().is_some(), "truncation must be recorded");
    }

    #[test]
    fn open_at_resumes_every_source_kind_at_the_exact_access() {
        let generator = GeneratorConfig::default().with_cpus(2);
        let recorded = collect_n(&mut Application::DssQry1.stream(9, &generator), 1_000);
        let bin_path = temp_path("openat-bin");
        let text_path = temp_path("openat-text");
        write_binary(File::create(&bin_path).unwrap(), &recorded).unwrap();
        crate::io::write_text(File::create(&text_path).unwrap(), &recorded).unwrap();

        let sources = vec![
            TraceSource::synthetic(Application::DssQry1, generator.clone(), 9),
            TraceSource::binary_file(bin_path.to_string_lossy()),
            TraceSource::text_file(text_path.to_string_lossy()),
        ];
        for source in sources {
            for skip in [0u64, 1, 250, 999] {
                let mut resumed = source.open_at(skip).expect("open_at");
                let suffix = collect_n(&mut *resumed, 1_000 - skip as usize);
                assert_eq!(
                    suffix,
                    recorded[skip as usize..],
                    "{}: open_at({skip}) must deliver the exact suffix",
                    source.describe()
                );
            }
        }
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&text_path).ok();
    }

    #[test]
    fn open_at_past_end_of_file_is_exhausted_not_an_error() {
        let generator = GeneratorConfig::default().with_cpus(1);
        let recorded = collect_n(&mut Application::Ocean.stream(4, &generator), 50);
        let path = temp_path("openat-past-end");
        write_binary(File::create(&path).unwrap(), &recorded).unwrap();
        let source = TraceSource::binary_file(path.to_string_lossy());
        let mut stream = source.open_at(1_000).expect("past-end open succeeds");
        assert!(stream.next().is_none());
        assert!(stream.take_error().is_none(), "exhaustion is not an error");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_transient_recovers_from_bounded_transient_failures() {
        let mut failures_left = 2;
        let result = retry_transient(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "signal"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
    }

    #[test]
    fn retry_transient_gives_up_after_the_budget() {
        let mut attempts = 0;
        let result: io::Result<()> = retry_transient(|| {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "stuck"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(attempts, 1 + TRANSIENT_RETRIES, "initial try plus retries");
    }

    #[test]
    fn retry_transient_fails_permanent_errors_immediately() {
        let mut attempts = 0;
        let result: io::Result<()> = retry_transient(|| {
            attempts += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "no such trace"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(attempts, 1, "NotFound cannot heal; never retried");
    }

    #[test]
    fn source_round_trips_through_json() {
        let cases = vec![
            TraceSource::synthetic(
                Application::DssQry2,
                GeneratorConfig::default().with_cpus(4),
                2006,
            ),
            TraceSource::binary_file("traces/oltp.bin"),
            TraceSource::text_file("traces/oltp.txt"),
        ];
        for source in cases {
            let json = serde_json::to_string(&source).expect("serialize");
            let back: TraceSource = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(source, back);
        }
    }
}
