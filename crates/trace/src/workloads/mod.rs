//! Workload generators modelling the paper's application suite.
//!
//! Each sub-module builds per-CPU access streams for one application class
//! and exposes a constructor that returns a globally-interleaved
//! [`Interleaver`](crate::interleave::Interleaver) over all simulated
//! processors.  The generators are deterministic functions of `(seed,
//! GeneratorConfig)`.
//!
//! | Module | Applications | Paper workload |
//! |---|---|---|
//! | [`oltp`] | `OltpDb2`, `OltpOracle` | TPC-C on DB2 / Oracle |
//! | [`dss`] | `DssQry1/2/16/17` | TPC-H queries on DB2 |
//! | [`web`] | `WebApache`, `WebZeus` | SPECweb99 on Apache / Zeus |
//! | [`scientific`] | `Em3d`, `Ocean`, `Sparse` | em3d, ocean, sparse |

pub mod common;
pub mod dss;
pub mod oltp;
pub mod scientific;
pub mod web;

pub use common::{CodePath, PatternLibrary};
