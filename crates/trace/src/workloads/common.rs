//! Building blocks shared by all workload generators.
//!
//! The central abstraction is the [`PatternLibrary`]: for every code path
//! (program counter) it holds a small set of *canonical spatial patterns* —
//! lists of cache-block offsets within a spatial region that the code path
//! touches together.  Emitting an instance of a canonical pattern at a fresh
//! or revisited region base produces exactly the kind of code-correlated
//! spatial repetition the paper observes in commercial workloads: the same
//! code fragment touching the same relative layout in many different regions.
//!
//! Individual workloads differ in
//! * how many code paths and variants they have (pattern entropy),
//! * how dense the patterns are,
//! * how often regions are revisited (address reuse) versus visited once,
//! * how much noise perturbs each emission, and
//! * how much of the data is shared and written.

use crate::access::{AccessKind, MemAccess, Pc};
use crate::rng::{coin, stream_rng};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Size in bytes of a primary cache block; fixed at 64 B as in the paper.
pub const BLOCK_BYTES: u64 = 64;

/// A named code path with a stable program counter.
///
/// Real applications issue each logical operation ("read page header",
/// "probe hash bucket") from a handful of static load/store instructions; a
/// `CodePath` stands for one such instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodePath {
    /// Human-readable label, used only for debugging and reports.
    pub label: &'static str,
    /// The program counter attached to accesses from this code path.
    pub pc: Pc,
}

impl CodePath {
    /// Creates a code path with label `label` and program counter `pc`.
    pub fn new(label: &'static str, pc: Pc) -> Self {
        Self { label, pc }
    }
}

/// A canonical spatial pattern: block offsets (within a region) touched by a
/// code path, in access order.  The first offset is the trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalPattern {
    offsets: Vec<u32>,
}

impl CanonicalPattern {
    /// Creates a pattern from explicit offsets.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty.
    pub fn new(offsets: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "a pattern needs at least one offset");
        Self { offsets }
    }

    /// Offsets in access order; the first entry is the trigger offset.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Number of distinct blocks in the pattern.
    pub fn density(&self) -> usize {
        let mut uniq: Vec<u32> = self.offsets.clone();
        uniq.sort_unstable();
        uniq.dedup();
        uniq.len()
    }
}

/// Parameters for building a [`PatternLibrary`].
#[derive(Debug, Clone)]
pub struct PatternLibraryConfig {
    /// Number of blocks in a spatial region (region bytes / 64 B).
    pub region_blocks: u32,
    /// Number of pattern variants generated per code path.
    pub variants_per_path: usize,
    /// Minimum number of blocks per canonical pattern.
    pub min_density: usize,
    /// Maximum number of blocks per canonical pattern.
    pub max_density: usize,
    /// Probability that a pattern is a contiguous run rather than scattered
    /// blocks; scans and array sweeps are contiguous, index probes are not.
    pub contiguous_fraction: f64,
}

impl PatternLibraryConfig {
    /// Validates the configuration, panicking on nonsensical values.
    fn validate(&self) {
        assert!(
            self.region_blocks >= 2,
            "regions must hold at least 2 blocks"
        );
        assert!(self.variants_per_path >= 1, "need at least one variant");
        assert!(
            self.min_density >= 1 && self.min_density <= self.max_density,
            "density range is empty"
        );
        assert!(
            self.max_density <= self.region_blocks as usize,
            "patterns cannot exceed the region size"
        );
    }
}

/// A library of canonical spatial patterns, one small set per code path.
#[derive(Debug, Clone)]
pub struct PatternLibrary {
    paths: Vec<CodePath>,
    variants: Vec<Vec<CanonicalPattern>>,
    region_blocks: u32,
}

impl PatternLibrary {
    /// Builds a library for `paths`, drawing variant patterns from `rng`
    /// according to `config`.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty or `config` is inconsistent.
    pub fn generate(
        rng: &mut ChaCha8Rng,
        paths: Vec<CodePath>,
        config: &PatternLibraryConfig,
    ) -> Self {
        assert!(!paths.is_empty(), "need at least one code path");
        config.validate();
        let variants = paths
            .iter()
            .map(|_| {
                (0..config.variants_per_path)
                    .map(|_| Self::draw_pattern(rng, config))
                    .collect()
            })
            .collect();
        Self {
            paths,
            variants,
            region_blocks: config.region_blocks,
        }
    }

    fn draw_pattern(rng: &mut ChaCha8Rng, config: &PatternLibraryConfig) -> CanonicalPattern {
        let density = rng.gen_range(config.min_density..=config.max_density);
        let blocks = config.region_blocks;
        if coin(rng, config.contiguous_fraction) {
            // Contiguous run starting at a random offset, wrapping is avoided
            // by clamping the start.
            let max_start = blocks.saturating_sub(density as u32);
            let start = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start)
            };
            CanonicalPattern::new((0..density as u32).map(|i| start + i).collect())
        } else {
            // Scattered blocks: trigger plus distinct random offsets.
            let mut all: Vec<u32> = (0..blocks).collect();
            all.shuffle(rng);
            let mut offsets: Vec<u32> = all.into_iter().take(density).collect();
            // Keep the access order stable but arbitrary: trigger first, then
            // ascending so repeated emissions look like the same traversal.
            let trigger = offsets[0];
            offsets[1..].sort_unstable();
            let mut ordered = vec![trigger];
            ordered.extend(offsets[1..].iter().copied().filter(|&o| o != trigger));
            CanonicalPattern::new(ordered)
        }
    }

    /// Number of code paths in the library.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Number of blocks per spatial region this library was built for.
    pub fn region_blocks(&self) -> u32 {
        self.region_blocks
    }

    /// The code path at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn path(&self, index: usize) -> &CodePath {
        &self.paths[index]
    }

    /// The canonical pattern variants for the code path at `index`.
    pub fn variants(&self, index: usize) -> &[CanonicalPattern] {
        &self.variants[index]
    }

    /// Emits one instance of a pattern into `out`.
    ///
    /// `path_index` selects the code path, `variant_index` the canonical
    /// pattern, `region_base` the (region-aligned) base address.  `noise` is
    /// the probability of dropping each non-trigger block and of inserting
    /// one extra random block, modelling run-to-run variation.  `write_prob`
    /// is the per-access probability of the access being a store.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        rng: &mut ChaCha8Rng,
        out: &mut VecDeque<MemAccess>,
        cpu: u8,
        path_index: usize,
        variant_index: usize,
        region_base: u64,
        noise: f64,
        write_prob: f64,
    ) {
        let path = &self.paths[path_index];
        let pattern = &self.variants[path_index][variant_index % self.variants[path_index].len()];
        let mut first = true;
        for &offset in pattern.offsets() {
            if !first && coin(rng, noise) {
                continue;
            }
            first = false;
            let kind = if coin(rng, write_prob) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            // Touch a word within the block so addresses are not all
            // block-aligned, as in a real trace.
            let byte = rng.gen_range(0..BLOCK_BYTES / 8) * 8;
            out.push_back(MemAccess {
                cpu,
                pc: path.pc + (offset as u64 % 4) * 4,
                addr: region_base + u64::from(offset) * BLOCK_BYTES + byte,
                kind,
            });
        }
        if coin(rng, noise) {
            let extra = rng.gen_range(0..self.region_blocks);
            out.push_back(MemAccess {
                cpu,
                pc: path.pc,
                addr: region_base + u64::from(extra) * BLOCK_BYTES,
                kind: AccessKind::Read,
            });
        }
    }
}

/// A reusable per-CPU generator skeleton: buffers bursts of accesses produced
/// by a workload-specific closure.
pub struct BurstBuffer {
    queue: VecDeque<MemAccess>,
}

impl std::fmt::Debug for BurstBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BurstBuffer")
            .field("buffered", &self.queue.len())
            .finish()
    }
}

impl BurstBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
        }
    }

    /// Pops the next buffered access, refilling via `refill` when empty.
    pub fn next_with(
        &mut self,
        mut refill: impl FnMut(&mut VecDeque<MemAccess>),
    ) -> Option<MemAccess> {
        if self.queue.is_empty() {
            refill(&mut self.queue);
        }
        self.queue.pop_front()
    }

    /// Direct access to the underlying queue (used by generators that fill
    /// eagerly).
    pub fn queue_mut(&mut self) -> &mut VecDeque<MemAccess> {
        &mut self.queue
    }
}

impl Default for BurstBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// Creates a deterministic per-CPU RNG for workload `workload_id`.
pub fn cpu_rng(seed: u64, workload_id: u64, cpu: u8) -> ChaCha8Rng {
    stream_rng(
        seed,
        workload_id
            .wrapping_mul(257)
            .wrapping_add(u64::from(cpu) + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> (ChaCha8Rng, PatternLibrary) {
        let mut rng = stream_rng(11, 1);
        let paths = vec![CodePath::new("hdr", 0x4000), CodePath::new("tuple", 0x4100)];
        let cfg = PatternLibraryConfig {
            region_blocks: 32,
            variants_per_path: 4,
            min_density: 2,
            max_density: 8,
            contiguous_fraction: 0.5,
        };
        let lib = PatternLibrary::generate(&mut rng, paths, &cfg);
        (rng, lib)
    }

    #[test]
    fn library_has_requested_shape() {
        let (_, lib) = library();
        assert_eq!(lib.num_paths(), 2);
        assert_eq!(lib.region_blocks(), 32);
        for p in 0..lib.num_paths() {
            assert_eq!(lib.variants(p).len(), 4);
            for v in lib.variants(p) {
                assert!(v.density() >= 1 && v.density() <= 8);
                assert!(v.offsets().iter().all(|&o| o < 32));
            }
        }
    }

    #[test]
    fn emit_stays_within_region() {
        let (mut rng, lib) = library();
        let mut out = VecDeque::new();
        let base = 0x10_0000;
        lib.emit(&mut rng, &mut out, 0, 0, 0, base, 0.0, 0.0);
        assert!(!out.is_empty());
        for a in &out {
            assert!(a.addr >= base && a.addr < base + 32 * BLOCK_BYTES);
            assert_eq!(a.cpu, 0);
            assert_eq!(a.kind, AccessKind::Read);
        }
    }

    #[test]
    fn emit_without_noise_reproduces_pattern_blocks() {
        let (mut rng, lib) = library();
        let base_a = 0x10_0000;
        let base_b = 0x20_0000;
        let blocks = |base: u64, rng: &mut ChaCha8Rng| {
            let mut out = VecDeque::new();
            lib.emit(rng, &mut out, 0, 1, 2, base, 0.0, 0.0);
            let mut b: Vec<u64> = out.iter().map(|a| (a.addr - base) / BLOCK_BYTES).collect();
            b.sort_unstable();
            b.dedup();
            b
        };
        let a = blocks(base_a, &mut rng);
        let b = blocks(base_b, &mut rng);
        assert_eq!(a, b, "same code path/variant must touch the same offsets");
    }

    #[test]
    fn write_prob_one_yields_writes() {
        let (mut rng, lib) = library();
        let mut out = VecDeque::new();
        lib.emit(&mut rng, &mut out, 1, 0, 0, 0x4000, 0.0, 1.0);
        assert!(out.iter().all(|a| a.kind == AccessKind::Write));
    }

    #[test]
    #[should_panic(expected = "at least one offset")]
    fn empty_pattern_rejected() {
        let _ = CanonicalPattern::new(vec![]);
    }

    #[test]
    fn burst_buffer_refills() {
        let mut buf = BurstBuffer::new();
        let mut calls = 0;
        for _ in 0..6 {
            let a = buf.next_with(|q| {
                calls += 1;
                for i in 0..3 {
                    q.push_back(MemAccess::read(0, 1, i * 64));
                }
            });
            assert!(a.is_some());
        }
        assert_eq!(calls, 2);
    }
}
