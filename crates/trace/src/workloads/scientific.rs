//! Scientific reference applications: em3d, ocean and sparse.
//!
//! These provide the paper's frame of reference for the commercial results.
//! Their defining properties are dense, regular traversals of large arrays
//! with very few code paths, which both SMS and simpler prefetchers cover
//! well:
//!
//! * **em3d** — electromagnetic wave propagation on a bipartite graph.  The
//!   node array is swept linearly (dense patterns) while each node also
//!   dereferences a small number of neighbour nodes, 15 % of which live in a
//!   remote processor's partition (producing sharing).
//! * **ocean** — grid-based ocean current simulation.  Stencil sweeps touch
//!   every block of every grid row; rows are revisited on every iteration.
//! * **sparse** — sparse matrix-vector multiply.  Matrix rows are read
//!   sequentially (dense) and the source vector is gathered at scattered
//!   indices; the matrix is revisited across iterations.

use crate::access::MemAccess;
use crate::config::GeneratorConfig;
use crate::interleave::Interleaver;
use crate::rng::coin;
use crate::stream::{AccessStream, BoxedStream};
use crate::workloads::common::{cpu_rng, BLOCK_BYTES};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Which scientific kernel to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScientificApp {
    /// em3d: 3 M nodes, degree 2, 15 % remote neighbours.
    Em3d,
    /// ocean: 1026x1026 grid relaxation.
    Ocean,
    /// sparse: 4096x4096 sparse matrix-vector multiply.
    Sparse,
}

impl ScientificApp {
    fn label(self) -> &'static str {
        match self {
            ScientificApp::Em3d => "sci-em3d",
            ScientificApp::Ocean => "sci-ocean",
            ScientificApp::Sparse => "sci-sparse",
        }
    }

    fn address_base(self) -> u64 {
        match self {
            ScientificApp::Em3d => 0x0A00_0000_0000,
            ScientificApp::Ocean => 0x0B00_0000_0000,
            ScientificApp::Sparse => 0x0C00_0000_0000,
        }
    }
}

/// Spatial region size used when reasoning about scientific data (2 kB).
pub const SCI_REGION_BYTES: u64 = 2048;

/// Per-processor scientific access stream.
pub struct ScientificCpuStream {
    name: String,
    app: ScientificApp,
    cpu: u8,
    cpus: usize,
    rng: ChaCha8Rng,
    /// Bytes of the per-CPU partition of the main data structure.
    partition_bytes: u64,
    /// Sweep position, in blocks, within this CPU's partition.
    cursor: u64,
    queue: VecDeque<MemAccess>,
}

impl std::fmt::Debug for ScientificCpuStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScientificCpuStream")
            .field("name", &self.name)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl ScientificCpuStream {
    /// Creates the stream for one processor.
    pub fn new(app: ScientificApp, seed: u64, config: &GeneratorConfig, cpu: u8) -> Self {
        let rng = cpu_rng(seed, 0x30 + app as u64, cpu);
        let partition_bytes = (config.data_set_bytes / config.cpus as u64).max(1 << 20);
        Self {
            name: format!("{}-cpu{cpu}", app.label()),
            app,
            cpu,
            cpus: config.cpus,
            rng,
            partition_bytes,
            cursor: 0,
            queue: VecDeque::new(),
        }
    }

    fn partition_base(&self, cpu: u8) -> u64 {
        self.app.address_base() + u64::from(cpu) * self.partition_bytes
    }

    fn partition_blocks(&self) -> u64 {
        self.partition_bytes / BLOCK_BYTES
    }

    fn refill(&mut self) {
        match self.app {
            ScientificApp::Em3d => self.refill_em3d(),
            ScientificApp::Ocean => self.refill_ocean(),
            ScientificApp::Sparse => self.refill_sparse(),
        }
    }

    /// em3d: process one node — read its state (a couple of consecutive
    /// blocks), read each neighbour's value (possibly remote), write the
    /// updated value back.
    fn refill_em3d(&mut self) {
        let base = self.partition_base(self.cpu);
        let node_block = self.cursor % self.partition_blocks();
        self.cursor += 1;
        let pc_node = 0x00A0_0000;
        let pc_neigh = 0x00A0_0040;
        let pc_store = 0x00A0_0080;
        let node_addr = base + node_block * BLOCK_BYTES;
        self.queue
            .push_back(MemAccess::read(self.cpu, pc_node, node_addr));
        self.queue.push_back(MemAccess::read(
            self.cpu,
            pc_node + 4,
            node_addr + BLOCK_BYTES,
        ));
        // Degree-2 neighbour reads; 15% of neighbours live in another CPU's
        // partition (remote), the rest are nearby in this partition.
        for d in 0..2u64 {
            let remote = coin(&mut self.rng, 0.15) && self.cpus > 1;
            let (owner, nbase) = if remote {
                let mut other = self.rng.gen_range(0..self.cpus) as u8;
                if other == self.cpu {
                    other = (other + 1) % self.cpus as u8;
                }
                (other, self.partition_base(other))
            } else {
                (self.cpu, base)
            };
            let _ = owner;
            let span = 5 * (SCI_REGION_BYTES / BLOCK_BYTES);
            let offset = (node_block + self.rng.gen_range(1..=span) + d) % self.partition_blocks();
            self.queue.push_back(MemAccess::read(
                self.cpu,
                pc_neigh + d * 8,
                nbase + offset * BLOCK_BYTES,
            ));
        }
        self.queue
            .push_back(MemAccess::write(self.cpu, pc_store, node_addr));
    }

    /// ocean: stencil relaxation — sweep a grid row, reading the current
    /// block, its horizontal neighbours and the rows above/below, writing
    /// the result.  Every block of the partition is touched in order.
    fn refill_ocean(&mut self) {
        let base = self.partition_base(self.cpu);
        let row_blocks = 1026 * 8 / BLOCK_BYTES + 1; // ~one grid row of f64s
        let pc_load = 0x00B0_0000;
        let pc_store = 0x00B0_0040;
        let blocks = self.partition_blocks();
        for i in 0..8u64 {
            let b = (self.cursor + i) % blocks;
            let addr = base + b * BLOCK_BYTES;
            self.queue
                .push_back(MemAccess::read(self.cpu, pc_load, addr));
            // Neighbouring rows (same column, previous/next row).
            let up = (b + blocks - row_blocks % blocks) % blocks;
            let down = (b + row_blocks) % blocks;
            self.queue.push_back(MemAccess::read(
                self.cpu,
                pc_load + 4,
                base + up * BLOCK_BYTES,
            ));
            self.queue.push_back(MemAccess::read(
                self.cpu,
                pc_load + 8,
                base + down * BLOCK_BYTES,
            ));
            self.queue
                .push_back(MemAccess::write(self.cpu, pc_store, addr));
        }
        self.cursor += 8;
    }

    /// sparse: y = A*x — read a run of matrix blocks sequentially, gather a
    /// few scattered source-vector blocks, write one result block.
    fn refill_sparse(&mut self) {
        let matrix_base = self.partition_base(self.cpu);
        let vector_base = self.app.address_base() + 0x40_0000_0000;
        let result_base =
            self.app.address_base() + 0x60_0000_0000 + u64::from(self.cpu) * self.partition_bytes;
        let pc_mat = 0x00C0_0000;
        let pc_vec = 0x00C0_0040;
        let pc_res = 0x00C0_0080;
        let blocks = self.partition_blocks();
        let vector_blocks = 4096 * 8 / BLOCK_BYTES;
        // One matrix row worth of non-zeros: a dense run of blocks.
        let run = 24;
        for i in 0..run {
            let b = (self.cursor + i) % blocks;
            self.queue.push_back(MemAccess::read(
                self.cpu,
                pc_mat,
                matrix_base + b * BLOCK_BYTES,
            ));
            if i % 4 == 0 {
                let v = self.rng.gen_range(0..vector_blocks);
                self.queue.push_back(MemAccess::read(
                    self.cpu,
                    pc_vec,
                    vector_base + v * BLOCK_BYTES,
                ));
            }
        }
        let row = (self.cursor / run) % blocks;
        self.queue.push_back(MemAccess::write(
            self.cpu,
            pc_res,
            result_base + row * BLOCK_BYTES,
        ));
        self.cursor += run;
    }
}

impl Iterator for ScientificCpuStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        while self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop_front()
    }
}

impl AccessStream for ScientificCpuStream {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the globally-interleaved scientific stream over all configured CPUs.
pub fn stream(app: ScientificApp, seed: u64, config: &GeneratorConfig) -> Interleaver {
    let streams: Vec<BoxedStream> = (0..config.cpus)
        .map(|cpu| Box::new(ScientificCpuStream::new(app, seed, config, cpu as u8)) as BoxedStream)
        .collect();
    // Scientific codes run long uninterrupted compute loops per CPU.
    Interleaver::with_burst(app.label(), streams, seed, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use std::collections::{HashMap, HashSet};

    fn take(app: ScientificApp, n: usize) -> Vec<MemAccess> {
        let config = GeneratorConfig::default().with_cpus(2);
        stream(app, 13, &config).take(n).collect()
    }

    #[test]
    fn produces_requested_volume() {
        for app in [
            ScientificApp::Em3d,
            ScientificApp::Ocean,
            ScientificApp::Sparse,
        ] {
            assert_eq!(take(app, 10_000).len(), 10_000);
        }
    }

    #[test]
    fn ocean_and_sparse_regions_are_dense() {
        for app in [ScientificApp::Ocean, ScientificApp::Sparse] {
            let t = take(app, 50_000);
            let mut blocks: HashMap<u64, HashSet<u64>> = HashMap::new();
            for a in &t {
                blocks
                    .entry(a.region_base(SCI_REGION_BYTES))
                    .or_default()
                    .insert(a.block_addr(BLOCK_BYTES));
            }
            let dense = blocks.values().filter(|s| s.len() >= 16).count();
            assert!(
                dense * 2 > blocks.len(),
                "{app:?}: expected most regions dense, got {dense}/{}",
                blocks.len()
            );
        }
    }

    #[test]
    fn em3d_touches_remote_partitions() {
        let t = take(ScientificApp::Em3d, 50_000);
        // CPU 0's partition base and size.
        let config = GeneratorConfig::default().with_cpus(2);
        let partition = (config.data_set_bytes / 2).max(1 << 20);
        let base = ScientificApp::Em3d.address_base();
        let cpu0_remote = t
            .iter()
            .filter(|a| a.cpu == 0 && a.addr >= base + partition && a.addr < base + 2 * partition)
            .count();
        assert!(cpu0_remote > 0, "em3d must issue remote-neighbour reads");
    }

    #[test]
    fn em3d_has_writes() {
        let t = take(ScientificApp::Em3d, 10_000);
        assert!(t.iter().any(|a| a.kind == AccessKind::Write));
    }

    #[test]
    fn sweeps_are_sequential() {
        let t = take(ScientificApp::Ocean, 20_000);
        // Per CPU, the primary sweep addresses should be non-decreasing most
        // of the time (modulo the stencil neighbours and wrap-around).
        let addrs: Vec<u64> = t
            .iter()
            .filter(|a| a.cpu == 0 && a.pc == 0x00B0_0000)
            .map(|a| a.addr)
            .collect();
        let increasing = addrs.windows(2).filter(|w| w[1] >= w[0]).count();
        assert!(increasing as f64 / addrs.len() as f64 > 0.95);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = GeneratorConfig::default().with_cpus(2);
        let a: Vec<_> = stream(ScientificApp::Sparse, 2, &config)
            .take(4000)
            .collect();
        let b: Vec<_> = stream(ScientificApp::Sparse, 2, &config)
            .take(4000)
            .collect();
        assert_eq!(a, b);
    }
}
