//! TPC-C style online transaction processing workloads (DB2 and Oracle).
//!
//! The generator models the memory behaviour the paper attributes to OLTP:
//!
//! * a large, shared buffer pool of database pages, with a heavily skewed
//!   (hot-page) reuse distribution;
//! * per-page accesses issued by a moderate number of code paths (page
//!   header reads, tuple-slot index reads, tuple fetches and updates, B-tree
//!   descent, lock-table and log-manager code), each touching a small,
//!   recurring set of block offsets — sparse patterns of one to eight blocks
//!   per 2 kB region;
//! * many transactions in flight per processor, so accesses to independent
//!   regions interleave finely; and
//! * frequent updates to shared pages, producing invalidations in remote
//!   caches.
//!
//! DB2 and Oracle differ in buffer-pool size, code-path count and update
//! rate, mirroring the two configurations in Table 1 of the paper.

use crate::access::MemAccess;
use crate::config::GeneratorConfig;
use crate::interleave::Interleaver;
use crate::rng::{coin, zipf_index};
use crate::stream::{AccessStream, BoxedStream};
use crate::workloads::common::{
    cpu_rng, BurstBuffer, CodePath, PatternLibrary, PatternLibraryConfig, BLOCK_BYTES,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Which commercial DBMS configuration to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OltpVariant {
    /// IBM DB2 v8 ESE: 100 warehouses, 450 MB buffer pool, 64 clients.
    Db2,
    /// Oracle 10g: 100 warehouses, 1.4 GB SGA, 16 clients.
    Oracle,
}

impl OltpVariant {
    fn params(self) -> OltpParams {
        match self {
            OltpVariant::Db2 => OltpParams {
                code_paths: 1200,
                variants_per_path: 5,
                min_density: 1,
                max_density: 7,
                contiguous_fraction: 0.25,
                concurrent_transactions: 4,
                page_reuse_theta: 0.75,
                write_fraction: 0.22,
                noise: 0.10,
                btree_fraction: 0.30,
                address_base: 0x0100_0000_0000,
            },
            OltpVariant::Oracle => OltpParams {
                code_paths: 1500,
                variants_per_path: 6,
                min_density: 1,
                max_density: 8,
                contiguous_fraction: 0.20,
                concurrent_transactions: 5,
                page_reuse_theta: 0.70,
                write_fraction: 0.25,
                noise: 0.12,
                btree_fraction: 0.35,
                address_base: 0x0200_0000_0000,
            },
        }
    }

    fn label(self) -> &'static str {
        match self {
            OltpVariant::Db2 => "oltp-db2",
            OltpVariant::Oracle => "oltp-oracle",
        }
    }
}

#[derive(Debug, Clone)]
struct OltpParams {
    code_paths: usize,
    variants_per_path: usize,
    min_density: usize,
    max_density: usize,
    contiguous_fraction: f64,
    concurrent_transactions: usize,
    page_reuse_theta: f64,
    write_fraction: f64,
    noise: f64,
    btree_fraction: f64,
    address_base: u64,
}

/// Spatial region size the generator lays structures out in (2 kB).
pub const OLTP_REGION_BYTES: u64 = 2048;

/// Per-processor OLTP access stream.
pub struct OltpCpuStream {
    name: String,
    cpu: u8,
    rng: ChaCha8Rng,
    lib: PatternLibrary,
    params: OltpParams,
    num_regions: u64,
    /// Log region private to this CPU; appended sequentially.
    log_cursor: u64,
    contexts: Vec<VecDeque<MemAccess>>,
    current_context: usize,
    buffer: BurstBuffer,
}

impl std::fmt::Debug for OltpCpuStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OltpCpuStream")
            .field("name", &self.name)
            .field("cpu", &self.cpu)
            .field("regions", &self.num_regions)
            .finish()
    }
}

impl OltpCpuStream {
    /// Creates the stream for one processor.
    pub fn new(variant: OltpVariant, seed: u64, config: &GeneratorConfig, cpu: u8) -> Self {
        let params = variant.params();
        let mut rng = cpu_rng(seed, 0x01 + variant as u64, cpu);
        // All CPUs share the same pattern library (same binary / same code),
        // so build it from a CPU-independent RNG.
        let mut lib_rng = cpu_rng(seed, 0x01 + variant as u64, 255);
        let paths: Vec<CodePath> = (0..params.code_paths)
            .map(|i| CodePath::new("oltp", 0x0040_0000 + (i as u64) * 0x40))
            .collect();
        let lib = PatternLibrary::generate(
            &mut lib_rng,
            paths,
            &PatternLibraryConfig {
                region_blocks: (OLTP_REGION_BYTES / BLOCK_BYTES) as u32,
                variants_per_path: params.variants_per_path,
                min_density: params.min_density,
                max_density: params.max_density,
                contiguous_fraction: params.contiguous_fraction,
            },
        );
        let num_regions = (config.data_set_bytes / OLTP_REGION_BYTES).max(64);
        let contexts = (0..params.concurrent_transactions)
            .map(|_| VecDeque::new())
            .collect();
        let _ = rng.gen::<u64>();
        Self {
            name: format!("{}-cpu{cpu}", variant.label()),
            cpu,
            rng,
            lib,
            params,
            num_regions,
            log_cursor: 0,
            contexts,
            current_context: 0,
            buffer: BurstBuffer::new(),
        }
    }

    fn pick_region(&mut self) -> u64 {
        let idx = zipf_index(
            &mut self.rng,
            self.num_regions as usize,
            self.params.page_reuse_theta,
        );
        self.params.address_base + (idx as u64) * OLTP_REGION_BYTES
    }

    /// Emits the accesses of one transaction step into context `ctx`.
    fn refill_context(&mut self, ctx: usize) {
        let steps = self.rng.gen_range(2..=4);
        for _ in 0..steps {
            let region = self.pick_region();
            // Pages belong to tables, and each table is manipulated by a
            // small set of code paths; a given page also tends to repeat the
            // same layout variant on every visit.  Deriving the path and
            // variant partly from the page identity gives the trace both
            // code correlation (the same PC recurs across thousands of
            // pages) and address correlation (revisits to a hot page repeat
            // its pattern), as in a real DBMS.
            let region_id = ((region - self.params.address_base) / OLTP_REGION_BYTES) as usize;
            let path_window = 16;
            let path = (region_id.wrapping_mul(31) + zipf_index(&mut self.rng, path_window, 0.6))
                % self.lib.num_paths();
            let variant = (region_id.wrapping_mul(7) + zipf_index(&mut self.rng, 2, 0.5))
                % self.params.variants_per_path;
            let write_prob = if coin(&mut self.rng, self.params.btree_fraction) {
                // Index descent is read-only.
                0.0
            } else {
                self.params.write_fraction
            };
            let mut queue = std::mem::take(&mut self.contexts[ctx]);
            self.lib.emit(
                &mut self.rng,
                &mut queue,
                self.cpu,
                path,
                variant,
                region,
                self.params.noise,
                write_prob,
            );
            self.contexts[ctx] = queue;
        }
        // Log append: short sequential run of writes in a private region.
        if coin(&mut self.rng, 0.4) {
            let log_base =
                self.params.address_base + 0x10_0000_0000 + u64::from(self.cpu) * 0x1000_0000;
            for i in 0..self.rng.gen_range(1..=3u64) {
                let addr = log_base + (self.log_cursor + i) * BLOCK_BYTES;
                self.contexts[ctx].push_back(MemAccess::write(self.cpu, 0x0050_0000, addr));
            }
            self.log_cursor += 3;
        }
    }
}

impl Iterator for OltpCpuStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        // Fine-grained interleaving between in-flight transactions: switch
        // context with moderate probability on every access.
        if coin(&mut self.rng, 0.35) {
            self.current_context = self.rng.gen_range(0..self.contexts.len());
        }
        let ctx = self.current_context;
        if self.contexts[ctx].is_empty() {
            self.refill_context(ctx);
        }
        let access = self.contexts[ctx].pop_front();
        debug_assert!(access.is_some(), "refill must produce at least one access");
        // The buffer field exists to keep symmetry with other generators and
        // to allow future multi-access bursts.
        let _ = &self.buffer;
        access
    }
}

impl AccessStream for OltpCpuStream {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the globally-interleaved OLTP stream over all configured CPUs.
pub fn stream(variant: OltpVariant, seed: u64, config: &GeneratorConfig) -> Interleaver {
    let streams: Vec<BoxedStream> = (0..config.cpus)
        .map(|cpu| Box::new(OltpCpuStream::new(variant, seed, config, cpu as u8)) as BoxedStream)
        .collect();
    Interleaver::new(variant.label(), streams, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use std::collections::HashSet;

    fn take(variant: OltpVariant, n: usize) -> Vec<MemAccess> {
        let config = GeneratorConfig::default().with_cpus(2);
        stream(variant, 7, &config).take(n).collect()
    }

    #[test]
    fn produces_requested_volume() {
        let t = take(OltpVariant::Db2, 20_000);
        assert_eq!(t.len(), 20_000);
    }

    #[test]
    fn uses_all_cpus() {
        let t = take(OltpVariant::Db2, 20_000);
        let cpus: HashSet<u8> = t.iter().map(|a| a.cpu).collect();
        assert_eq!(cpus.len(), 2);
    }

    #[test]
    fn contains_reads_and_writes() {
        let t = take(OltpVariant::Oracle, 20_000);
        assert!(t.iter().any(|a| a.kind == AccessKind::Read));
        assert!(t.iter().any(|a| a.kind == AccessKind::Write));
    }

    #[test]
    fn regions_are_heavily_interleaved() {
        // Consecutive accesses by the same CPU should frequently be in
        // different 2 kB regions — the property that motivates the AGT.
        let t = take(OltpVariant::Db2, 30_000);
        let mut switches = 0usize;
        let mut total = 0usize;
        let mut last_region: Option<(u8, u64)> = None;
        for a in &t {
            let region = a.region_base(OLTP_REGION_BYTES);
            if let Some((cpu, prev)) = last_region {
                if cpu == a.cpu {
                    total += 1;
                    if prev != region {
                        switches += 1;
                    }
                }
            }
            last_region = Some((a.cpu, region));
        }
        assert!(total > 1000);
        let ratio = switches as f64 / total as f64;
        assert!(ratio > 0.2, "region switch ratio too low: {ratio}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = GeneratorConfig::default().with_cpus(2);
        let a: Vec<_> = stream(OltpVariant::Db2, 11, &config).take(5000).collect();
        let b: Vec<_> = stream(OltpVariant::Db2, 11, &config).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_variants_differ() {
        let a = take(OltpVariant::Db2, 5000);
        let b = take(OltpVariant::Oracle, 5000);
        assert_ne!(a, b);
    }

    #[test]
    fn hot_regions_are_reused() {
        let t = take(OltpVariant::Db2, 50_000);
        let mut counts = std::collections::HashMap::new();
        for a in &t {
            *counts
                .entry(a.region_base(OLTP_REGION_BYTES))
                .or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = t.len() / counts.len();
        assert!(
            max > mean * 5,
            "expected a skewed reuse distribution (max {max}, mean {mean})"
        );
    }
}
