//! SPECweb99-style web-server workloads (Apache and Zeus).
//!
//! Structural properties modelled after the paper's description:
//!
//! * request processing walks **packet buffers** whose headers and trailers
//!   have an arbitrarily complex but *fixed* layout — the header blocks at
//!   the start of a buffer region and trailer blocks near the end recur for
//!   every request handled by the same code path;
//! * each buffer is used for one request and then recycled, so most buffer
//!   regions are visited once or twice (favouring code-indexed prediction);
//! * shared server state (file cache metadata, connection table, scoreboard)
//!   is revisited with a hot-set distribution and occasionally written,
//!   producing sharing invalidations;
//! * many connections are serviced concurrently per processor, so accesses
//!   to independent buffers interleave heavily, as in OLTP.

use crate::access::MemAccess;
use crate::config::GeneratorConfig;
use crate::interleave::Interleaver;
use crate::rng::{coin, zipf_index};
use crate::stream::{AccessStream, BoxedStream};
use crate::workloads::common::{
    cpu_rng, CodePath, PatternLibrary, PatternLibraryConfig, BLOCK_BYTES,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Which web server configuration to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WebServer {
    /// Apache HTTP Server v2.0 with the worker threading model.
    Apache,
    /// Zeus Web Server v4.3 (event-driven).
    Zeus,
}

impl WebServer {
    fn params(self) -> WebParams {
        match self {
            WebServer::Apache => WebParams {
                packet_paths: 700,
                shared_paths: 250,
                concurrent_connections: 6,
                packet_min_density: 2,
                packet_max_density: 12,
                shared_min_density: 1,
                shared_max_density: 5,
                shared_fraction: 0.30,
                write_fraction: 0.12,
                noise: 0.09,
                buffer_reuse_prob: 0.25,
                address_base: 0x0800_0000_0000,
            },
            WebServer::Zeus => WebParams {
                packet_paths: 550,
                shared_paths: 180,
                concurrent_connections: 8,
                packet_min_density: 2,
                packet_max_density: 10,
                shared_min_density: 1,
                shared_max_density: 4,
                shared_fraction: 0.26,
                write_fraction: 0.10,
                noise: 0.08,
                buffer_reuse_prob: 0.30,
                address_base: 0x0900_0000_0000,
            },
        }
    }

    fn label(self) -> &'static str {
        match self {
            WebServer::Apache => "web-apache",
            WebServer::Zeus => "web-zeus",
        }
    }
}

#[derive(Debug, Clone)]
struct WebParams {
    packet_paths: usize,
    shared_paths: usize,
    concurrent_connections: usize,
    packet_min_density: usize,
    packet_max_density: usize,
    shared_min_density: usize,
    shared_max_density: usize,
    shared_fraction: f64,
    write_fraction: f64,
    noise: f64,
    buffer_reuse_prob: f64,
    address_base: u64,
}

/// Spatial region size used for packet buffers and server structures (2 kB).
pub const WEB_REGION_BYTES: u64 = 2048;

/// Per-processor web-server access stream.
pub struct WebCpuStream {
    name: String,
    cpu: u8,
    rng: ChaCha8Rng,
    packet_lib: PatternLibrary,
    shared_lib: PatternLibrary,
    params: WebParams,
    /// Pool of recently-freed buffer regions available for reuse.
    free_buffers: Vec<u64>,
    /// Monotonic allocator for fresh buffer regions.
    next_buffer: u64,
    /// Number of shared-structure regions (server-wide tables).
    shared_regions: u64,
    contexts: Vec<VecDeque<MemAccess>>,
    current_context: usize,
}

impl std::fmt::Debug for WebCpuStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebCpuStream")
            .field("name", &self.name)
            .field("cpu", &self.cpu)
            .field("free_buffers", &self.free_buffers.len())
            .finish()
    }
}

impl WebCpuStream {
    /// Creates the stream for one processor.
    pub fn new(server: WebServer, seed: u64, config: &GeneratorConfig, cpu: u8) -> Self {
        let params = server.params();
        let rng = cpu_rng(seed, 0x20 + server as u64, cpu);
        let mut lib_rng = cpu_rng(seed, 0x20 + server as u64, 255);
        let region_blocks = (WEB_REGION_BYTES / BLOCK_BYTES) as u32;
        let packet_paths: Vec<CodePath> = (0..params.packet_paths)
            .map(|i| CodePath::new("web-pkt", 0x0080_0000 + (i as u64) * 0x40))
            .collect();
        let shared_paths: Vec<CodePath> = (0..params.shared_paths)
            .map(|i| CodePath::new("web-shared", 0x0088_0000 + (i as u64) * 0x40))
            .collect();
        let packet_lib = PatternLibrary::generate(
            &mut lib_rng,
            packet_paths,
            &PatternLibraryConfig {
                region_blocks,
                variants_per_path: 4,
                min_density: params.packet_min_density,
                max_density: params.packet_max_density,
                contiguous_fraction: 0.45,
            },
        );
        let shared_lib = PatternLibrary::generate(
            &mut lib_rng,
            shared_paths,
            &PatternLibraryConfig {
                region_blocks,
                variants_per_path: 5,
                min_density: params.shared_min_density,
                max_density: params.shared_max_density,
                contiguous_fraction: 0.2,
            },
        );
        let shared_regions = (config.data_set_bytes / 8 / WEB_REGION_BYTES).max(64);
        let contexts = (0..params.concurrent_connections)
            .map(|_| VecDeque::new())
            .collect();
        Self {
            name: format!("{}-cpu{cpu}", server.label()),
            cpu,
            rng,
            packet_lib,
            shared_lib,
            params,
            free_buffers: Vec::new(),
            next_buffer: 0,
            shared_regions,
            contexts,
            current_context: 0,
        }
    }

    /// Region base of the shared (server-wide) structures; identical on all
    /// CPUs so that writes cause cross-processor invalidations.
    fn shared_base(&self) -> u64 {
        self.params.address_base + 0x20_0000_0000
    }

    /// Allocates a buffer region for a new request, preferring a recycled
    /// buffer with probability `buffer_reuse_prob`.
    fn alloc_buffer(&mut self) -> u64 {
        if !self.free_buffers.is_empty() && coin(&mut self.rng, self.params.buffer_reuse_prob) {
            let idx = self.rng.gen_range(0..self.free_buffers.len());
            return self.free_buffers.swap_remove(idx);
        }
        // Per-CPU buffer arena keeps allocation private; sharing happens via
        // the shared structures instead.
        let base = self.params.address_base + u64::from(self.cpu) * 0x4_0000_0000;
        let region = base + self.next_buffer * WEB_REGION_BYTES;
        self.next_buffer += 1;
        region
    }

    /// Emits the accesses for servicing one request on connection `ctx`.
    fn refill_context(&mut self, ctx: usize) {
        let buffer = self.alloc_buffer();
        // Parse headers, then trailer/metadata, possibly payload copy.  The
        // handler code for a given request type is a small set of PCs, and a
        // recycled buffer tends to be laid out the same way it was last
        // time, so derive the path/variant partly from the connection and
        // buffer identity (code and address correlation).
        let request_kind = self.rng.gen_range(0..64usize);
        let buffer_id = (buffer / WEB_REGION_BYTES) as usize;
        let steps = self.rng.gen_range(1..=3);
        for step in 0..steps {
            let path = (request_kind * 37 + step * 11 + zipf_index(&mut self.rng, 8, 0.6))
                % self.packet_lib.num_paths();
            let variant = (buffer_id + zipf_index(&mut self.rng, 2, 0.5)) % 4;
            let mut queue = std::mem::take(&mut self.contexts[ctx]);
            self.packet_lib.emit(
                &mut self.rng,
                &mut queue,
                self.cpu,
                path,
                variant,
                buffer,
                self.params.noise,
                self.params.write_fraction,
            );
            self.contexts[ctx] = queue;
        }
        // Consult shared server state (file cache, connection table).
        if coin(&mut self.rng, self.params.shared_fraction) {
            let region_idx = zipf_index(&mut self.rng, self.shared_regions as usize, 0.8) as u64;
            let region = self.shared_base() + region_idx * WEB_REGION_BYTES;
            // Shared server tables are walked by the same few code paths,
            // and each table entry repeats its layout on every visit.
            let path = (region_idx as usize * 13 + zipf_index(&mut self.rng, 6, 0.6))
                % self.shared_lib.num_paths();
            let variant = (region_idx as usize + zipf_index(&mut self.rng, 2, 0.5)) % 5;
            let mut queue = std::mem::take(&mut self.contexts[ctx]);
            self.shared_lib.emit(
                &mut self.rng,
                &mut queue,
                self.cpu,
                path,
                variant,
                region,
                self.params.noise,
                self.params.write_fraction * 1.5,
            );
            self.contexts[ctx] = queue;
        }
        // Recycle the buffer for a later request.
        if self.free_buffers.len() < 256 {
            self.free_buffers.push(buffer);
        }
    }
}

impl Iterator for WebCpuStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        if coin(&mut self.rng, 0.4) {
            self.current_context = self.rng.gen_range(0..self.contexts.len());
        }
        let ctx = self.current_context;
        if self.contexts[ctx].is_empty() {
            self.refill_context(ctx);
        }
        self.contexts[ctx].pop_front()
    }
}

impl AccessStream for WebCpuStream {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the globally-interleaved web-server stream over all configured CPUs.
pub fn stream(server: WebServer, seed: u64, config: &GeneratorConfig) -> Interleaver {
    let streams: Vec<BoxedStream> = (0..config.cpus)
        .map(|cpu| Box::new(WebCpuStream::new(server, seed, config, cpu as u8)) as BoxedStream)
        .collect();
    Interleaver::new(server.label(), streams, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use std::collections::HashSet;

    fn take(server: WebServer, n: usize) -> Vec<MemAccess> {
        let config = GeneratorConfig::default().with_cpus(2);
        stream(server, 9, &config).take(n).collect()
    }

    #[test]
    fn produces_requested_volume() {
        assert_eq!(take(WebServer::Apache, 15_000).len(), 15_000);
        assert_eq!(take(WebServer::Zeus, 15_000).len(), 15_000);
    }

    #[test]
    fn has_reads_and_writes_on_all_cpus() {
        let t = take(WebServer::Apache, 20_000);
        let cpus: HashSet<u8> = t.iter().map(|a| a.cpu).collect();
        assert_eq!(cpus.len(), 2);
        assert!(t.iter().any(|a| a.kind == AccessKind::Write));
        assert!(t.iter().any(|a| a.kind == AccessKind::Read));
    }

    #[test]
    fn shared_structures_are_touched_by_multiple_cpus() {
        let t = take(WebServer::Zeus, 60_000);
        let shared_base = 0x0900_0000_0000u64 + 0x20_0000_0000;
        let mut owners: std::collections::HashMap<u64, HashSet<u8>> = Default::default();
        for a in &t {
            if a.addr >= shared_base && a.addr < shared_base + 0x10_0000_0000 {
                owners
                    .entry(a.region_base(WEB_REGION_BYTES))
                    .or_default()
                    .insert(a.cpu);
            }
        }
        assert!(
            owners.values().any(|s| s.len() > 1),
            "expected at least one shared region touched by multiple CPUs"
        );
    }

    #[test]
    fn region_interleaving_is_heavy() {
        let t = take(WebServer::Apache, 30_000);
        let mut switches = 0usize;
        let mut total = 0usize;
        let mut last: Option<(u8, u64)> = None;
        for a in &t {
            let region = a.region_base(WEB_REGION_BYTES);
            if let Some((cpu, prev)) = last {
                if cpu == a.cpu {
                    total += 1;
                    if prev != region {
                        switches += 1;
                    }
                }
            }
            last = Some((a.cpu, region));
        }
        assert!(switches as f64 / total as f64 > 0.2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = GeneratorConfig::default().with_cpus(2);
        let a: Vec<_> = stream(WebServer::Zeus, 4, &config).take(4000).collect();
        let b: Vec<_> = stream(WebServer::Zeus, 4, &config).take(4000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn servers_differ() {
        assert_ne!(take(WebServer::Apache, 3000), take(WebServer::Zeus, 3000));
    }
}
