//! TPC-H style decision-support (DSS) queries on DB2.
//!
//! The paper selects four queries by behaviour class: Qry 1 (scan-dominated),
//! Qry 2 and Qry 16 (join-dominated), and Qry 17 (balanced scan/join).  The
//! defining structural properties are:
//!
//! * **Scans** sweep enormous tables sequentially and touch each page
//!   exactly once with a dense, fixed per-page layout — previously-unvisited
//!   data that only a code-indexed (PC) predictor can cover;
//! * **Joins** combine a sequential probe input with hashed lookups into a
//!   build table whose buckets are revisited with small, recurring patterns;
//! * Qry 1 additionally copies aggregates into a temporary table, producing a
//!   long stream of store misses (the store-buffer bottleneck discussed in
//!   the paper's performance results);
//! * far fewer concurrent contexts than OLTP, so region interleaving is mild.

use crate::access::MemAccess;
use crate::config::GeneratorConfig;
use crate::interleave::Interleaver;
use crate::rng::{coin, zipf_index};
use crate::stream::{AccessStream, BoxedStream};
use crate::workloads::common::{
    cpu_rng, CodePath, PatternLibrary, PatternLibraryConfig, BLOCK_BYTES,
};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Which TPC-H query to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DssQuery {
    /// Query 1: scan-dominated with a temporary-table store stream.
    Qry1,
    /// Query 2: join-dominated.
    Qry2,
    /// Query 16: join-dominated.
    Qry16,
    /// Query 17: balanced scan/join mix.
    Qry17,
}

impl DssQuery {
    fn params(self) -> DssParams {
        match self {
            DssQuery::Qry1 => DssParams {
                scan_fraction: 0.88,
                temp_store_fraction: 0.90,
                temp_store_run_max: 32,
                hash_probe_fraction: 0.05,
                scan_paths: 180,
                probe_paths: 80,
                scan_min_density: 14,
                scan_max_density: 32,
                probe_min_density: 2,
                probe_max_density: 6,
                noise: 0.04,
                address_base: 0x0400_0000_0000,
            },
            DssQuery::Qry2 => DssParams {
                scan_fraction: 0.35,
                temp_store_fraction: 0.03,
                temp_store_run_max: 6,
                hash_probe_fraction: 0.55,
                scan_paths: 120,
                probe_paths: 200,
                scan_min_density: 10,
                scan_max_density: 28,
                probe_min_density: 2,
                probe_max_density: 8,
                noise: 0.06,
                address_base: 0x0500_0000_0000,
            },
            DssQuery::Qry16 => DssParams {
                scan_fraction: 0.30,
                temp_store_fraction: 0.04,
                temp_store_run_max: 6,
                hash_probe_fraction: 0.60,
                scan_paths: 110,
                probe_paths: 220,
                scan_min_density: 8,
                scan_max_density: 24,
                probe_min_density: 2,
                probe_max_density: 7,
                noise: 0.07,
                address_base: 0x0600_0000_0000,
            },
            DssQuery::Qry17 => DssParams {
                scan_fraction: 0.55,
                temp_store_fraction: 0.08,
                temp_store_run_max: 8,
                hash_probe_fraction: 0.35,
                scan_paths: 150,
                probe_paths: 150,
                scan_min_density: 10,
                scan_max_density: 30,
                probe_min_density: 2,
                probe_max_density: 8,
                noise: 0.05,
                address_base: 0x0700_0000_0000,
            },
        }
    }

    fn label(self) -> &'static str {
        match self {
            DssQuery::Qry1 => "dss-qry1",
            DssQuery::Qry2 => "dss-qry2",
            DssQuery::Qry16 => "dss-qry16",
            DssQuery::Qry17 => "dss-qry17",
        }
    }
}

#[derive(Debug, Clone)]
struct DssParams {
    scan_fraction: f64,
    temp_store_fraction: f64,
    temp_store_run_max: u64,
    hash_probe_fraction: f64,
    scan_paths: usize,
    probe_paths: usize,
    scan_min_density: usize,
    scan_max_density: usize,
    probe_min_density: usize,
    probe_max_density: usize,
    noise: f64,
    address_base: u64,
}

/// Spatial region (database page sub-unit) used by the DSS generator (2 kB).
pub const DSS_REGION_BYTES: u64 = 2048;

/// Per-processor DSS access stream.
pub struct DssCpuStream {
    name: String,
    cpu: u8,
    rng: ChaCha8Rng,
    scan_lib: PatternLibrary,
    probe_lib: PatternLibrary,
    params: DssParams,
    /// Next region index in this CPU's partition of the scanned table.
    scan_cursor: u64,
    /// Number of regions in the scanned table partition (per CPU).
    scan_regions: u64,
    /// Number of regions in the (revisited) hash build table.
    hash_regions: u64,
    /// Cursor for the temporary-table store stream.
    temp_cursor: u64,
    queue: VecDeque<MemAccess>,
}

impl std::fmt::Debug for DssCpuStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DssCpuStream")
            .field("name", &self.name)
            .field("cpu", &self.cpu)
            .field("scan_cursor", &self.scan_cursor)
            .finish()
    }
}

impl DssCpuStream {
    /// Creates the stream for one processor.
    pub fn new(query: DssQuery, seed: u64, config: &GeneratorConfig, cpu: u8) -> Self {
        let params = query.params();
        let rng = cpu_rng(seed, 0x10 + query as u64, cpu);
        let mut lib_rng = cpu_rng(seed, 0x10 + query as u64, 255);
        let region_blocks = (DSS_REGION_BYTES / BLOCK_BYTES) as u32;
        let scan_paths: Vec<CodePath> = (0..params.scan_paths)
            .map(|i| CodePath::new("dss-scan", 0x0060_0000 + (i as u64) * 0x40))
            .collect();
        let probe_paths: Vec<CodePath> = (0..params.probe_paths)
            .map(|i| CodePath::new("dss-probe", 0x0068_0000 + (i as u64) * 0x40))
            .collect();
        let scan_lib = PatternLibrary::generate(
            &mut lib_rng,
            scan_paths,
            &PatternLibraryConfig {
                region_blocks,
                variants_per_path: 2,
                min_density: params.scan_min_density,
                max_density: params.scan_max_density,
                contiguous_fraction: 0.85,
            },
        );
        let probe_lib = PatternLibrary::generate(
            &mut lib_rng,
            probe_paths,
            &PatternLibraryConfig {
                region_blocks,
                variants_per_path: 3,
                min_density: params.probe_min_density,
                max_density: params.probe_max_density,
                contiguous_fraction: 0.3,
            },
        );
        // The scanned table is much larger than the generated trace so that
        // scan pages really are visited only once; size it at 16x the
        // configured data set and partition it across CPUs.
        let table_regions = (config.data_set_bytes * 16 / DSS_REGION_BYTES).max(1024);
        let scan_regions = (table_regions / config.cpus as u64).max(256);
        let hash_regions = (config.data_set_bytes / 4 / DSS_REGION_BYTES).max(64);
        Self {
            name: format!("{}-cpu{cpu}", query.label()),
            cpu,
            rng,
            scan_lib,
            probe_lib,
            params,
            scan_cursor: 0,
            scan_regions,
            hash_regions,
            temp_cursor: 0,
            queue: VecDeque::new(),
        }
    }

    fn scan_partition_base(&self) -> u64 {
        self.params.address_base + u64::from(self.cpu) * self.scan_regions * DSS_REGION_BYTES
    }

    fn hash_table_base(&self) -> u64 {
        self.params.address_base + 0x40_0000_0000
    }

    fn temp_table_base(&self) -> u64 {
        self.params.address_base + 0x80_0000_0000 + u64::from(self.cpu) * 0x1_0000_0000
    }

    fn refill(&mut self) {
        let r: f64 = self.rng.gen();
        if r < self.params.scan_fraction {
            self.emit_scan_page();
        } else if r < self.params.scan_fraction + self.params.hash_probe_fraction {
            self.emit_hash_probe();
        } else {
            self.emit_scan_page();
        }
        if coin(&mut self.rng, self.params.temp_store_fraction) {
            self.emit_temp_store();
        }
    }

    /// Scans the next never-before-visited page of this CPU's partition.
    fn emit_scan_page(&mut self) {
        let region = self.scan_partition_base() + self.scan_cursor * DSS_REGION_BYTES;
        self.scan_cursor = (self.scan_cursor + 1) % self.scan_regions;
        // One scan operator instance uses the same few code paths for the
        // whole sweep: derive the path from the cursor coarsely so a long
        // run of pages shares a path, as a tight scan loop would.
        let path = ((self.scan_cursor / 512) as usize) % self.scan_lib.num_paths();
        let variant = zipf_index(&mut self.rng, 2, 0.5);
        let mut queue = std::mem::take(&mut self.queue);
        self.scan_lib.emit(
            &mut self.rng,
            &mut queue,
            self.cpu,
            path,
            variant,
            region,
            self.params.noise,
            0.01,
        );
        self.queue = queue;
    }

    /// Probes a (revisited) hash-table bucket region.
    fn emit_hash_probe(&mut self) {
        let bucket = self.rng.gen_range(0..self.hash_regions);
        let region = self.hash_table_base() + bucket * DSS_REGION_BYTES;
        let path = self.rng.gen_range(0..self.probe_lib.num_paths());
        let variant = zipf_index(&mut self.rng, 3, 0.6);
        let mut queue = std::mem::take(&mut self.queue);
        self.probe_lib.emit(
            &mut self.rng,
            &mut queue,
            self.cpu,
            path,
            variant,
            region,
            self.params.noise,
            0.02,
        );
        self.queue = queue;
    }

    /// Appends aggregates to the temporary table: a short run of stores.
    fn emit_temp_store(&mut self) {
        let base = self.temp_table_base();
        let run = self
            .rng
            .gen_range(2..=self.params.temp_store_run_max.max(3));
        for i in 0..run {
            let addr = base + (self.temp_cursor + i) * BLOCK_BYTES;
            self.queue
                .push_back(MemAccess::write(self.cpu, 0x0070_0000, addr));
        }
        self.temp_cursor += run;
    }
}

impl Iterator for DssCpuStream {
    type Item = MemAccess;

    fn next(&mut self) -> Option<MemAccess> {
        while self.queue.is_empty() {
            self.refill();
        }
        self.queue.pop_front()
    }
}

impl AccessStream for DssCpuStream {
    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the globally-interleaved DSS stream over all configured CPUs.
pub fn stream(query: DssQuery, seed: u64, config: &GeneratorConfig) -> Interleaver {
    let streams: Vec<BoxedStream> = (0..config.cpus)
        .map(|cpu| Box::new(DssCpuStream::new(query, seed, config, cpu as u8)) as BoxedStream)
        .collect();
    // DSS queries run long pipeline stages per CPU, so use longer bursts
    // than OLTP when interleaving processors.
    Interleaver::with_burst(query.label(), streams, seed, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;
    use std::collections::HashMap;

    fn take(query: DssQuery, n: usize) -> Vec<MemAccess> {
        let config = GeneratorConfig::default().with_cpus(2);
        stream(query, 3, &config).take(n).collect()
    }

    #[test]
    fn produces_requested_volume() {
        for q in [
            DssQuery::Qry1,
            DssQuery::Qry2,
            DssQuery::Qry16,
            DssQuery::Qry17,
        ] {
            assert_eq!(take(q, 10_000).len(), 10_000);
        }
    }

    #[test]
    fn qry1_is_store_heavy_compared_to_qry2() {
        let w1 = take(DssQuery::Qry1, 40_000)
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        let w2 = take(DssQuery::Qry2, 40_000)
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        assert!(w1 > w2, "Qry1 writes {w1} should exceed Qry2 writes {w2}");
    }

    #[test]
    fn scan_pages_are_mostly_visited_once() {
        // Count how many scan-table regions are touched in more than one
        // widely-separated visit.  Hash-table and temp-table regions live at
        // different address bases and are excluded.
        let t = take(DssQuery::Qry1, 80_000);
        let params_base = 0x0400_0000_0000u64;
        let mut region_count: HashMap<u64, usize> = HashMap::new();
        for a in &t {
            if a.addr >= params_base && a.addr < params_base + 0x40_0000_0000 {
                *region_count
                    .entry(a.region_base(DSS_REGION_BYTES))
                    .or_insert(0) += 1;
            }
        }
        // Pages are dense (tens of accesses) but visited in one generation:
        // the number of regions with an unusually large access count should
        // be tiny.
        let heavy = region_count.values().filter(|&&c| c > 80).count();
        let total = region_count.len();
        assert!(total > 100);
        assert!(
            (heavy as f64) < (total as f64) * 0.05,
            "too many scan regions revisited: {heavy}/{total}"
        );
    }

    #[test]
    fn scan_patterns_are_dense() {
        let t = take(DssQuery::Qry1, 60_000);
        let mut blocks_per_region: HashMap<u64, std::collections::HashSet<u64>> = HashMap::new();
        for a in &t {
            blocks_per_region
                .entry(a.region_base(DSS_REGION_BYTES))
                .or_default()
                .insert(a.block_addr(BLOCK_BYTES));
        }
        let dense = blocks_per_region.values().filter(|s| s.len() >= 8).count();
        assert!(
            dense > blocks_per_region.len() / 4,
            "expected a substantial fraction of dense regions"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = GeneratorConfig::default().with_cpus(2);
        let a: Vec<_> = stream(DssQuery::Qry16, 5, &config).take(4000).collect();
        let b: Vec<_> = stream(DssQuery::Qry16, 5, &config).take(4000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn queries_differ_from_each_other() {
        assert_ne!(take(DssQuery::Qry2, 3000), take(DssQuery::Qry16, 3000));
    }
}
