//! Deterministic random-number helpers for workload generators.
//!
//! All generators draw from a [`ChaCha8Rng`] seeded from a user-provided
//! 64-bit seed plus a per-workload stream identifier, so that the same seed
//! reproduces bit-identical traces on every platform while different
//! workloads (and different CPUs within one workload) see uncorrelated
//! streams.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates a deterministic RNG for a `(seed, stream)` pair.
pub fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.set_stream(stream);
    rng
}

/// Draws `true` with probability `p` (clamped to `[0, 1]`).
pub fn coin(rng: &mut ChaCha8Rng, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.gen_bool(p)
}

/// Draws a value from a (truncated) geometric-like distribution in
/// `[1, max]`, biased towards small values; used to pick burst lengths and
/// structure sizes.
pub fn biased_len(rng: &mut ChaCha8Rng, max: usize) -> usize {
    debug_assert!(max >= 1);
    let mut len = 1usize;
    while len < max && rng.gen_bool(0.5) {
        len += 1;
    }
    len
}

/// Draws an index in `[0, n)` with a Zipf-like skew: low indices are much
/// hotter than high indices.  `theta` in `(0, 1)` controls the skew (higher
/// is more skewed).
pub fn zipf_index(rng: &mut ChaCha8Rng, n: usize, theta: f64) -> usize {
    debug_assert!(n >= 1);
    // Inverse-power transform of a uniform draw: cheap and adequate for
    // generating hot-set behaviour without a full Zipf sampler.
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let skew = u.powf(1.0 / (1.0 - theta.clamp(0.01, 0.99)));
    let idx = (skew * n as f64) as usize;
    idx.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = stream_rng(7, 3);
        let mut b = stream_rng(7, 3);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = stream_rng(7, 0);
        let mut b = stream_rng(7, 1);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut rng = stream_rng(1, 1);
        let n = 1000;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let i = zipf_index(&mut rng, n, 0.8);
            assert!(i < n);
            if i < n / 10 {
                low += 1;
            }
        }
        // With strong skew, far more than 10% of draws land in the lowest
        // decile.
        assert!(low > 3_000, "low-decile draws: {low}");
    }

    #[test]
    fn biased_len_bounds() {
        let mut rng = stream_rng(2, 2);
        for _ in 0..1000 {
            let l = biased_len(&mut rng, 8);
            assert!((1..=8).contains(&l));
        }
    }

    #[test]
    fn coin_extremes() {
        let mut rng = stream_rng(3, 3);
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
    }
}
