//! Student-t 95 % confidence intervals.

use crate::summary::{mean, std_dev};
use serde::{Deserialize, Serialize};

/// Two-sided 95 % critical values of the Student-t distribution for small
/// degrees of freedom; beyond 30 the normal approximation (1.96) is used.
const T_95: [f64; 31] = [
    f64::INFINITY, // 0 dof is undefined; guarded in code
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

/// A mean together with the half-width of its 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval around the mean.
    pub half_width: f64,
    /// Number of samples.
    pub samples: usize,
}

impl ConfidenceInterval {
    /// Computes the 95 % confidence interval of the mean of `values`.
    ///
    /// With fewer than two samples the half-width is reported as zero.
    pub fn from_samples(values: &[f64]) -> Self {
        let n = values.len();
        if n < 2 {
            return Self {
                mean: mean(values),
                half_width: 0.0,
                samples: n,
            };
        }
        let dof = n - 1;
        let t = if dof < T_95.len() { T_95[dof] } else { 1.96 };
        let sem = std_dev(values) / (n as f64).sqrt();
        Self {
            mean: mean(values),
            half_width: t * sem,
            samples: n,
        }
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval excludes `value` (i.e. the difference from
    /// `value` is statistically significant at the 95 % level).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.low() || value > self.high()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_mean() {
        let xs = [1.0, 1.1, 0.9, 1.05, 0.95];
        let ci = ConfidenceInterval::from_samples(&xs);
        assert!(ci.low() <= ci.mean && ci.mean <= ci.high());
        assert_eq!(ci.samples, 5);
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let ci = ConfidenceInterval::from_samples(&[2.0; 10]);
        assert_eq!(ci.half_width, 0.0);
        assert!(!ci.excludes(2.0));
        assert!(ci.excludes(2.1));
    }

    #[test]
    fn few_samples_widen_the_interval() {
        let narrow = ConfidenceInterval::from_samples(&[1.0, 1.2, 0.8, 1.1, 0.9, 1.05, 0.95, 1.0]);
        let wide = ConfidenceInterval::from_samples(&[1.0, 1.2, 0.8]);
        assert!(wide.half_width > narrow.half_width);
    }

    #[test]
    fn single_sample_is_degenerate() {
        let ci = ConfidenceInterval::from_samples(&[3.0]);
        assert_eq!(ci.mean, 3.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn large_samples_use_normal_approximation() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = ConfidenceInterval::from_samples(&xs);
        // SEM = std/sqrt(100); t ~ 1.96
        let expected = 1.96 * crate::summary::std_dev(&xs) / 10.0;
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert!(format!("{ci}").contains('±'));
    }
}
