//! Summary statistics.

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample variance (n-1 denominator); returns 0 for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Geometric mean of strictly positive values; returns 0 if the slice is
/// empty.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let speedups = [1.22, 1.48, 4.07, 1.0];
        let g = geometric_mean(&speedups);
        assert!(g > 1.0 && g < 4.07);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geometric_mean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    proptest! {
        #[test]
        fn geomean_le_mean(xs in proptest::collection::vec(0.01f64..100.0, 1..30)) {
            // AM-GM inequality.
            prop_assert!(geometric_mean(&xs) <= mean(&xs) + 1e-9);
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-100.0f64..100.0, 0..30)) {
            prop_assert!(variance(&xs) >= 0.0);
        }
    }
}
