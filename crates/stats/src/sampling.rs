//! Paired-measurement sampling.
//!
//! The paper measures performance change with paired samples: the same
//! execution sample is run on the base and enhanced systems, and the
//! per-sample performance ratios are aggregated with a confidence interval.
//! Pairing removes the (large) sample-to-sample workload variation from the
//! variance of the *change*, which is what makes tight ±5 % intervals
//! feasible.

use crate::confidence::ConfidenceInterval;
use serde::{Deserialize, Serialize};

/// Paired per-sample measurements of a base and an enhanced system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairedSamples {
    /// Base-system measurement per sample (e.g. cycles).
    pub base: Vec<f64>,
    /// Enhanced-system measurement per sample.
    pub enhanced: Vec<f64>,
}

impl PairedSamples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one paired sample.
    ///
    /// # Panics
    ///
    /// Panics if either measurement is not strictly positive.
    pub fn push(&mut self, base: f64, enhanced: f64) {
        assert!(
            base > 0.0 && enhanced > 0.0,
            "measurements must be positive"
        );
        self.base.push(base);
        self.enhanced.push(enhanced);
    }

    /// Number of paired samples collected.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Per-sample speedups (base / enhanced, so values above 1 mean the
    /// enhanced system is faster).
    pub fn speedups(&self) -> Vec<f64> {
        self.base
            .iter()
            .zip(&self.enhanced)
            .map(|(b, e)| b / e)
            .collect()
    }

    /// The 95 % confidence interval of the per-sample speedup.
    pub fn speedup_interval(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_samples(&self.speedups())
    }

    /// Overall speedup computed from the totals (equivalent to weighting
    /// samples by their base duration).
    pub fn aggregate_speedup(&self) -> f64 {
        let base: f64 = self.base.iter().sum();
        let enhanced: f64 = self.enhanced.iter().sum();
        if enhanced == 0.0 {
            0.0
        } else {
            base / enhanced
        }
    }
}

/// Convenience wrapper: paired speedup interval from two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths or contain non-positive
/// values.
pub fn paired_speedup(base: &[f64], enhanced: &[f64]) -> ConfidenceInterval {
    assert_eq!(base.len(), enhanced.len(), "paired samples must align");
    let mut samples = PairedSamples::new();
    for (&b, &e) in base.iter().zip(enhanced) {
        samples.push(b, e);
    }
    samples.speedup_interval()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_and_aggregate() {
        let mut s = PairedSamples::new();
        s.push(100.0, 50.0);
        s.push(200.0, 100.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.speedups(), vec![2.0, 2.0]);
        assert!((s.aggregate_speedup() - 2.0).abs() < 1e-12);
        let ci = s.speedup_interval();
        assert!((ci.mean - 2.0).abs() < 1e-12);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn pairing_reduces_variance_versus_unpaired_ratio() {
        // Samples vary a lot in absolute cost but the per-sample improvement
        // is consistently 25 %.
        let base = [100.0, 1000.0, 50.0, 400.0];
        let enhanced: Vec<f64> = base.iter().map(|b| b * 0.8).collect();
        let ci = paired_speedup(&base, &enhanced);
        assert!((ci.mean - 1.25).abs() < 1e-9);
        assert!(ci.half_width < 1e-9);
    }

    #[test]
    fn empty_collection_behaves() {
        let s = PairedSamples::new();
        assert!(s.is_empty());
        assert_eq!(s.aggregate_speedup(), 0.0);
        assert_eq!(s.speedup_interval().samples, 0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_slices_panic() {
        let _ = paired_speedup(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_measurement_rejected() {
        let mut s = PairedSamples::new();
        s.push(0.0, 1.0);
    }
}
