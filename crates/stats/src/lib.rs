//! Statistics helpers for the SMS reproduction: summary statistics,
//! Student-t confidence intervals and paired-measurement sampling
//! (the paper follows the SMARTS/paired-sampling methodology and reports
//! 95 % confidence intervals on performance changes).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confidence;
pub mod sampling;
pub mod summary;

pub use confidence::ConfidenceInterval;
pub use sampling::{paired_speedup, PairedSamples};
pub use summary::{geometric_mean, mean, std_dev, variance};
