//! Hand-computed reference values for the stats crate: every formula is
//! checked against numbers worked out by hand (or with a table), not against
//! the implementation itself, plus serialization round-trips through the
//! vendored serde/serde_json stack.

use stats::{
    geometric_mean, mean, paired_speedup, std_dev, variance, ConfidenceInterval, PairedSamples,
};

const EPS: f64 = 1e-12;

#[test]
fn confidence_interval_matches_t_table_by_hand() {
    // Samples 1..=5: mean 3, sample variance 2.5, std dev sqrt(2.5),
    // SEM = sqrt(2.5)/sqrt(5) = sqrt(0.5), dof 4 => t = 2.776.
    let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
    let ci = ConfidenceInterval::from_samples(&xs);
    assert!((ci.mean - 3.0).abs() < EPS);
    let expected_half = 2.776 * 0.5f64.sqrt();
    assert!(
        (ci.half_width - expected_half).abs() < 1e-9,
        "got {}, expected {expected_half}",
        ci.half_width
    );
    assert!((ci.low() - (3.0 - expected_half)).abs() < EPS);
    assert!((ci.high() - (3.0 + expected_half)).abs() < EPS);
}

#[test]
fn two_samples_use_the_wide_t_value() {
    // dof 1 => t = 12.706.  Samples 10 and 20: mean 15, std dev
    // sqrt(50) = 5*sqrt(2), SEM = 5, half-width = 63.53.
    let ci = ConfidenceInterval::from_samples(&[10.0, 20.0]);
    assert!((ci.mean - 15.0).abs() < EPS);
    assert!((ci.half_width - 12.706 * 5.0).abs() < 1e-9);
}

#[test]
fn excludes_is_exclusive_of_the_boundary() {
    let ci = ConfidenceInterval {
        mean: 1.0,
        half_width: 0.25,
        samples: 10,
    };
    assert!(!ci.excludes(0.75));
    assert!(!ci.excludes(1.25));
    assert!(ci.excludes(0.7499999));
    assert!(ci.excludes(1.2500001));
}

#[test]
fn summary_statistics_by_hand() {
    // mean: (3 + 5 + 7) / 3 = 5;  variance: (4 + 0 + 4) / 2 = 4; sd 2.
    let xs = [3.0, 5.0, 7.0];
    assert!((mean(&xs) - 5.0).abs() < EPS);
    assert!((variance(&xs) - 4.0).abs() < EPS);
    assert!((std_dev(&xs) - 2.0).abs() < EPS);
    // Geometric mean of 1, 4, 16 is (64)^(1/3) = 4.
    assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-9);
}

#[test]
fn aggregate_speedup_weights_by_base_duration() {
    // Per-sample speedups are 2.0 and 1.0 (mean 1.5), but the aggregate
    // weights by base time: (100 + 10) / (50 + 10) = 11/6.
    let mut s = PairedSamples::new();
    s.push(100.0, 50.0);
    s.push(10.0, 10.0);
    let ci = s.speedup_interval();
    assert!((ci.mean - 1.5).abs() < EPS);
    assert!((s.aggregate_speedup() - 11.0 / 6.0).abs() < EPS);
    // Half-width by hand: speedups [2, 1], sd = sqrt(0.5), SEM = 0.5,
    // dof 1 => 12.706 * 0.5.
    assert!((ci.half_width - 12.706 * 0.5).abs() < 1e-9);
}

#[test]
fn paired_speedup_matches_manual_interval() {
    let base = [120.0, 80.0, 100.0];
    let enhanced = [60.0, 50.0, 40.0];
    // speedups: 2.0, 1.6, 2.5 => mean 6.1/3.
    let ci = paired_speedup(&base, &enhanced);
    assert!((ci.mean - 6.1 / 3.0).abs() < 1e-9);
    assert_eq!(ci.samples, 3);
    // Manual: deviations from mean m = 2.0333..: s^2 = sum(d^2)/2.
    let m: f64 = 6.1 / 3.0;
    let var = ((2.0 - m).powi(2) + (1.6 - m).powi(2) + (2.5 - m).powi(2)) / 2.0;
    let expected = 4.303 * (var / 3.0).sqrt();
    assert!((ci.half_width - expected).abs() < 1e-9);
}

#[test]
fn confidence_interval_serializes_and_round_trips() {
    let ci = ConfidenceInterval {
        mean: 1.25,
        half_width: 0.5,
        samples: 7,
    };
    let json = serde_json::to_string(&ci).expect("serialize");
    assert_eq!(json, r#"{"mean":1.25,"half_width":0.5,"samples":7}"#);
    let back: ConfidenceInterval = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, ci);
}

#[test]
fn paired_samples_round_trip_through_json() {
    let mut s = PairedSamples::new();
    s.push(2.0, 1.0);
    s.push(4.0, 3.0);
    let json = serde_json::to_string_pretty(&s).expect("serialize");
    let back: PairedSamples = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, s);
}
