//! Property-based equivalence of the struct-of-arrays AGT and PHT against
//! reference map-backed implementations.
//!
//! The hot-path storage rework (flat SoA CAMs for the bounded AGT tables,
//! SoA slot columns for the bounded PHT) is meant to be behaviorally
//! identical by construction: same lookups, same LRU victims (ticks are
//! unique, so the minimum is unambiguous), same `TrainedPattern` sequences.
//! These suites drive both implementations with the same random access
//! streams and demand bit-exact agreement on every externally visible
//! output — a divergent eviction victim anywhere would surface as a
//! mismatched outcome on a later access.

use proptest::prelude::*;
use sms::agt::{ActiveGenerationTable, AgtConfig, RecordOutcome, TrainedPattern};
use sms::pattern::SpatialPattern;
use sms::pht::{PatternHistoryTable, PhtCapacity};
use sms::region::RegionConfig;
use std::collections::HashMap;
use trace::Pc;

// ---------------------------------------------------------------------------
// Reference AGT: the pre-SoA map-backed implementation, verbatim semantics.
// ---------------------------------------------------------------------------

struct RefFilterEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    lru: u64,
}

struct RefAccumEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    pattern: SpatialPattern,
    lru: u64,
}

struct RefAgt {
    region: RegionConfig,
    config: AgtConfig,
    filter: HashMap<u64, RefFilterEntry>,
    accumulation: HashMap<u64, RefAccumEntry>,
    tick: u64,
}

impl RefAgt {
    fn new(region: RegionConfig, config: AgtConfig) -> Self {
        Self {
            region,
            config,
            filter: HashMap::new(),
            accumulation: HashMap::new(),
            tick: 0,
        }
    }

    fn live_generations(&self) -> usize {
        self.filter.len() + self.accumulation.len()
    }

    fn record_access(&mut self, addr: u64, pc: Pc) -> RecordOutcome {
        self.tick += 1;
        let base = self.region.region_base(addr);
        let offset = self.region.region_offset(addr);
        if let Some(entry) = self.accumulation.get_mut(&base) {
            entry.pattern.set(offset);
            entry.lru = self.tick;
            return RecordOutcome {
                is_trigger: false,
                spilled: None,
            };
        }
        if let Some(entry) = self.filter.get_mut(&base) {
            if entry.trigger_offset == offset {
                entry.lru = self.tick;
                return RecordOutcome {
                    is_trigger: false,
                    spilled: None,
                };
            }
            let fe = self.filter.remove(&base).expect("just found");
            let mut pattern = SpatialPattern::new(self.region.blocks_per_region());
            pattern.set(fe.trigger_offset);
            pattern.set(offset);
            let spilled = self.insert_accumulation(
                base,
                RefAccumEntry {
                    trigger_pc: fe.trigger_pc,
                    trigger_offset: fe.trigger_offset,
                    pattern,
                    lru: self.tick,
                },
            );
            return RecordOutcome {
                is_trigger: false,
                spilled,
            };
        }
        if let Some(cap) = self.config.filter_entries {
            if self.filter.len() >= cap {
                if let Some((&victim, _)) = self.filter.iter().min_by_key(|(_, e)| e.lru) {
                    self.filter.remove(&victim);
                }
            }
        }
        self.filter.insert(
            base,
            RefFilterEntry {
                trigger_pc: pc,
                trigger_offset: offset,
                lru: self.tick,
            },
        );
        RecordOutcome {
            is_trigger: true,
            spilled: None,
        }
    }

    fn insert_accumulation(&mut self, base: u64, entry: RefAccumEntry) -> Option<TrainedPattern> {
        let mut spilled = None;
        if let Some(cap) = self.config.accumulation_entries {
            if self.accumulation.len() >= cap {
                if let Some((&victim, _)) = self.accumulation.iter().min_by_key(|(_, e)| e.lru) {
                    let e = self.accumulation.remove(&victim).expect("victim found");
                    spilled = Some(TrainedPattern {
                        region_base: victim,
                        trigger_pc: e.trigger_pc,
                        trigger_offset: e.trigger_offset,
                        pattern: e.pattern,
                    });
                }
            }
        }
        self.accumulation.insert(base, entry);
        spilled
    }

    fn end_generation(&mut self, block_addr: u64) -> Option<TrainedPattern> {
        let base = self.region.region_base(block_addr);
        if self.filter.remove(&base).is_some() {
            return None;
        }
        self.accumulation.remove(&base).map(|e| TrainedPattern {
            region_base: base,
            trigger_pc: e.trigger_pc,
            trigger_offset: e.trigger_offset,
            pattern: e.pattern,
        })
    }

    fn drain(&mut self) -> Vec<TrainedPattern> {
        self.filter.clear();
        let mut out: Vec<TrainedPattern> = self
            .accumulation
            .drain()
            .map(|(base, e)| TrainedPattern {
                region_base: base,
                trigger_pc: e.trigger_pc,
                trigger_offset: e.trigger_offset,
                pattern: e.pattern,
            })
            .collect();
        out.sort_by_key(|t| t.region_base);
        out
    }
}

/// Drives both AGTs with the same op stream and asserts bit-exact agreement
/// on every outcome.  Ops: `(region index, block offset, pc, op selector)`.
fn check_agt_equivalence(config: AgtConfig, ops: &[(u8, u8, u8, u8)]) {
    // Small 8-block regions force frequent same-region traffic and spills.
    let region = RegionConfig::new(512, 64);
    let mut soa = ActiveGenerationTable::new(region, config);
    let mut reference = RefAgt::new(region, config);
    for (step, &(region_idx, block, pc, op)) in ops.iter().enumerate() {
        let addr = u64::from(region_idx) * 512 + u64::from(block % 8) * 64;
        match op {
            // Mostly accesses; occasional generation ends and mid-stream
            // drains exercise removal and the full-drain path.
            0..=15 => {
                let got = soa.record_access(addr, Pc::from(pc));
                let want = reference.record_access(addr, Pc::from(pc));
                assert_eq!(got, want, "record_access diverged at step {step}");
            }
            16..=18 => {
                let got = soa.end_generation(addr);
                let want = reference.end_generation(addr);
                assert_eq!(got, want, "end_generation diverged at step {step}");
            }
            _ => {
                assert_eq!(soa.drain(), reference.drain(), "drain diverged at {step}");
            }
        }
        assert_eq!(
            soa.live_generations(),
            reference.live_generations(),
            "live generation count diverged at step {step}"
        );
    }
    assert_eq!(soa.drain(), reference.drain(), "final drain diverged");
}

// ---------------------------------------------------------------------------
// Reference PHT: per-set vectors with explicit key-match / free-way / LRU
// eviction resolution.
// ---------------------------------------------------------------------------

struct RefPht {
    sets: Vec<Vec<(u64, SpatialPattern, u64)>>,
    associativity: usize,
    tick: u64,
}

impl RefPht {
    fn new(entries: usize, associativity: usize) -> Self {
        Self {
            sets: vec![Vec::new(); entries / associativity],
            associativity,
            tick: 0,
        }
    }

    fn insert(&mut self, key: u64, pattern: SpatialPattern) {
        self.tick += 1;
        let tick = self.tick;
        let num_sets = self.sets.len();
        let set = &mut self.sets[(key as usize) % num_sets];
        if let Some(way) = set.iter_mut().find(|(k, _, _)| *k == key) {
            *way = (key, pattern, tick);
            return;
        }
        if set.len() < self.associativity {
            set.push((key, pattern, tick));
            return;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, lru))| *lru)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        set[victim] = (key, pattern, tick);
    }

    fn lookup(&mut self, key: u64) -> Option<SpatialPattern> {
        self.tick += 1;
        let tick = self.tick;
        let num_sets = self.sets.len();
        let way = self.sets[(key as usize) % num_sets]
            .iter_mut()
            .find(|(k, _, _)| *k == key)?;
        way.2 = tick;
        Some(way.1)
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

fn check_pht_equivalence(entries: usize, associativity: usize, ops: &[(u8, bool, u8)]) {
    let mut soa = PatternHistoryTable::new(PhtCapacity::Bounded {
        entries,
        associativity,
    });
    let mut reference = RefPht::new(entries, associativity);
    for (step, &(key, is_insert, offset)) in ops.iter().enumerate() {
        // A small key universe hammers each set well past its associativity.
        let key = u64::from(key % 32);
        if is_insert {
            let pattern = SpatialPattern::from_offsets(32, &[u32::from(offset % 32)]);
            soa.insert(key, pattern);
            reference.insert(key, pattern);
        } else {
            assert_eq!(
                soa.lookup(key),
                reference.lookup(key),
                "lookup diverged at step {step}"
            );
        }
        assert_eq!(soa.len(), reference.len(), "len diverged at step {step}");
    }
    // Sweep the key universe once at the end: surviving residents (and
    // thus every eviction decision along the way) must match exactly.
    for key in 0..32u64 {
        assert_eq!(
            soa.lookup(key),
            reference.lookup(key),
            "final residency of key {key} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn soa_agt_matches_reference_at_paper_capacity(
        ops in proptest::collection::vec((0u8..24, 0u8..8, 1u8..16, 0u8..20), 0..400),
    ) {
        // 24 regions against 32/64 capacity: fills but rarely overflows.
        check_agt_equivalence(AgtConfig::paper_default(), &ops);
    }

    #[test]
    fn soa_agt_matches_reference_under_eviction_pressure(
        ops in proptest::collection::vec((0u8..32, 0u8..8, 1u8..16, 0u8..20), 0..400),
        filter_cap in 1usize..5,
        accum_cap in 1usize..5,
    ) {
        // Tiny tables: nearly every insert victimizes, pinning LRU choice.
        let config = AgtConfig {
            filter_entries: Some(filter_cap),
            accumulation_entries: Some(accum_cap),
        };
        check_agt_equivalence(config, &ops);
    }

    #[test]
    fn unbounded_agt_fallback_matches_reference(
        ops in proptest::collection::vec((0u8..16, 0u8..8, 1u8..16, 0u8..20), 0..300),
    ) {
        check_agt_equivalence(AgtConfig::unbounded(), &ops);
    }

    #[test]
    fn soa_pht_matches_reference(
        ops in proptest::collection::vec((0u8..255, proptest::bool::weighted(0.6), 0u8..255), 0..400),
    ) {
        // 4 sets x 2 ways and 2 sets x 4 ways, both under heavy conflict.
        check_pht_equivalence(8, 2, &ops);
        check_pht_equivalence(8, 4, &ops);
    }
}
