//! Coverage / uncovered / overprediction accounting.
//!
//! The paper's figures report, for each predictor configuration and relative
//! to the read misses of a baseline system without prefetching:
//!
//! * **coverage** — the fraction of baseline misses the predictor eliminates;
//! * **uncovered** — the fraction that remain (including any new misses the
//!   predictor's cache pollution introduces); and
//! * **overpredictions** — blocks fetched but evicted or invalidated before
//!   any demand use, expressed as a fraction of baseline misses (which is why
//!   some bars in Figures 6, 8 and 11 exceed 100 %).

use memsim::RunSummary;
use serde::{Deserialize, Serialize};

/// Which cache level coverage is being measured at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageLevel {
    /// Primary-cache read misses.
    L1,
    /// Off-chip (L2) read misses.
    L2,
}

/// Coverage statistics for one predictor run against a baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Read misses of the baseline system.
    pub baseline_misses: u64,
    /// Read misses remaining with the predictor enabled.
    pub remaining_misses: u64,
    /// Prefetched blocks evicted or invalidated before use.
    pub overpredictions: u64,
    /// Useful prefetches (demand hits on previously-unused prefetched lines).
    pub useful_prefetches: u64,
}

impl CoverageStats {
    /// Builds coverage statistics from a baseline and a predictor run at the
    /// given level.
    pub fn from_runs(baseline: &RunSummary, with: &RunSummary, level: CoverageLevel) -> Self {
        let (base_stats, with_stats) = match level {
            CoverageLevel::L1 => (&baseline.l1, &with.l1),
            CoverageLevel::L2 => (&baseline.l2, &with.l2),
        };
        Self {
            baseline_misses: base_stats.read_misses,
            remaining_misses: with_stats.read_misses,
            overpredictions: with_stats.prefetch_unused_evictions,
            useful_prefetches: with_stats.prefetch_hits,
        }
    }

    /// Fraction of baseline misses eliminated (can be negative if the
    /// predictor polluted the cache badly; clamped at -1 for sanity).
    pub fn coverage(&self) -> f64 {
        if self.baseline_misses == 0 {
            return 0.0;
        }
        let covered = self.baseline_misses as f64 - self.remaining_misses as f64;
        (covered / self.baseline_misses as f64).max(-1.0)
    }

    /// Fraction of baseline misses that remain.
    pub fn uncovered(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            self.remaining_misses as f64 / self.baseline_misses as f64
        }
    }

    /// Overpredictions as a fraction of baseline misses.
    pub fn overprediction_fraction(&self) -> f64 {
        if self.baseline_misses == 0 {
            0.0
        } else {
            self.overpredictions as f64 / self.baseline_misses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::CacheStats;

    fn summary(read_misses: u64, prefetch_unused: u64, prefetch_hits: u64) -> RunSummary {
        RunSummary {
            accesses: 1000,
            l1: CacheStats {
                reads: 800,
                read_misses,
                prefetch_unused_evictions: prefetch_unused,
                prefetch_hits,
                ..Default::default()
            },
            l2: CacheStats {
                reads: read_misses,
                read_misses: read_misses / 2,
                prefetch_unused_evictions: prefetch_unused / 2,
                prefetch_hits: prefetch_hits / 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn coverage_math() {
        let baseline = summary(100, 0, 0);
        let with = summary(40, 25, 55);
        let c = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L1);
        assert_eq!(c.baseline_misses, 100);
        assert!((c.coverage() - 0.6).abs() < 1e-12);
        assert!((c.uncovered() - 0.4).abs() < 1e-12);
        assert!((c.overprediction_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn l2_level_uses_l2_stats() {
        let baseline = summary(100, 0, 0);
        let with = summary(40, 24, 10);
        let c = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L2);
        assert_eq!(c.baseline_misses, 50);
        assert_eq!(c.remaining_misses, 20);
        assert_eq!(c.overpredictions, 12);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let baseline = summary(0, 0, 0);
        let with = summary(0, 0, 0);
        let c = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L1);
        assert_eq!(c.coverage(), 0.0);
        assert_eq!(c.uncovered(), 0.0);
        assert_eq!(c.overprediction_fraction(), 0.0);
    }

    #[test]
    fn pollution_clamps_at_minus_one() {
        let baseline = summary(10, 0, 0);
        let with = summary(100, 0, 0);
        let c = CoverageStats::from_runs(&baseline, &with, CoverageLevel::L1);
        assert!(c.coverage() >= -1.0);
    }
}
