//! Spatial region geometry.

use serde::{Deserialize, Serialize};

/// Geometry of spatial regions: the region size and the cache block size it
/// is divided into.
///
/// The paper fixes blocks at 64 B and sweeps regions from 128 B to the 8 kB
/// OS page size, settling on 2 kB (32 blocks) as the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionConfig {
    /// Spatial region size in bytes (power of two).
    pub region_bytes: u64,
    /// Cache block size in bytes (power of two, smaller than the region).
    pub block_bytes: u64,
}

impl RegionConfig {
    /// Creates a region configuration.
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two, or the region does not
    /// hold at least two blocks.
    pub fn new(region_bytes: u64, block_bytes: u64) -> Self {
        assert!(
            region_bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(
            region_bytes >= 2 * block_bytes,
            "a region must span at least two blocks"
        );
        Self {
            region_bytes,
            block_bytes,
        }
    }

    /// The paper's default: 2 kB regions of 64 B blocks.
    pub fn paper_default() -> Self {
        Self::new(2048, 64)
    }

    /// Number of blocks per region.
    pub fn blocks_per_region(&self) -> u32 {
        (self.region_bytes / self.block_bytes) as u32
    }

    /// Region base address containing `addr`.
    pub fn region_base(&self, addr: u64) -> u64 {
        addr & !(self.region_bytes - 1)
    }

    /// Block offset of `addr` within its region.
    pub fn region_offset(&self, addr: u64) -> u32 {
        ((addr & (self.region_bytes - 1)) / self.block_bytes) as u32
    }

    /// Block-aligned address of `addr`.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr & !(self.block_bytes - 1)
    }

    /// Address of the block at `offset` within the region based at `base`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `offset` is outside the region.
    pub fn block_at(&self, base: u64, offset: u32) -> u64 {
        debug_assert!(offset < self.blocks_per_region());
        base + u64::from(offset) * self.block_bytes
    }
}

impl Default for RegionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let r = RegionConfig::paper_default();
        assert_eq!(r.blocks_per_region(), 32);
        assert_eq!(r, RegionConfig::default());
    }

    #[test]
    fn base_offset_block_round_trip() {
        let r = RegionConfig::new(2048, 64);
        let addr = 0x1_2345u64;
        let base = r.region_base(addr);
        let off = r.region_offset(addr);
        assert_eq!(base % 2048, 0);
        assert_eq!(r.block_at(base, off), r.block_addr(addr));
    }

    #[test]
    fn eight_kb_regions_have_128_blocks() {
        let r = RegionConfig::new(8192, 64);
        assert_eq!(r.blocks_per_region(), 128);
        assert_eq!(r.region_offset(8191), 127);
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn degenerate_region_rejected() {
        let _ = RegionConfig::new(64, 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = RegionConfig::new(3000, 64);
    }
}
