//! Alternative training structures: decoupled sectored, logical sectored and
//! the AGT (Figures 8 and 9).
//!
//! All three variants feed the same pattern history table and stream through
//! the same prediction registers; they differ only in *how spatial patterns
//! are observed*:
//!
//! * **AGT** — the decoupled filter/accumulation tables of SMS (Section 3.1);
//! * **Logical sectored (LS)** — a sectored tag array maintained beside the
//!   conventional cache; tag conflicts between interleaved regions fragment
//!   generations but cache contents are unaffected;
//! * **Decoupled sectored (DS)** — the sectored tag array additionally
//!   constrains cache contents, so accesses that hit in the conventional
//!   cache can still miss in the sectored organization.  Those extra misses
//!   are tracked and reported as additional uncovered misses, reproducing the
//!   penalty visible in Figure 8.

use crate::index::IndexScheme;
use crate::pattern::SpatialPattern;
use crate::pht::{PatternHistoryTable, PhtCapacity};
use crate::predictor::SmsPredictor;
use crate::region::RegionConfig;
use crate::streamer::{PredictionRegisterFile, StreamerConfig};
use crate::SmsConfig;
use memsim::{
    DecoupledSectoredCache, LogicalSectoredTags, PrefetchLevel, PrefetchRequest, Prefetcher,
    SectorEviction, SystemOutcome,
};
use serde::{Deserialize, Serialize};
use trace::MemAccess;

/// Which training structure observes spatial patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainerKind {
    /// Decoupled sectored cache (spatial footprint predictor style).
    DecoupledSectored,
    /// Logical sectored tag array (spatial pattern predictor style).
    LogicalSectored,
    /// The SMS active generation table.
    Agt,
}

impl TrainerKind {
    /// All trainers in the order Figure 8 presents them.
    pub const ALL: [TrainerKind; 3] = [
        TrainerKind::DecoupledSectored,
        TrainerKind::LogicalSectored,
        TrainerKind::Agt,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TrainerKind::DecoupledSectored => "DS",
            TrainerKind::LogicalSectored => "LS",
            TrainerKind::Agt => "AGT",
        }
    }
}

/// Per-CPU state for the sectored trainers.
#[derive(Debug)]
enum SectoredState {
    Decoupled(DecoupledSectoredCache),
    Logical(LogicalSectoredTags),
}

#[derive(Debug)]
struct SectoredCpu {
    state: SectoredState,
    pht: PatternHistoryTable,
    registers: PredictionRegisterFile,
    extra_misses: u64,
}

/// A prefetcher whose training structure is selectable, used by the Figure 8
/// and Figure 9 experiments.
#[derive(Debug)]
pub struct TrainingPrefetcher {
    kind: TrainerKind,
    region: RegionConfig,
    index_scheme: IndexScheme,
    /// AGT variant reuses the full SMS predictor.
    agt: Vec<SmsPredictor>,
    sectored: Vec<SectoredCpu>,
}

impl TrainingPrefetcher {
    /// Creates a trainer-comparison prefetcher for `num_cpus` processors.
    ///
    /// `l1_capacity_bytes` sizes the sectored tag arrays to match the cache
    /// they shadow.  `pht` bounds the pattern history table (all variants use
    /// the same bound).
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(
        num_cpus: usize,
        kind: TrainerKind,
        region: RegionConfig,
        index_scheme: IndexScheme,
        pht: PhtCapacity,
        l1_capacity_bytes: u64,
    ) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        let streamer = StreamerConfig::paper_default();
        let mut agt = Vec::new();
        let mut sectored = Vec::new();
        match kind {
            TrainerKind::Agt => {
                let config = SmsConfig {
                    region,
                    index_scheme,
                    agt: crate::agt::AgtConfig::unbounded(),
                    pht,
                    streamer,
                };
                agt = (0..num_cpus).map(|_| SmsPredictor::new(&config)).collect();
            }
            TrainerKind::DecoupledSectored | TrainerKind::LogicalSectored => {
                for _ in 0..num_cpus {
                    let state = match kind {
                        TrainerKind::DecoupledSectored => {
                            SectoredState::Decoupled(DecoupledSectoredCache::new(
                                l1_capacity_bytes,
                                region.region_bytes,
                                region.block_bytes,
                                2,
                                2,
                            ))
                        }
                        _ => SectoredState::Logical(LogicalSectoredTags::new(
                            l1_capacity_bytes,
                            region.region_bytes,
                            region.block_bytes,
                            2,
                        )),
                    };
                    sectored.push(SectoredCpu {
                        state,
                        pht: PatternHistoryTable::new(pht),
                        registers: PredictionRegisterFile::new(region, streamer),
                        extra_misses: 0,
                    });
                }
            }
        }
        Self {
            kind,
            region,
            index_scheme,
            agt,
            sectored,
        }
    }

    /// The training structure in use.
    pub fn kind(&self) -> TrainerKind {
        self.kind
    }

    /// Extra misses the decoupled sectored organization would incur compared
    /// to the conventional cache (always zero for LS and AGT).
    pub fn extra_misses(&self) -> u64 {
        self.sectored.iter().map(|c| c.extra_misses).sum()
    }

    /// Patterns currently stored in the PHT(s), summed over processors.
    pub fn pht_len(&self) -> usize {
        if self.kind == TrainerKind::Agt {
            self.agt.iter().map(|p| p.pht_len()).sum()
        } else {
            self.sectored.iter().map(|c| c.pht.len()).sum()
        }
    }

    fn train_sectored(
        region: &RegionConfig,
        index_scheme: IndexScheme,
        pht: &mut PatternHistoryTable,
        eviction: SectorEviction,
    ) {
        // Filter-table semantics: single-block generations are not worth
        // predicting.
        if eviction.accessed_offsets.len() < 2 {
            return;
        }
        let pattern =
            SpatialPattern::from_offsets(region.blocks_per_region(), &eviction.accessed_offsets);
        let trigger_addr = region.block_at(eviction.region_base, eviction.trigger_offset);
        let key = index_scheme.key(eviction.trigger_pc, trigger_addr, region);
        pht.insert(key, pattern);
    }

    fn sectored_on_access(&mut self, access: &MemAccess, l1_hit: bool) -> Vec<u64> {
        let cpu = access.cpu as usize;
        let region = self.region;
        let index_scheme = self.index_scheme;
        let state = &mut self.sectored[cpu];
        let outcome = match &mut state.state {
            SectoredState::Decoupled(ds) => ds.access(access.addr, access.pc),
            SectoredState::Logical(ls) => ls.observe(access.addr, access.pc),
        };
        // The decoupled sectored organization *is* the cache: an access that
        // hits in the conventional L1 but misses in the sectored tags is an
        // extra miss its constrained contents would cost (Figure 8).
        if matches!(state.state, SectoredState::Decoupled(_)) && l1_hit && !outcome.hit {
            state.extra_misses += 1;
        }
        if let Some(completed) = outcome.completed {
            Self::train_sectored(&region, index_scheme, &mut state.pht, completed);
        }
        if outcome.allocated_sector {
            let key = index_scheme.key(access.pc, access.addr, &region);
            if let Some(mut pattern) = state.pht.lookup(key) {
                pattern.clear(region.region_offset(access.addr));
                state
                    .registers
                    .allocate(region.region_base(access.addr), pattern);
            }
        }
        state.registers.drain()
    }

    fn sectored_on_removal(&mut self, cpu: usize, block_addr: u64) {
        let region = self.region;
        let index_scheme = self.index_scheme;
        let state = &mut self.sectored[cpu];
        let completed = match &mut state.state {
            SectoredState::Decoupled(ds) => ds.invalidate(block_addr),
            SectoredState::Logical(ls) => ls.invalidate(block_addr),
        };
        if let Some(completed) = completed {
            Self::train_sectored(&region, index_scheme, &mut state.pht, completed);
        }
    }
}

impl Prefetcher for TrainingPrefetcher {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        let cpu = access.cpu as usize;
        let stream_blocks = match self.kind {
            TrainerKind::Agt => {
                if cpu >= self.agt.len() {
                    return Vec::new();
                }
                let blocks = self.agt[cpu].on_access(access.addr, access.pc);
                if let Some(evicted) = &outcome.hierarchy.l1_evicted {
                    self.agt[cpu].on_block_removed(evicted.block_addr);
                }
                for (inv_cpu, block) in &outcome.remote_invalidations {
                    if (*inv_cpu as usize) < self.agt.len() {
                        self.agt[*inv_cpu as usize].on_block_removed(*block);
                    }
                }
                blocks
            }
            TrainerKind::DecoupledSectored | TrainerKind::LogicalSectored => {
                if cpu >= self.sectored.len() {
                    return Vec::new();
                }
                let blocks = self.sectored_on_access(access, outcome.hierarchy.l1_hit);
                // Sectored trainers also observe evictions/invalidations of
                // the real cache so their generations end no later than the
                // conventional cache's.
                if let Some(evicted) = &outcome.hierarchy.l1_evicted {
                    self.sectored_on_removal(cpu, evicted.block_addr);
                }
                for (inv_cpu, block) in &outcome.remote_invalidations {
                    if (*inv_cpu as usize) < self.sectored.len() {
                        self.sectored_on_removal(*inv_cpu as usize, *block);
                    }
                }
                blocks
            }
        };
        stream_blocks
            .into_iter()
            .map(|addr| PrefetchRequest {
                cpu: access.cpu,
                addr,
                level: PrefetchLevel::L1,
            })
            .collect()
    }

    fn on_stream_eviction(&mut self, cpu: u8, block_addr: u64) {
        match self.kind {
            TrainerKind::Agt => {
                if (cpu as usize) < self.agt.len() {
                    self.agt[cpu as usize].on_block_removed(block_addr);
                }
            }
            _ => {
                if (cpu as usize) < self.sectored.len() {
                    self.sectored_on_removal(cpu as usize, block_addr);
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.kind.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher, RunSummary};
    use trace::{Application, GeneratorConfig};

    fn run_with(kind: TrainerKind, app: Application, n: usize) -> RunSummary {
        let gen_cfg = GeneratorConfig::default().with_cpus(2);
        let hier = HierarchyConfig::scaled();
        let mut sys = MultiCpuSystem::new(2, &hier);
        let mut trainer = TrainingPrefetcher::new(
            2,
            kind,
            RegionConfig::paper_default(),
            IndexScheme::PcOffset,
            PhtCapacity::Unbounded,
            hier.l1.capacity_bytes,
        );
        let mut stream = app.stream(7, &gen_cfg);
        memsim::run(&mut sys, &mut trainer, &mut stream, n)
    }

    fn baseline(app: Application, n: usize) -> RunSummary {
        let gen_cfg = GeneratorConfig::default().with_cpus(2);
        let hier = HierarchyConfig::scaled();
        let mut sys = MultiCpuSystem::new(2, &hier);
        let mut p = NullPrefetcher::new();
        let mut stream = app.stream(7, &gen_cfg);
        memsim::run(&mut sys, &mut p, &mut stream, n)
    }

    #[test]
    fn all_trainers_provide_some_coverage_on_dss() {
        let base = baseline(Application::DssQry1, 40_000);
        for kind in TrainerKind::ALL {
            let with = run_with(kind, Application::DssQry1, 40_000);
            assert!(
                with.l1.read_misses < base.l1.read_misses,
                "{} did not reduce misses ({} vs {})",
                kind.label(),
                with.l1.read_misses,
                base.l1.read_misses
            );
        }
    }

    #[test]
    fn agt_matches_or_beats_logical_sectored_on_oltp() {
        // Interleaved OLTP accesses fragment sectored generations; the AGT
        // should retain at least as much coverage.
        let base = baseline(Application::OltpDb2, 60_000);
        let agt = run_with(TrainerKind::Agt, Application::OltpDb2, 60_000);
        let ls = run_with(TrainerKind::LogicalSectored, Application::OltpDb2, 60_000);
        let agt_cov =
            (base.l1.read_misses as f64 - agt.l1.read_misses as f64) / base.l1.read_misses as f64;
        let ls_cov =
            (base.l1.read_misses as f64 - ls.l1.read_misses as f64) / base.l1.read_misses as f64;
        assert!(
            agt_cov >= ls_cov - 0.02,
            "AGT coverage {agt_cov:.3} should not trail LS coverage {ls_cov:.3}"
        );
    }

    #[test]
    fn trainer_labels_and_kind() {
        let t = TrainingPrefetcher::new(
            1,
            TrainerKind::LogicalSectored,
            RegionConfig::paper_default(),
            IndexScheme::PcOffset,
            PhtCapacity::Unbounded,
            64 * 1024,
        );
        assert_eq!(t.kind(), TrainerKind::LogicalSectored);
        assert_eq!(t.name(), "LS");
        assert_eq!(TrainerKind::Agt.label(), "AGT");
        assert_eq!(t.extra_misses(), 0);
    }
}
