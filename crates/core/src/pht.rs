//! The Pattern History Table (PHT).
//!
//! The PHT provides long-term storage of spatial patterns.  It is organized
//! like a set-associative cache indexed by the prediction key (Section 3.2);
//! the practical configuration in the paper is 16 k entries, 16-way
//! set-associative — about the same storage as a 64 kB L1 data array.  An
//! unbounded variant supports the paper's limit studies (Figures 6, 8, 10).
//!
//! Storage is hot-path tuned: the bounded table is one flat, open-addressed
//! slot array (a set is a fixed run of ways, scanned linearly — no per-set
//! vector indirection or insert-time allocation), and the unbounded map uses
//! the simulator's fast deterministic hasher.  Both changes are strictly
//! representational: lookup, LRU refresh and LRU eviction behave exactly as
//! before (ticks are unique, so the LRU victim is unambiguous), which the
//! eviction-order tests below and the workspace golden hashes pin.

use crate::pattern::SpatialPattern;
use memsim::FastMap;
use serde::{Deserialize, Serialize};

/// Storage capacity of the PHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhtCapacity {
    /// Unlimited storage (limit studies).
    Unbounded,
    /// A set-associative table with `entries` total entries organized in
    /// `associativity`-way sets.
    Bounded {
        /// Total number of entries.
        entries: usize,
        /// Ways per set.
        associativity: usize,
    },
}

impl PhtCapacity {
    /// The paper's practical configuration: 16 k entries, 16-way.
    pub fn paper_default() -> Self {
        PhtCapacity::Bounded {
            entries: 16 * 1024,
            associativity: 16,
        }
    }
}

impl Default for PhtCapacity {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// `lru` value marking a free way (live entries carry a tick of at least 1).
const FREE: u64 = 0;

#[derive(Debug, Clone)]
enum Storage {
    Unbounded(FastMap<u64, SpatialPattern>),
    Bounded {
        /// Struct-of-arrays slot storage, `num_sets * associativity` slots
        /// per column; set `s` owns the contiguous run
        /// `s*associativity .. (s+1)*associativity` of every column.  The
        /// probe scans only `keys` and `lru` (16 ways x 8 B each — two cache
        /// lines per column) and touches a `patterns` entry only on a hit,
        /// instead of dragging 40-byte key+pattern+lru slots through the
        /// cache on every way.
        keys: Vec<u64>,
        patterns: Vec<SpatialPattern>,
        lru: Vec<u64>,
        num_sets: usize,
        associativity: usize,
        tick: u64,
        /// Occupied slots, maintained so [`PatternHistoryTable::len`] is O(1).
        occupied: usize,
    },
}

/// Long-term storage of spatial patterns, keyed by the prediction index.
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    storage: Storage,
    insertions: u64,
}

impl PatternHistoryTable {
    /// Creates an empty PHT with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if a bounded capacity has zero entries, zero associativity, or
    /// an entry count not divisible by the associativity.
    pub fn new(capacity: PhtCapacity) -> Self {
        let storage = match capacity {
            PhtCapacity::Unbounded => Storage::Unbounded(FastMap::default()),
            PhtCapacity::Bounded {
                entries,
                associativity,
            } => {
                assert!(
                    entries > 0 && associativity > 0,
                    "PHT capacity must be positive"
                );
                assert!(
                    entries % associativity == 0,
                    "entries must be a multiple of associativity"
                );
                let num_sets = (entries / associativity).max(1);
                let slots = num_sets * associativity;
                Storage::Bounded {
                    keys: vec![0; slots],
                    patterns: vec![SpatialPattern::new(1); slots],
                    lru: vec![FREE; slots],
                    num_sets,
                    associativity,
                    tick: 0,
                    occupied: 0,
                }
            }
        };
        Self {
            storage,
            insertions: 0,
        }
    }

    /// Stores (or overwrites) the pattern for `key`.
    pub fn insert(&mut self, key: u64, pattern: SpatialPattern) {
        self.insertions += 1;
        match &mut self.storage {
            Storage::Unbounded(map) => {
                map.insert(key, pattern);
            }
            Storage::Bounded {
                keys,
                patterns,
                lru,
                num_sets,
                associativity,
                tick,
                occupied,
            } => {
                *tick += 1;
                let start = ((key as usize) % *num_sets) * *associativity;
                // One linear scan over the dense key/lru columns resolves the
                // whole insert: a key match wins outright; otherwise the
                // first free way is preferred (FREE = 0 always loses the lru
                // minimum to live ticks >= 1), and the LRU way (ticks are
                // unique, so the minimum is unambiguous) is the fallback
                // victim.
                let mut victim = 0;
                let mut victim_lru = u64::MAX;
                let mut matched = false;
                for i in 0..*associativity {
                    let slot = start + i;
                    if lru[slot] != FREE && keys[slot] == key {
                        victim = i;
                        matched = true;
                        break;
                    }
                    if lru[slot] < victim_lru {
                        victim_lru = lru[slot];
                        victim = i;
                    }
                }
                let slot = start + victim;
                if !matched && lru[slot] == FREE {
                    *occupied += 1;
                }
                keys[slot] = key;
                patterns[slot] = pattern;
                lru[slot] = *tick;
            }
        }
    }

    /// Looks up the pattern for `key`, refreshing its recency.
    pub fn lookup(&mut self, key: u64) -> Option<SpatialPattern> {
        match &mut self.storage {
            Storage::Unbounded(map) => map.get(&key).copied(),
            Storage::Bounded {
                keys,
                patterns,
                lru,
                num_sets,
                associativity,
                tick,
                ..
            } => {
                *tick += 1;
                let start = ((key as usize) % *num_sets) * *associativity;
                let hit = (start..start + *associativity)
                    .find(|&slot| lru[slot] != FREE && keys[slot] == key)?;
                lru[hit] = *tick;
                Some(patterns[hit])
            }
        }
    }

    /// Number of patterns currently stored.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Unbounded(map) => map.len(),
            Storage::Bounded { occupied, .. } => *occupied,
        }
    }

    /// Whether the table holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total insertions performed (a proxy for training traffic).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(offsets: &[u32]) -> SpatialPattern {
        SpatialPattern::from_offsets(32, offsets)
    }

    #[test]
    fn unbounded_insert_lookup_overwrite() {
        let mut pht = PatternHistoryTable::new(PhtCapacity::Unbounded);
        assert!(pht.is_empty());
        pht.insert(1, pat(&[0, 1]));
        pht.insert(1, pat(&[2]));
        assert_eq!(pht.len(), 1);
        assert_eq!(
            pht.lookup(1).unwrap().iter_set().collect::<Vec<_>>(),
            vec![2]
        );
        assert!(pht.lookup(2).is_none());
        assert_eq!(pht.insertions(), 2);
    }

    #[test]
    fn bounded_capacity_evicts_lru() {
        // 1 set x 2 ways.
        let mut pht = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 2,
            associativity: 2,
        });
        pht.insert(10, pat(&[1]));
        pht.insert(20, pat(&[2]));
        // Touch key 10 so key 20 becomes LRU.
        assert!(pht.lookup(10).is_some());
        pht.insert(30, pat(&[3]));
        assert!(pht.lookup(10).is_some());
        assert!(pht.lookup(20).is_none(), "LRU entry must have been evicted");
        assert!(pht.lookup(30).is_some());
        assert_eq!(pht.len(), 2);
    }

    #[test]
    fn bounded_reinsert_updates_in_place() {
        let mut pht = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 4,
            associativity: 2,
        });
        pht.insert(7, pat(&[1]));
        pht.insert(7, pat(&[1, 2]));
        assert_eq!(pht.len(), 1);
        assert_eq!(pht.lookup(7).unwrap().count(), 2);
    }

    #[test]
    fn keys_map_to_distinct_sets() {
        let mut pht = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 8,
            associativity: 2,
        });
        for key in 0..8u64 {
            pht.insert(key, pat(&[(key % 32) as u32]));
        }
        // 4 sets x 2 ways can hold exactly these 8 keys (0..8 map uniformly).
        assert_eq!(pht.len(), 8);
    }

    #[test]
    fn set_associative_eviction_follows_lru_order() {
        // 2 sets x 4 ways; even keys map to set 0.
        let mut pht = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 8,
            associativity: 4,
        });
        for key in [10u64, 20, 30, 40] {
            pht.insert(key, pat(&[1]));
        }
        // Refresh recency in a scrambled order: LRU order is now 20, 40, 10, 30.
        assert!(pht.lookup(20).is_some());
        assert!(pht.lookup(40).is_some());
        assert!(pht.lookup(10).is_some());
        assert!(pht.lookup(30).is_some());
        // Re-touch 20 again: LRU order becomes 40, 10, 30, 20.
        assert!(pht.lookup(20).is_some());

        // Each insertion of a fresh even key must evict exactly the current
        // LRU way, in order.
        let expected_evictions = [40u64, 10, 30, 20];
        for (i, fresh) in [100u64, 102, 104, 106].into_iter().enumerate() {
            pht.insert(fresh, pat(&[2]));
            let victim = expected_evictions[i];
            assert!(
                pht.lookup(victim).is_none(),
                "inserting {fresh} must evict LRU key {victim}"
            );
            // All later-ranked original keys are still resident (lookups here
            // would disturb recency, so check via a clone).
            let mut snapshot = pht.clone();
            for &survivor in &expected_evictions[i + 1..] {
                assert!(
                    snapshot.lookup(survivor).is_some(),
                    "key {survivor} must survive insertion {fresh}"
                );
            }
        }
        assert_eq!(pht.len(), 4);
    }

    #[test]
    fn eviction_is_per_set_not_global() {
        // 2 sets x 2 ways: filling set 0 (even keys) never evicts set 1's
        // entries, however stale they are.
        let mut pht = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 4,
            associativity: 2,
        });
        pht.insert(1, pat(&[7])); // set 1, never refreshed
        for key in [0u64, 2, 4, 6, 8] {
            pht.insert(key, pat(&[1]));
        }
        assert!(
            pht.lookup(1).is_some(),
            "set-0 pressure must not evict set-1 entries"
        );
    }

    #[test]
    fn paper_default_is_16k_16way() {
        match PhtCapacity::paper_default() {
            PhtCapacity::Bounded {
                entries,
                associativity,
            } => {
                assert_eq!(entries, 16 * 1024);
                assert_eq!(associativity, 16);
            }
            PhtCapacity::Unbounded => panic!("default must be bounded"),
        }
    }

    #[test]
    #[should_panic(expected = "multiple of associativity")]
    fn bad_capacity_rejected() {
        let _ = PatternHistoryTable::new(PhtCapacity::Bounded {
            entries: 10,
            associativity: 16,
        });
    }
}
