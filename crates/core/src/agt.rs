//! The Active Generation Table (AGT): filter table + accumulation table.
//!
//! The AGT observes every L1 data access and records which blocks are touched
//! over the course of each spatial region generation (Figure 2 of the paper):
//!
//! 1. a **trigger access** to a region with no live generation allocates an
//!    entry in the *filter table*, recording the trigger PC and offset;
//! 2. when a second, *distinct* block of the region is accessed, the entry
//!    moves to the *accumulation table* and a pattern bit-vector starts
//!    accumulating;
//! 3. further accesses set bits in the accumulated pattern;
//! 4. when any block of the region is evicted or invalidated, the generation
//!    ends: a filter-table entry is simply discarded (only the trigger was
//!    accessed, so there is nothing worth predicting), while an
//!    accumulation-table entry is handed to the pattern history table.
//!
//! Both tables are small content-addressable memories; when one fills up a
//! victim generation is terminated early (dropped from the filter table, or
//! transferred to the PHT from the accumulation table).

use crate::pattern::SpatialPattern;
use crate::region::RegionConfig;
use memsim::FastMap;
use serde::{Deserialize, Serialize};
use trace::Pc;

/// Capacities of the two AGT tables.  `None` models an unbounded table for
/// limit studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgtConfig {
    /// Filter-table entries (paper default: 32).
    pub filter_entries: Option<usize>,
    /// Accumulation-table entries (paper default: 64).
    pub accumulation_entries: Option<usize>,
}

impl AgtConfig {
    /// The practical configuration from Section 4.5: 32 filter entries and
    /// 64 accumulation entries.
    pub fn paper_default() -> Self {
        Self {
            filter_entries: Some(32),
            accumulation_entries: Some(64),
        }
    }

    /// Unbounded tables, for limit studies.
    pub fn unbounded() -> Self {
        Self {
            filter_entries: None,
            accumulation_entries: None,
        }
    }
}

impl Default for AgtConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A completed (or early-terminated) generation ready to train the PHT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainedPattern {
    /// Base address of the spatial region.
    pub region_base: u64,
    /// PC of the generation's trigger access.
    pub trigger_pc: Pc,
    /// Block offset of the trigger access within the region.
    pub trigger_offset: u32,
    /// Blocks accessed during the generation (trigger included).
    pub pattern: SpatialPattern,
}

/// Result of recording one access in the AGT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordOutcome {
    /// Whether this access was the trigger of a new generation.
    pub is_trigger: bool,
    /// A generation terminated early because the accumulation table was full
    /// and needed a victim; it should still train the PHT.
    pub spilled: Option<TrainedPattern>,
}

#[derive(Debug, Clone)]
struct FilterEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    lru: u64,
}

#[derive(Debug, Clone)]
struct AccumulationEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    pattern: SpatialPattern,
    lru: u64,
}

/// The Active Generation Table.
#[derive(Debug, Clone)]
pub struct ActiveGenerationTable {
    region: RegionConfig,
    config: AgtConfig,
    // Fast deterministic hashing: region-base keyed, looked up on every
    // access.  The capacity-victim scans below stay deterministic despite
    // map iteration order because LRU ticks are unique (the minimum is
    // unambiguous).
    filter: FastMap<u64, FilterEntry>,
    accumulation: FastMap<u64, AccumulationEntry>,
    tick: u64,
}

impl ActiveGenerationTable {
    /// Creates an empty AGT.
    pub fn new(region: RegionConfig, config: AgtConfig) -> Self {
        Self {
            region,
            config,
            filter: FastMap::default(),
            accumulation: FastMap::default(),
            tick: 0,
        }
    }

    /// The region geometry the AGT tracks.
    pub fn region(&self) -> &RegionConfig {
        &self.region
    }

    /// Number of live generations currently tracked (both tables).
    pub fn live_generations(&self) -> usize {
        self.filter.len() + self.accumulation.len()
    }

    /// Records a demand access to `addr` issued by instruction `pc`.
    pub fn record_access(&mut self, addr: u64, pc: Pc) -> RecordOutcome {
        self.tick += 1;
        let base = self.region.region_base(addr);
        let offset = self.region.region_offset(addr);

        // Step 3: accesses to regions already accumulating set pattern bits.
        if let Some(entry) = self.accumulation.get_mut(&base) {
            entry.pattern.set(offset);
            entry.lru = self.tick;
            return RecordOutcome {
                is_trigger: false,
                spilled: None,
            };
        }

        // Step 2: a second distinct block moves the generation from the
        // filter table to the accumulation table.
        if let Some(entry) = self.filter.get_mut(&base) {
            if entry.trigger_offset == offset {
                entry.lru = self.tick;
                return RecordOutcome {
                    is_trigger: false,
                    spilled: None,
                };
            }
            let filter_entry = self.filter.remove(&base).expect("entry just found");
            let mut pattern = SpatialPattern::new(self.region.blocks_per_region());
            pattern.set(filter_entry.trigger_offset);
            pattern.set(offset);
            let spilled = self.insert_accumulation(
                base,
                AccumulationEntry {
                    trigger_pc: filter_entry.trigger_pc,
                    trigger_offset: filter_entry.trigger_offset,
                    pattern,
                    lru: self.tick,
                },
            );
            return RecordOutcome {
                is_trigger: false,
                spilled,
            };
        }

        // Step 1: trigger access allocates in the filter table.
        self.insert_filter(
            base,
            FilterEntry {
                trigger_pc: pc,
                trigger_offset: offset,
                lru: self.tick,
            },
        );
        RecordOutcome {
            is_trigger: true,
            spilled: None,
        }
    }

    fn insert_filter(&mut self, base: u64, entry: FilterEntry) {
        if let Some(cap) = self.config.filter_entries {
            if self.filter.len() >= cap {
                // Victimize the least-recently-used filter entry; it is
                // dropped (its generation had only a trigger access).
                if let Some((&victim, _)) = self.filter.iter().min_by_key(|(_, e)| e.lru) {
                    self.filter.remove(&victim);
                }
            }
        }
        self.filter.insert(base, entry);
    }

    fn insert_accumulation(
        &mut self,
        base: u64,
        entry: AccumulationEntry,
    ) -> Option<TrainedPattern> {
        let mut spilled = None;
        if let Some(cap) = self.config.accumulation_entries {
            if self.accumulation.len() >= cap {
                if let Some((&victim, _)) = self.accumulation.iter().min_by_key(|(_, e)| e.lru) {
                    let victim_entry = self
                        .accumulation
                        .remove(&victim)
                        .expect("victim just found");
                    spilled = Some(TrainedPattern {
                        region_base: victim,
                        trigger_pc: victim_entry.trigger_pc,
                        trigger_offset: victim_entry.trigger_offset,
                        pattern: victim_entry.pattern,
                    });
                }
            }
        }
        self.accumulation.insert(base, entry);
        spilled
    }

    /// Ends the generation (if any) covering the region that contains
    /// `block_addr`, due to an eviction or invalidation of that block.
    ///
    /// Returns the trained pattern when the ended generation had accumulated
    /// two or more blocks; generations still in the filter table are
    /// discarded and return `None`.
    pub fn end_generation(&mut self, block_addr: u64) -> Option<TrainedPattern> {
        let base = self.region.region_base(block_addr);
        if self.filter.remove(&base).is_some() {
            return None;
        }
        self.accumulation.remove(&base).map(|entry| TrainedPattern {
            region_base: base,
            trigger_pc: entry.trigger_pc,
            trigger_offset: entry.trigger_offset,
            pattern: entry.pattern,
        })
    }

    /// Ends every live generation, returning the accumulated patterns (used
    /// at the end of a trace so partially-observed generations still train).
    pub fn drain(&mut self) -> Vec<TrainedPattern> {
        self.filter.clear();
        let mut out: Vec<TrainedPattern> = self
            .accumulation
            .drain()
            .map(|(base, entry)| TrainedPattern {
                region_base: base,
                trigger_pc: entry.trigger_pc,
                trigger_offset: entry.trigger_offset,
                pattern: entry.pattern,
            })
            .collect();
        out.sort_by_key(|t| t.region_base);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agt() -> ActiveGenerationTable {
        ActiveGenerationTable::new(RegionConfig::paper_default(), AgtConfig::unbounded())
    }

    #[test]
    fn figure2_example_sequence() {
        // Access A+3 (trigger), A+2, A+0, then evict A+2: pattern 1011
        // (offsets 0,1 unset/set per the figure's little-endian drawing; here
        // we check offsets {0, 2, 3}).
        let mut agt = agt();
        let base = 0x10_0000u64;
        let pc = 0x4000;
        let out = agt.record_access(base + 3 * 64, pc);
        assert!(out.is_trigger);
        let out = agt.record_access(base + 2 * 64, pc + 8);
        assert!(!out.is_trigger);
        agt.record_access(base, pc + 16);
        let trained = agt.end_generation(base + 2 * 64).expect("generation ends");
        assert_eq!(trained.trigger_pc, pc);
        assert_eq!(trained.trigger_offset, 3);
        assert_eq!(trained.region_base, base);
        assert_eq!(
            trained.pattern.iter_set().collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
    }

    #[test]
    fn single_access_generations_are_discarded() {
        let mut agt = agt();
        let base = 0x20_0000u64;
        agt.record_access(base + 64, 0x4000);
        assert!(agt.end_generation(base + 64).is_none());
        assert_eq!(agt.live_generations(), 0);
    }

    #[test]
    fn repeated_trigger_block_access_stays_in_filter() {
        let mut agt = agt();
        let base = 0x30_0000u64;
        agt.record_access(base + 5 * 64, 0x4000);
        agt.record_access(base + 5 * 64 + 8, 0x4004); // same block
        assert_eq!(agt.live_generations(), 1);
        // Still only a trigger: discarded on eviction.
        assert!(agt.end_generation(base + 5 * 64).is_none());
    }

    #[test]
    fn eviction_of_unaccessed_block_in_region_still_ends_generation() {
        // The paper ends a generation when any block of the region departs.
        let mut agt = agt();
        let base = 0x40_0000u64;
        agt.record_access(base, 0x4000);
        agt.record_access(base + 64, 0x4000);
        let trained = agt.end_generation(base + 10 * 64);
        assert!(trained.is_some());
    }

    #[test]
    fn filter_capacity_drops_oldest() {
        let mut agt = ActiveGenerationTable::new(
            RegionConfig::paper_default(),
            AgtConfig {
                filter_entries: Some(2),
                accumulation_entries: Some(2),
            },
        );
        agt.record_access(0x10_0000, 1);
        agt.record_access(0x20_0000, 2);
        agt.record_access(0x30_0000, 3); // evicts region 0x10_0000 from filter
        assert_eq!(agt.live_generations(), 2);
        // The dropped generation no longer trains.
        assert!(agt.end_generation(0x10_0000).is_none());
        assert!(agt.end_generation(0x20_0000).is_none()); // still filter-only
    }

    #[test]
    fn accumulation_capacity_spills_to_pht() {
        let mut agt = ActiveGenerationTable::new(
            RegionConfig::paper_default(),
            AgtConfig {
                filter_entries: Some(8),
                accumulation_entries: Some(1),
            },
        );
        // Region A reaches the accumulation table.
        agt.record_access(0x10_0000, 1);
        agt.record_access(0x10_0040, 1);
        // Region B also needs the accumulation table; A spills out.
        agt.record_access(0x20_0000, 2);
        let out = agt.record_access(0x20_0040, 2);
        let spilled = out.spilled.expect("capacity victim must spill");
        assert_eq!(spilled.region_base, 0x10_0000);
        assert_eq!(spilled.pattern.count(), 2);
    }

    #[test]
    fn drain_returns_accumulated_generations_only() {
        let mut agt = agt();
        agt.record_access(0x10_0000, 1); // filter only
        agt.record_access(0x20_0000, 2);
        agt.record_access(0x20_0080, 2);
        let drained = agt.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].region_base, 0x20_0000);
        assert_eq!(agt.live_generations(), 0);
    }

    #[test]
    fn new_generation_can_start_after_end() {
        let mut agt = agt();
        let base = 0x50_0000u64;
        agt.record_access(base, 0x4000);
        agt.record_access(base + 64, 0x4000);
        agt.end_generation(base);
        let out = agt.record_access(base + 128, 0x5000);
        assert!(
            out.is_trigger,
            "a fresh access after the end starts a new generation"
        );
    }
}
