//! The Active Generation Table (AGT): filter table + accumulation table.
//!
//! The AGT observes every L1 data access and records which blocks are touched
//! over the course of each spatial region generation (Figure 2 of the paper):
//!
//! 1. a **trigger access** to a region with no live generation allocates an
//!    entry in the *filter table*, recording the trigger PC and offset;
//! 2. when a second, *distinct* block of the region is accessed, the entry
//!    moves to the *accumulation table* and a pattern bit-vector starts
//!    accumulating;
//! 3. further accesses set bits in the accumulated pattern;
//! 4. when any block of the region is evicted or invalidated, the generation
//!    ends: a filter-table entry is simply discarded (only the trigger was
//!    accessed, so there is nothing worth predicting), while an
//!    accumulation-table entry is handed to the pattern history table.
//!
//! Both tables are small content-addressable memories; when one fills up a
//! victim generation is terminated early (dropped from the filter table, or
//! transferred to the PHT from the accumulation table).

use crate::pattern::SpatialPattern;
use crate::region::RegionConfig;
use memsim::FastMap;
use serde::{Deserialize, Serialize};
use trace::Pc;

/// Capacities of the two AGT tables.  `None` models an unbounded table for
/// limit studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgtConfig {
    /// Filter-table entries (paper default: 32).
    pub filter_entries: Option<usize>,
    /// Accumulation-table entries (paper default: 64).
    pub accumulation_entries: Option<usize>,
}

impl AgtConfig {
    /// The practical configuration from Section 4.5: 32 filter entries and
    /// 64 accumulation entries.
    pub fn paper_default() -> Self {
        Self {
            filter_entries: Some(32),
            accumulation_entries: Some(64),
        }
    }

    /// Unbounded tables, for limit studies.
    pub fn unbounded() -> Self {
        Self {
            filter_entries: None,
            accumulation_entries: None,
        }
    }
}

impl Default for AgtConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A completed (or early-terminated) generation ready to train the PHT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainedPattern {
    /// Base address of the spatial region.
    pub region_base: u64,
    /// PC of the generation's trigger access.
    pub trigger_pc: Pc,
    /// Block offset of the trigger access within the region.
    pub trigger_offset: u32,
    /// Blocks accessed during the generation (trigger included).
    pub pattern: SpatialPattern,
}

/// Result of recording one access in the AGT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordOutcome {
    /// Whether this access was the trigger of a new generation.
    pub is_trigger: bool,
    /// A generation terminated early because the accumulation table was full
    /// and needed a victim; it should still train the PHT.
    pub spilled: Option<TrainedPattern>,
}

#[derive(Debug, Clone)]
struct FilterEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    lru: u64,
}

#[derive(Debug, Clone)]
struct AccumulationEntry {
    trigger_pc: Pc,
    trigger_offset: u32,
    pattern: SpatialPattern,
    lru: u64,
}

/// Flat struct-of-arrays filter table for bounded configurations.
///
/// The paper's filter table holds 32 entries; a linear scan over one dense
/// array of keys (a few cache lines) beats a hash map lookup at that size,
/// and the parallel arrays mean the probe touches only the `keys` array
/// until a hit is found.  Occupancy is dense: slots `0..keys.len()` are
/// live, and removal `swap_remove`s every column.  Slot order is
/// insignificant — lookups scan all slots and the capacity victim is the
/// unique minimum LRU tick.
#[derive(Debug, Clone)]
struct FlatFilter {
    cap: usize,
    keys: Vec<u64>,
    trigger_pcs: Vec<Pc>,
    trigger_offsets: Vec<u32>,
    lru: Vec<u64>,
}

impl FlatFilter {
    fn with_capacity(cap: usize) -> Self {
        Self {
            cap,
            keys: Vec::with_capacity(cap),
            trigger_pcs: Vec::with_capacity(cap),
            trigger_offsets: Vec::with_capacity(cap),
            lru: Vec::with_capacity(cap),
        }
    }

    fn find(&self, base: u64) -> Option<usize> {
        self.keys.iter().position(|&k| k == base)
    }

    fn remove(&mut self, slot: usize) -> (Pc, u32) {
        self.keys.swap_remove(slot);
        self.lru.swap_remove(slot);
        (
            self.trigger_pcs.swap_remove(slot),
            self.trigger_offsets.swap_remove(slot),
        )
    }

    /// Slot of the least-recently-used entry (unique ticks: unambiguous).
    fn victim(&self) -> Option<usize> {
        (0..self.lru.len()).min_by_key(|&i| self.lru[i])
    }

    fn push(&mut self, base: u64, pc: Pc, trigger_offset: u32, tick: u64) {
        self.keys.push(base);
        self.trigger_pcs.push(pc);
        self.trigger_offsets.push(trigger_offset);
        self.lru.push(tick);
    }
}

/// Flat struct-of-arrays accumulation table for bounded configurations
/// (paper: 64 entries).  Same layout discipline as [`FlatFilter`] with a
/// dense column of spatial patterns.
#[derive(Debug, Clone)]
struct FlatAccumulation {
    cap: usize,
    keys: Vec<u64>,
    trigger_pcs: Vec<Pc>,
    trigger_offsets: Vec<u32>,
    patterns: Vec<SpatialPattern>,
    lru: Vec<u64>,
}

impl FlatAccumulation {
    fn with_capacity(cap: usize) -> Self {
        Self {
            cap,
            keys: Vec::with_capacity(cap),
            trigger_pcs: Vec::with_capacity(cap),
            trigger_offsets: Vec::with_capacity(cap),
            patterns: Vec::with_capacity(cap),
            lru: Vec::with_capacity(cap),
        }
    }

    fn find(&self, base: u64) -> Option<usize> {
        self.keys.iter().position(|&k| k == base)
    }

    fn remove(&mut self, slot: usize) -> TrainedPattern {
        let region_base = self.keys.swap_remove(slot);
        self.lru.swap_remove(slot);
        TrainedPattern {
            region_base,
            trigger_pc: self.trigger_pcs.swap_remove(slot),
            trigger_offset: self.trigger_offsets.swap_remove(slot),
            pattern: self.patterns.swap_remove(slot),
        }
    }

    fn victim(&self) -> Option<usize> {
        (0..self.lru.len()).min_by_key(|&i| self.lru[i])
    }

    fn push(&mut self, base: u64, pc: Pc, trigger_offset: u32, pattern: SpatialPattern, tick: u64) {
        self.keys.push(base);
        self.trigger_pcs.push(pc);
        self.trigger_offsets.push(trigger_offset);
        self.patterns.push(pattern);
        self.lru.push(tick);
    }
}

/// Filter-table storage: flat SoA when bounded, map fallback when unbounded
/// (a limit study can grow without bound, where a linear scan would not do).
#[derive(Debug, Clone)]
enum FilterStore {
    Flat(FlatFilter),
    Map(FastMap<u64, FilterEntry>),
}

/// What the filter table found for an access (step 2 of the lifecycle).
enum FilterHit {
    /// No generation in the filter table for this region.
    Miss,
    /// Same block as the trigger: LRU refreshed, entry stays put.
    SameBlock,
    /// A second distinct block: the entry was removed for promotion to the
    /// accumulation table.
    Promoted { trigger_pc: Pc, trigger_offset: u32 },
}

impl FilterStore {
    fn len(&self) -> usize {
        match self {
            Self::Flat(f) => f.keys.len(),
            Self::Map(m) => m.len(),
        }
    }

    /// Looks up `base`; refreshes LRU on a same-block hit, removes the entry
    /// on a distinct-block hit (the caller promotes it).
    fn promote_or_touch(&mut self, base: u64, offset: u32, tick: u64) -> FilterHit {
        match self {
            Self::Flat(f) => match f.find(base) {
                None => FilterHit::Miss,
                Some(slot) if f.trigger_offsets[slot] == offset => {
                    f.lru[slot] = tick;
                    FilterHit::SameBlock
                }
                Some(slot) => {
                    let (trigger_pc, trigger_offset) = f.remove(slot);
                    FilterHit::Promoted {
                        trigger_pc,
                        trigger_offset,
                    }
                }
            },
            Self::Map(m) => match m.get_mut(&base) {
                None => FilterHit::Miss,
                Some(entry) if entry.trigger_offset == offset => {
                    entry.lru = tick;
                    FilterHit::SameBlock
                }
                Some(_) => {
                    let entry = m.remove(&base).expect("entry just found");
                    FilterHit::Promoted {
                        trigger_pc: entry.trigger_pc,
                        trigger_offset: entry.trigger_offset,
                    }
                }
            },
        }
    }

    /// Inserts a fresh trigger entry, victimizing the least-recently-used
    /// entry when a bounded table is full (the victim generation had only a
    /// trigger access, so it is simply dropped).
    fn insert(&mut self, base: u64, pc: Pc, trigger_offset: u32, tick: u64) {
        match self {
            Self::Flat(f) => {
                if f.keys.len() >= f.cap {
                    if let Some(victim) = f.victim() {
                        f.remove(victim);
                    }
                }
                f.push(base, pc, trigger_offset, tick);
            }
            Self::Map(m) => {
                m.insert(
                    base,
                    FilterEntry {
                        trigger_pc: pc,
                        trigger_offset,
                        lru: tick,
                    },
                );
            }
        }
    }

    /// Removes the entry for `base`, returning whether one existed.
    fn remove_base(&mut self, base: u64) -> bool {
        match self {
            Self::Flat(f) => match f.find(base) {
                Some(slot) => {
                    f.remove(slot);
                    true
                }
                None => false,
            },
            Self::Map(m) => m.remove(&base).is_some(),
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Flat(f) => {
                f.keys.clear();
                f.trigger_pcs.clear();
                f.trigger_offsets.clear();
                f.lru.clear();
            }
            Self::Map(m) => m.clear(),
        }
    }
}

/// Accumulation-table storage: flat SoA when bounded, map when unbounded.
#[derive(Debug, Clone)]
enum AccumulationStore {
    Flat(FlatAccumulation),
    Map(FastMap<u64, AccumulationEntry>),
}

impl AccumulationStore {
    fn len(&self) -> usize {
        match self {
            Self::Flat(a) => a.keys.len(),
            Self::Map(m) => m.len(),
        }
    }

    /// Sets the pattern bit for an access to a region already accumulating
    /// (step 3).  Returns whether the region was found.
    fn set_bit(&mut self, base: u64, offset: u32, tick: u64) -> bool {
        match self {
            Self::Flat(a) => match a.find(base) {
                Some(slot) => {
                    a.patterns[slot].set(offset);
                    a.lru[slot] = tick;
                    true
                }
                None => false,
            },
            Self::Map(m) => match m.get_mut(&base) {
                Some(entry) => {
                    entry.pattern.set(offset);
                    entry.lru = tick;
                    true
                }
                None => false,
            },
        }
    }

    /// Inserts a promoted generation; when a bounded table is full the
    /// least-recently-used generation terminates early and spills out to
    /// train the PHT.
    fn insert(
        &mut self,
        base: u64,
        pc: Pc,
        trigger_offset: u32,
        pattern: SpatialPattern,
        tick: u64,
    ) -> Option<TrainedPattern> {
        match self {
            Self::Flat(a) => {
                let mut spilled = None;
                if a.keys.len() >= a.cap {
                    if let Some(victim) = a.victim() {
                        spilled = Some(a.remove(victim));
                    }
                }
                a.push(base, pc, trigger_offset, pattern, tick);
                spilled
            }
            Self::Map(m) => {
                m.insert(
                    base,
                    AccumulationEntry {
                        trigger_pc: pc,
                        trigger_offset,
                        pattern,
                        lru: tick,
                    },
                );
                None
            }
        }
    }

    /// Removes the generation for `base`, returning its trained pattern.
    fn remove_base(&mut self, base: u64) -> Option<TrainedPattern> {
        match self {
            Self::Flat(a) => a.find(base).map(|slot| a.remove(slot)),
            Self::Map(m) => m.remove(&base).map(|entry| TrainedPattern {
                region_base: base,
                trigger_pc: entry.trigger_pc,
                trigger_offset: entry.trigger_offset,
                pattern: entry.pattern,
            }),
        }
    }

    /// Removes every generation, sorted by region base for determinism.
    fn drain_sorted(&mut self) -> Vec<TrainedPattern> {
        let mut out: Vec<TrainedPattern> = match self {
            Self::Flat(a) => {
                let mut out = Vec::with_capacity(a.keys.len());
                while !a.keys.is_empty() {
                    out.push(a.remove(0));
                }
                out
            }
            Self::Map(m) => m
                .drain()
                .map(|(base, entry)| TrainedPattern {
                    region_base: base,
                    trigger_pc: entry.trigger_pc,
                    trigger_offset: entry.trigger_offset,
                    pattern: entry.pattern,
                })
                .collect(),
        };
        out.sort_by_key(|t| t.region_base);
        out
    }
}

/// The Active Generation Table.
///
/// Bounded configurations (the paper's 32-entry filter / 64-entry
/// accumulation CAMs) are stored as flat struct-of-arrays tables probed by a
/// linear key scan; unbounded limit-study configurations fall back to a
/// deterministic hash map.  Capacity-victim selection is deterministic in
/// both layouts because LRU ticks are unique (the minimum is unambiguous).
#[derive(Debug, Clone)]
pub struct ActiveGenerationTable {
    region: RegionConfig,
    filter: FilterStore,
    accumulation: AccumulationStore,
    tick: u64,
}

impl ActiveGenerationTable {
    /// Creates an empty AGT.
    pub fn new(region: RegionConfig, config: AgtConfig) -> Self {
        Self {
            region,
            filter: match config.filter_entries {
                Some(cap) => FilterStore::Flat(FlatFilter::with_capacity(cap)),
                None => FilterStore::Map(FastMap::default()),
            },
            accumulation: match config.accumulation_entries {
                Some(cap) => AccumulationStore::Flat(FlatAccumulation::with_capacity(cap)),
                None => AccumulationStore::Map(FastMap::default()),
            },
            tick: 0,
        }
    }

    /// The region geometry the AGT tracks.
    pub fn region(&self) -> &RegionConfig {
        &self.region
    }

    /// Number of live generations currently tracked (both tables).
    pub fn live_generations(&self) -> usize {
        self.filter.len() + self.accumulation.len()
    }

    /// Records a demand access to `addr` issued by instruction `pc`.
    pub fn record_access(&mut self, addr: u64, pc: Pc) -> RecordOutcome {
        self.tick += 1;
        let base = self.region.region_base(addr);
        let offset = self.region.region_offset(addr);

        // Step 3: accesses to regions already accumulating set pattern bits.
        if self.accumulation.set_bit(base, offset, self.tick) {
            return RecordOutcome {
                is_trigger: false,
                spilled: None,
            };
        }

        // Step 2: a second distinct block moves the generation from the
        // filter table to the accumulation table.
        match self.filter.promote_or_touch(base, offset, self.tick) {
            FilterHit::SameBlock => {
                return RecordOutcome {
                    is_trigger: false,
                    spilled: None,
                };
            }
            FilterHit::Promoted {
                trigger_pc,
                trigger_offset,
            } => {
                let mut pattern = SpatialPattern::new(self.region.blocks_per_region());
                pattern.set(trigger_offset);
                pattern.set(offset);
                let spilled =
                    self.accumulation
                        .insert(base, trigger_pc, trigger_offset, pattern, self.tick);
                return RecordOutcome {
                    is_trigger: false,
                    spilled,
                };
            }
            FilterHit::Miss => {}
        }

        // Step 1: trigger access allocates in the filter table.
        self.filter.insert(base, pc, offset, self.tick);
        RecordOutcome {
            is_trigger: true,
            spilled: None,
        }
    }

    /// Ends the generation (if any) covering the region that contains
    /// `block_addr`, due to an eviction or invalidation of that block.
    ///
    /// Returns the trained pattern when the ended generation had accumulated
    /// two or more blocks; generations still in the filter table are
    /// discarded and return `None`.
    pub fn end_generation(&mut self, block_addr: u64) -> Option<TrainedPattern> {
        let base = self.region.region_base(block_addr);
        if self.filter.remove_base(base) {
            return None;
        }
        self.accumulation.remove_base(base)
    }

    /// Ends every live generation, returning the accumulated patterns (used
    /// at the end of a trace so partially-observed generations still train).
    pub fn drain(&mut self) -> Vec<TrainedPattern> {
        self.filter.clear();
        self.accumulation.drain_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agt() -> ActiveGenerationTable {
        ActiveGenerationTable::new(RegionConfig::paper_default(), AgtConfig::unbounded())
    }

    #[test]
    fn figure2_example_sequence() {
        // Access A+3 (trigger), A+2, A+0, then evict A+2: pattern 1011
        // (offsets 0,1 unset/set per the figure's little-endian drawing; here
        // we check offsets {0, 2, 3}).
        let mut agt = agt();
        let base = 0x10_0000u64;
        let pc = 0x4000;
        let out = agt.record_access(base + 3 * 64, pc);
        assert!(out.is_trigger);
        let out = agt.record_access(base + 2 * 64, pc + 8);
        assert!(!out.is_trigger);
        agt.record_access(base, pc + 16);
        let trained = agt.end_generation(base + 2 * 64).expect("generation ends");
        assert_eq!(trained.trigger_pc, pc);
        assert_eq!(trained.trigger_offset, 3);
        assert_eq!(trained.region_base, base);
        assert_eq!(
            trained.pattern.iter_set().collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
    }

    #[test]
    fn single_access_generations_are_discarded() {
        let mut agt = agt();
        let base = 0x20_0000u64;
        agt.record_access(base + 64, 0x4000);
        assert!(agt.end_generation(base + 64).is_none());
        assert_eq!(agt.live_generations(), 0);
    }

    #[test]
    fn repeated_trigger_block_access_stays_in_filter() {
        let mut agt = agt();
        let base = 0x30_0000u64;
        agt.record_access(base + 5 * 64, 0x4000);
        agt.record_access(base + 5 * 64 + 8, 0x4004); // same block
        assert_eq!(agt.live_generations(), 1);
        // Still only a trigger: discarded on eviction.
        assert!(agt.end_generation(base + 5 * 64).is_none());
    }

    #[test]
    fn eviction_of_unaccessed_block_in_region_still_ends_generation() {
        // The paper ends a generation when any block of the region departs.
        let mut agt = agt();
        let base = 0x40_0000u64;
        agt.record_access(base, 0x4000);
        agt.record_access(base + 64, 0x4000);
        let trained = agt.end_generation(base + 10 * 64);
        assert!(trained.is_some());
    }

    #[test]
    fn filter_capacity_drops_oldest() {
        let mut agt = ActiveGenerationTable::new(
            RegionConfig::paper_default(),
            AgtConfig {
                filter_entries: Some(2),
                accumulation_entries: Some(2),
            },
        );
        agt.record_access(0x10_0000, 1);
        agt.record_access(0x20_0000, 2);
        agt.record_access(0x30_0000, 3); // evicts region 0x10_0000 from filter
        assert_eq!(agt.live_generations(), 2);
        // The dropped generation no longer trains.
        assert!(agt.end_generation(0x10_0000).is_none());
        assert!(agt.end_generation(0x20_0000).is_none()); // still filter-only
    }

    #[test]
    fn accumulation_capacity_spills_to_pht() {
        let mut agt = ActiveGenerationTable::new(
            RegionConfig::paper_default(),
            AgtConfig {
                filter_entries: Some(8),
                accumulation_entries: Some(1),
            },
        );
        // Region A reaches the accumulation table.
        agt.record_access(0x10_0000, 1);
        agt.record_access(0x10_0040, 1);
        // Region B also needs the accumulation table; A spills out.
        agt.record_access(0x20_0000, 2);
        let out = agt.record_access(0x20_0040, 2);
        let spilled = out.spilled.expect("capacity victim must spill");
        assert_eq!(spilled.region_base, 0x10_0000);
        assert_eq!(spilled.pattern.count(), 2);
    }

    #[test]
    fn drain_returns_accumulated_generations_only() {
        let mut agt = agt();
        agt.record_access(0x10_0000, 1); // filter only
        agt.record_access(0x20_0000, 2);
        agt.record_access(0x20_0080, 2);
        let drained = agt.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].region_base, 0x20_0000);
        assert_eq!(agt.live_generations(), 0);
    }

    #[test]
    fn new_generation_can_start_after_end() {
        let mut agt = agt();
        let base = 0x50_0000u64;
        agt.record_access(base, 0x4000);
        agt.record_access(base + 64, 0x4000);
        agt.end_generation(base);
        let out = agt.record_access(base + 128, 0x5000);
        assert!(
            out.is_trigger,
            "a fresh access after the end starts a new generation"
        );
    }
}
