//! Prediction registers and the streaming engine.
//!
//! When a trigger access hits in the PHT, the region base address and the
//! predicted pattern are copied into a prediction register.  The streaming
//! engine walks the active registers round-robin, issuing one block request
//! at a time and clearing the corresponding pattern bit; a register is freed
//! once its pattern is exhausted (Section 3.2).

use crate::pattern::SpatialPattern;
use crate::region::RegionConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the prediction-register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamerConfig {
    /// Number of prediction registers (concurrently-streamed regions).
    pub registers: usize,
    /// Stream requests issued per demand access processed; models the
    /// paper's 16 outstanding SMS stream-request slots feeding from the
    /// register file at a bounded rate.
    pub requests_per_access: usize,
}

impl StreamerConfig {
    /// The configuration used for the paper's practical SMS: 16 registers,
    /// draining up to 4 stream requests per demand access.
    pub fn paper_default() -> Self {
        Self {
            registers: 16,
            requests_per_access: 4,
        }
    }
}

impl Default for StreamerConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone)]
struct PredictionRegister {
    region_base: u64,
    pattern: SpatialPattern,
    allocated_at: u64,
}

/// The file of prediction registers for one processor.
#[derive(Debug, Clone)]
pub struct PredictionRegisterFile {
    region: RegionConfig,
    config: StreamerConfig,
    registers: Vec<Option<PredictionRegister>>,
    cursor: usize,
    tick: u64,
    dropped_allocations: u64,
}

impl PredictionRegisterFile {
    /// Creates an empty register file.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero registers.
    pub fn new(region: RegionConfig, config: StreamerConfig) -> Self {
        assert!(
            config.registers > 0,
            "need at least one prediction register"
        );
        Self {
            region,
            config,
            registers: vec![None; config.registers],
            cursor: 0,
            tick: 0,
            dropped_allocations: 0,
        }
    }

    /// Allocates a register for a newly-predicted generation.
    ///
    /// The predicted `pattern` should already have the trigger block cleared
    /// (it is being demand-fetched).  If every register is busy, the oldest
    /// allocation is replaced and counted in
    /// [`dropped_allocations`](Self::dropped_allocations).
    pub fn allocate(&mut self, region_base: u64, pattern: SpatialPattern) {
        self.tick += 1;
        if pattern.is_empty() {
            return;
        }
        // Reuse an existing register for the same region, or a free one.
        let slot = self
            .registers
            .iter()
            .position(|r| r.as_ref().is_some_and(|r| r.region_base == region_base))
            .or_else(|| self.registers.iter().position(|r| r.is_none()));
        let slot = match slot {
            Some(s) => s,
            None => {
                self.dropped_allocations += 1;
                self.registers
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.as_ref().map(|r| r.allocated_at).unwrap_or(0))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        };
        self.registers[slot] = Some(PredictionRegister {
            region_base,
            pattern,
            allocated_at: self.tick,
        });
    }

    /// Cancels any pending stream requests for the region containing
    /// `block_addr` (used when the region's generation ends before streaming
    /// finished).
    pub fn cancel_region(&mut self, block_addr: u64) {
        let base = self.region.region_base(block_addr);
        for reg in self.registers.iter_mut() {
            if reg.as_ref().is_some_and(|r| r.region_base == base) {
                *reg = None;
            }
        }
    }

    /// Issues up to `config.requests_per_access` stream requests, walking the
    /// registers round-robin.  Returns block addresses to fetch.
    pub fn drain(&mut self) -> Vec<u64> {
        self.drain_up_to(self.config.requests_per_access)
    }

    /// Issues up to `max_requests` stream requests.
    pub fn drain_up_to(&mut self, max_requests: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.drain_into(max_requests, &mut out);
        out
    }

    /// Issues up to `config.requests_per_access` stream requests into `out`
    /// (appending), the allocation-free path of the driver's batched hot
    /// loop.
    pub fn drain_default_into(&mut self, out: &mut Vec<u64>) {
        self.drain_into(self.config.requests_per_access, out);
    }

    /// Issues up to `max_requests` stream requests, appending the block
    /// addresses to `out` in the same round-robin order
    /// [`drain_up_to`](Self::drain_up_to) returns them.
    pub fn drain_into(&mut self, max_requests: usize, out: &mut Vec<u64>) {
        if self.registers.iter().all(|r| r.is_none()) {
            return;
        }
        let issued_before = out.len();
        let n = self.registers.len();
        let mut scanned_without_progress = 0;
        while out.len() - issued_before < max_requests && scanned_without_progress < n {
            let idx = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            let next_offset = match self.registers[idx].as_ref() {
                Some(reg) => reg.pattern.first_set(),
                None => {
                    scanned_without_progress += 1;
                    continue;
                }
            };
            match next_offset {
                Some(offset) => {
                    let reg = self.registers[idx]
                        .as_mut()
                        .expect("register checked above");
                    reg.pattern.clear(offset);
                    out.push(self.region.block_at(reg.region_base, offset));
                    if reg.pattern.is_empty() {
                        self.registers[idx] = None;
                    }
                    scanned_without_progress = 0;
                }
                None => {
                    self.registers[idx] = None;
                    scanned_without_progress += 1;
                }
            }
        }
    }

    /// Number of registers currently holding un-issued predictions.
    pub fn active_registers(&self) -> usize {
        self.registers.iter().filter(|r| r.is_some()).count()
    }

    /// Number of allocations that displaced a still-active register.
    pub fn dropped_allocations(&self) -> u64 {
        self.dropped_allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(registers: usize, per_access: usize) -> PredictionRegisterFile {
        PredictionRegisterFile::new(
            RegionConfig::paper_default(),
            StreamerConfig {
                registers,
                requests_per_access: per_access,
            },
        )
    }

    fn pat(offsets: &[u32]) -> SpatialPattern {
        SpatialPattern::from_offsets(32, offsets)
    }

    #[test]
    fn drains_pattern_as_block_addresses() {
        let mut f = file(4, 8);
        f.allocate(0x10_0000, pat(&[1, 3]));
        let reqs = f.drain();
        assert_eq!(reqs, vec![0x10_0000 + 64, 0x10_0000 + 3 * 64]);
        assert_eq!(f.active_registers(), 0);
        assert!(f.drain().is_empty());
    }

    #[test]
    fn rate_limit_respected() {
        let mut f = file(4, 2);
        f.allocate(0x10_0000, pat(&[0, 1, 2, 3, 4]));
        assert_eq!(f.drain().len(), 2);
        assert_eq!(f.drain().len(), 2);
        assert_eq!(f.drain().len(), 1);
        assert!(f.drain().is_empty());
    }

    #[test]
    fn round_robin_across_registers() {
        let mut f = file(2, 2);
        f.allocate(0x10_0000, pat(&[0, 1]));
        f.allocate(0x20_0000, pat(&[5, 6]));
        let first = f.drain();
        // One request from each active register.
        assert_eq!(first.len(), 2);
        let regions: std::collections::HashSet<u64> = first.iter().map(|a| a & !2047).collect();
        assert_eq!(regions.len(), 2, "requests must alternate between regions");
    }

    #[test]
    fn empty_pattern_allocation_is_ignored() {
        let mut f = file(2, 4);
        f.allocate(0x10_0000, SpatialPattern::new(32));
        assert_eq!(f.active_registers(), 0);
    }

    #[test]
    fn full_file_replaces_oldest() {
        let mut f = file(2, 1);
        f.allocate(0x10_0000, pat(&[0]));
        f.allocate(0x20_0000, pat(&[0]));
        f.allocate(0x30_0000, pat(&[0]));
        assert_eq!(f.dropped_allocations(), 1);
        assert_eq!(f.active_registers(), 2);
    }

    #[test]
    fn cancel_region_discards_pending_requests() {
        let mut f = file(2, 4);
        f.allocate(0x10_0000, pat(&[0, 1, 2]));
        f.cancel_region(0x10_0040);
        assert_eq!(f.active_registers(), 0);
        assert!(f.drain().is_empty());
    }

    #[test]
    fn drain_up_to_zero_budget_issues_nothing_and_keeps_state() {
        let mut f = file(2, 4);
        f.allocate(0x10_0000, pat(&[0, 1, 2]));
        assert!(f.drain_up_to(0).is_empty());
        assert_eq!(f.active_registers(), 1, "zero budget must not consume");
        // The pending requests are still all there afterwards.
        assert_eq!(f.drain_up_to(8).len(), 3);
    }

    #[test]
    fn drain_up_to_budget_larger_than_queue_drains_everything_once() {
        let mut f = file(4, 1);
        f.allocate(0x10_0000, pat(&[0, 1]));
        f.allocate(0x20_0000, pat(&[5]));
        let reqs = f.drain_up_to(1000);
        assert_eq!(reqs.len(), 3, "oversized budget drains exactly the queue");
        assert_eq!(f.active_registers(), 0);
        assert!(f.drain_up_to(1000).is_empty(), "nothing left to issue");
    }

    #[test]
    fn cancel_then_drain_skips_cancelled_region_only() {
        let mut f = file(4, 8);
        f.allocate(0x10_0000, pat(&[0, 1]));
        f.allocate(0x20_0000, pat(&[2, 3]));
        f.cancel_region(0x10_0040);
        let reqs = f.drain_up_to(8);
        assert_eq!(reqs, vec![0x20_0000 + 2 * 64, 0x20_0000 + 3 * 64]);
        assert_eq!(f.active_registers(), 0);
        // Cancelling an already-cancelled (or never-allocated) region and
        // draining again is a no-op.
        f.cancel_region(0x10_0040);
        f.cancel_region(0x30_0000);
        assert!(f.drain_up_to(4).is_empty());
    }

    #[test]
    fn reallocation_for_same_region_overwrites() {
        let mut f = file(4, 8);
        f.allocate(0x10_0000, pat(&[0]));
        f.allocate(0x10_0000, pat(&[7]));
        let reqs = f.drain();
        assert_eq!(reqs, vec![0x10_0000 + 7 * 64]);
    }
}
