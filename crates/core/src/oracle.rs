//! The oracle opportunity predictor used in Figure 4.
//!
//! The oracle incurs exactly one miss per spatial region generation: upon the
//! generation's first miss it magically fetches every block the generation
//! will use.  Its miss count therefore equals the number of generations that
//! contain at least one demand miss, which bounds from below the miss rate
//! any real spatial predictor can reach at that region size.

use crate::region::RegionConfig;
use memsim::{PrefetchRequest, Prefetcher, SystemOutcome};
use std::collections::{HashMap, HashSet};
use trace::MemAccess;

#[derive(Debug, Default, Clone)]
struct LiveGeneration {
    accessed_blocks: HashSet<u64>,
    missed: bool,
}

/// Counts spatial region generations and the oracle's miss count at one cache
/// level.
#[derive(Debug, Clone)]
pub struct OracleOpportunity {
    region: RegionConfig,
    live: Vec<HashMap<u64, LiveGeneration>>,
    generations: u64,
    oracle_misses: u64,
    demand_misses: u64,
}

impl OracleOpportunity {
    /// Creates an opportunity tracker for `num_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize, region: RegionConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        Self {
            region,
            live: vec![HashMap::new(); num_cpus],
            generations: 0,
            oracle_misses: 0,
            demand_misses: 0,
        }
    }

    /// Observes a demand access and whether it missed at this level.
    pub fn on_access(&mut self, cpu: u8, addr: u64, was_miss: bool) {
        let base = self.region.region_base(addr);
        let block = self.region.block_addr(addr);
        let live = &mut self.live[cpu as usize];
        let generation = match live.get_mut(&base) {
            Some(g) => g,
            None => {
                self.generations += 1;
                live.entry(base).or_default()
            }
        };
        generation.accessed_blocks.insert(block);
        if was_miss {
            self.demand_misses += 1;
            if !generation.missed {
                generation.missed = true;
                self.oracle_misses += 1;
            }
        }
    }

    /// Observes the eviction or invalidation of `block_addr`, ending the
    /// enclosing generation if that block was accessed during it.
    pub fn on_block_removed(&mut self, cpu: u8, block_addr: u64) {
        let base = self.region.region_base(block_addr);
        let block = self.region.block_addr(block_addr);
        let live = &mut self.live[cpu as usize];
        if let Some(generation) = live.get(&base) {
            if generation.accessed_blocks.contains(&block) {
                live.remove(&base);
            }
        }
    }

    /// Total spatial region generations observed.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Misses the oracle predictor would incur (one per generation that
    /// contains at least one demand miss).
    pub fn oracle_misses(&self) -> u64 {
        self.oracle_misses
    }

    /// Demand misses observed at this level (the baseline the oracle is
    /// compared against).
    pub fn demand_misses(&self) -> u64 {
        self.demand_misses
    }

    /// The fraction of demand misses the oracle eliminates.
    pub fn opportunity_fraction(&self) -> f64 {
        if self.demand_misses == 0 {
            0.0
        } else {
            1.0 - self.oracle_misses as f64 / self.demand_misses as f64
        }
    }
}

/// A passive observer that measures oracle opportunity at both cache levels
/// while a baseline simulation runs.
#[derive(Debug, Clone)]
pub struct OracleObserver {
    l1: OracleOpportunity,
    l2: OracleOpportunity,
    read_only: bool,
}

impl OracleObserver {
    /// Creates an observer for `num_cpus` processors at the given region
    /// geometry.  When `read_only` is set, only read accesses/misses are
    /// tracked (the paper reports read miss rates).
    pub fn new(num_cpus: usize, region: RegionConfig, read_only: bool) -> Self {
        Self {
            l1: OracleOpportunity::new(num_cpus, region),
            l2: OracleOpportunity::new(num_cpus, region),
            read_only,
        }
    }

    /// Opportunity tracker for the primary cache.
    pub fn l1(&self) -> &OracleOpportunity {
        &self.l1
    }

    /// Opportunity tracker for off-chip misses.
    pub fn l2(&self) -> &OracleOpportunity {
        &self.l2
    }
}

impl Prefetcher for OracleObserver {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        if !(self.read_only && access.kind.is_write()) {
            self.l1
                .on_access(access.cpu, access.addr, outcome.hierarchy.l1_miss());
            self.l2
                .on_access(access.cpu, access.addr, outcome.hierarchy.offchip);
        }
        if let Some(evicted) = &outcome.hierarchy.l1_evicted {
            self.l1.on_block_removed(access.cpu, evicted.block_addr);
        }
        if let Some(evicted) = &outcome.hierarchy.l2_evicted {
            self.l2.on_block_removed(access.cpu, evicted.block_addr);
        }
        for (cpu, block) in &outcome.remote_invalidations {
            self.l1.on_block_removed(*cpu, *block);
            self.l2.on_block_removed(*cpu, *block);
        }
        Vec::new()
    }

    fn name(&self) -> &str {
        "oracle-observer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_oracle_miss_per_missing_generation() {
        let mut o = OracleOpportunity::new(1, RegionConfig::paper_default());
        let base = 0x10_0000u64;
        // Four misses within one generation.
        for i in 0..4 {
            o.on_access(0, base + i * 64, true);
        }
        assert_eq!(o.generations(), 1);
        assert_eq!(o.oracle_misses(), 1);
        assert_eq!(o.demand_misses(), 4);
        assert!((o.opportunity_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn generation_ends_on_accessed_block_removal() {
        let mut o = OracleOpportunity::new(1, RegionConfig::paper_default());
        let base = 0x10_0000u64;
        o.on_access(0, base, true);
        o.on_block_removed(0, base);
        o.on_access(0, base + 64, true);
        assert_eq!(o.generations(), 2);
        assert_eq!(o.oracle_misses(), 2);
    }

    #[test]
    fn removal_of_unaccessed_block_does_not_end_generation() {
        let mut o = OracleOpportunity::new(1, RegionConfig::paper_default());
        let base = 0x10_0000u64;
        o.on_access(0, base, true);
        o.on_block_removed(0, base + 31 * 64);
        o.on_access(0, base + 64, true);
        assert_eq!(o.generations(), 1);
    }

    #[test]
    fn generation_without_miss_costs_nothing() {
        let mut o = OracleOpportunity::new(1, RegionConfig::paper_default());
        o.on_access(0, 0x10_0000, false);
        o.on_access(0, 0x10_0040, false);
        assert_eq!(o.generations(), 1);
        assert_eq!(o.oracle_misses(), 0);
    }

    #[test]
    fn observer_tracks_both_levels() {
        use memsim::{HierarchyConfig, MultiCpuSystem};
        use trace::{Application, GeneratorConfig};
        let mut sys = MultiCpuSystem::new(1, &HierarchyConfig::scaled());
        let mut obs = OracleObserver::new(1, RegionConfig::paper_default(), true);
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut stream = Application::DssQry1.stream(5, &cfg);
        let summary = memsim::run(&mut sys, &mut obs, &mut stream, 20_000);
        assert!(obs.l1().generations() > 0);
        assert!(obs.l1().oracle_misses() <= obs.l1().demand_misses());
        assert!(obs.l2().oracle_misses() <= obs.l2().demand_misses());
        assert_eq!(obs.l1().demand_misses(), summary.l1.read_misses);
    }
}
