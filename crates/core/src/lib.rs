//! Spatial Memory Streaming (SMS), as described in
//! *Spatial Memory Streaming*, Somogyi, Wenisch, Ailamaki, Falsafi and
//! Moshovos, ISCA 2006.
//!
//! SMS predicts which 64 B cache blocks within a large **spatial region**
//! (128 B – 8 kB; 2 kB by default) a program is about to touch, and streams
//! those blocks into the primary cache ahead of demand misses.  The predictor
//! has two hardware structures:
//!
//! * the **Active Generation Table** ([`agt`]) observes every L1 access and
//!   records, per live spatial region generation, the bit-pattern of blocks
//!   touched, ending the generation when any of those blocks is evicted or
//!   invalidated;
//! * the **Pattern History Table** ([`pht`]) stores the recorded patterns
//!   indexed (by default) by the *PC + region offset* of the generation's
//!   trigger access, and is consulted on every trigger access to predict the
//!   blocks the new generation will use.
//!
//! Predicted blocks are handed to **prediction registers** ([`streamer`])
//! that issue stream requests into the L1 in round-robin order.
//!
//! The crate also contains the supporting analyses used by the paper's
//! evaluation: an oracle opportunity predictor ([`oracle`]), a generation /
//! access-density tracker ([`generation`]), alternative training structures
//! based on sectored tag arrays ([`training`]) and coverage accounting
//! ([`coverage`]).
//!
//! # Quick example
//!
//! ```
//! use sms::{SmsConfig, SmsPrefetcher};
//! use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
//! use trace::{Application, GeneratorConfig};
//!
//! // Simulate a small slice of the OLTP workload with and without SMS.
//! let gen_cfg = GeneratorConfig::default().with_cpus(2);
//! let hier = HierarchyConfig::scaled();
//! let n = 20_000;
//!
//! let mut base_sys = MultiCpuSystem::new(2, &hier);
//! let mut base = NullPrefetcher::new();
//! let mut stream = Application::OltpDb2.stream(1, &gen_cfg);
//! let baseline = memsim::run(&mut base_sys, &mut base, &mut stream, n);
//!
//! let mut sms_sys = MultiCpuSystem::new(2, &hier);
//! let mut sms = SmsPrefetcher::new(2, &SmsConfig::default());
//! let mut stream = Application::OltpDb2.stream(1, &gen_cfg);
//! let with_sms = memsim::run(&mut sms_sys, &mut sms, &mut stream, n);
//!
//! assert!(with_sms.l1.read_misses <= baseline.l1.read_misses);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agt;
pub mod coverage;
pub mod generation;
pub mod index;
pub mod oracle;
pub mod pattern;
pub mod pht;
pub mod predictor;
pub mod prefetcher;
pub mod region;
pub mod streamer;
pub mod training;

pub use agt::{ActiveGenerationTable, AgtConfig, TrainedPattern};
pub use coverage::{CoverageLevel, CoverageStats};
pub use generation::{DensityBin, DensityHistogram, DensityObserver, GenerationTracker};
pub use index::IndexScheme;
pub use oracle::{OracleObserver, OracleOpportunity};
pub use pattern::SpatialPattern;
pub use pht::{PatternHistoryTable, PhtCapacity};
pub use predictor::{PredictorStats, SmsConfig, SmsPredictor};
pub use prefetcher::SmsPrefetcher;
pub use region::RegionConfig;
pub use streamer::{PredictionRegisterFile, StreamerConfig};
pub use training::{TrainerKind, TrainingPrefetcher};
