//! Prediction-index construction.
//!
//! The pattern history table is looked up with a key derived from the
//! trigger access.  The paper compares four schemes (Section 4.2):
//!
//! * **Address** — the spatial region's base address;
//! * **PC+address** — PC of the trigger combined with the region base;
//! * **PC** — the trigger PC alone;
//! * **PC+offset** — the trigger PC combined with the trigger's block offset
//!   within the region (the scheme SMS adopts).
//!
//! PC-based schemes can predict accesses to regions that have never been
//! visited, which is what gives SMS its advantage on scan-dominated DSS
//! workloads; address-based schemes need storage proportional to the data
//! set.

use crate::region::RegionConfig;
use serde::{Deserialize, Serialize};
use trace::{Addr, Pc};

/// How the pattern history table is indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexScheme {
    /// Region base address only.
    Address,
    /// Trigger PC combined with region base address.
    PcAddress,
    /// Trigger PC only.
    Pc,
    /// Trigger PC combined with the trigger's block offset in the region
    /// (the SMS default).
    PcOffset,
}

impl IndexScheme {
    /// All schemes, in the order Figure 6 presents them.
    pub const ALL: [IndexScheme; 4] = [
        IndexScheme::Address,
        IndexScheme::PcAddress,
        IndexScheme::Pc,
        IndexScheme::PcOffset,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IndexScheme::Address => "Addr",
            IndexScheme::PcAddress => "PC+addr",
            IndexScheme::Pc => "PC",
            IndexScheme::PcOffset => "PC+off",
        }
    }

    /// Computes the prediction index for a trigger access.
    pub fn key(self, pc: Pc, addr: Addr, region: &RegionConfig) -> u64 {
        let base = region.region_base(addr);
        let offset = u64::from(region.region_offset(addr));
        match self {
            IndexScheme::Address => mix(base),
            IndexScheme::PcAddress => mix(pc ^ base.rotate_left(17)),
            IndexScheme::Pc => mix(pc),
            IndexScheme::PcOffset => mix(pc ^ (offset << 48) ^ offset),
        }
    }
}

/// A 64-bit finalizer (splitmix64) so that structured PCs/addresses spread
/// uniformly over PHT sets.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionConfig {
        RegionConfig::paper_default()
    }

    #[test]
    fn pc_offset_distinguishes_offsets_but_not_regions() {
        let r = region();
        let pc = 0x4000;
        let k1 = IndexScheme::PcOffset.key(pc, 0x10_0000, &r); // offset 0
        let k2 = IndexScheme::PcOffset.key(pc, 0x10_0040, &r); // offset 1
        let k3 = IndexScheme::PcOffset.key(pc, 0x20_0000, &r); // other region, offset 0
        assert_ne!(k1, k2, "different offsets must yield different keys");
        assert_eq!(k1, k3, "different regions with the same offset share a key");
    }

    #[test]
    fn address_scheme_ignores_pc() {
        let r = region();
        let k1 = IndexScheme::Address.key(0x4000, 0x10_0040, &r);
        let k2 = IndexScheme::Address.key(0x8000, 0x10_0080, &r);
        assert_eq!(k1, k2, "same region, different PCs/offsets share a key");
    }

    #[test]
    fn pc_address_distinguishes_both() {
        let r = region();
        let base = IndexScheme::PcAddress.key(0x4000, 0x10_0000, &r);
        assert_ne!(base, IndexScheme::PcAddress.key(0x4004, 0x10_0000, &r));
        assert_ne!(base, IndexScheme::PcAddress.key(0x4000, 0x20_0000, &r));
    }

    #[test]
    fn pc_scheme_ignores_address_entirely() {
        let r = region();
        let k1 = IndexScheme::Pc.key(0x4000, 0x10_0000, &r);
        let k2 = IndexScheme::Pc.key(0x4000, 0xdead_0000, &r);
        assert_eq!(k1, k2);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            IndexScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
