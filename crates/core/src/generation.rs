//! Spatial region generation tracking and access-density measurement.
//!
//! Figure 5 of the paper breaks down L1 and L2 read misses by the *density*
//! of the generation they occur in — the number of distinct blocks of the
//! 2 kB region that miss during the generation.  [`GenerationTracker`]
//! follows live generations exactly as the AGT does (first access opens a
//! generation, eviction/invalidation of an accessed block closes it), and
//! [`DensityHistogram`] accumulates, per density bin, how many misses came
//! from generations of that density.

use crate::pattern::SpatialPattern;
use crate::region::RegionConfig;
use memsim::{FastMap, PrefetchRequest, Prefetcher, SystemOutcome};
use serde::{Deserialize, Serialize};
use trace::MemAccess;

/// The density bins used by Figure 5 (for 32-block regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DensityBin {
    /// Inclusive lower bound on blocks missed in the generation.
    pub lo: u32,
    /// Inclusive upper bound.
    pub hi: u32,
}

impl DensityBin {
    /// The paper's seven bins: 1, 2–3, 4–7, 8–15, 16–23, 24–31, 32 blocks.
    pub const PAPER_BINS: [DensityBin; 7] = [
        DensityBin { lo: 1, hi: 1 },
        DensityBin { lo: 2, hi: 3 },
        DensityBin { lo: 4, hi: 7 },
        DensityBin { lo: 8, hi: 15 },
        DensityBin { lo: 16, hi: 23 },
        DensityBin { lo: 24, hi: 31 },
        DensityBin {
            lo: 32,
            hi: u32::MAX,
        },
    ];

    /// Human-readable label ("4-7 Blocks").
    pub fn label(&self) -> String {
        if self.hi == u32::MAX {
            format!("{}+ Blocks", self.lo)
        } else if self.lo == self.hi {
            format!("{} Block{}", self.lo, if self.lo == 1 { "" } else { "s" })
        } else {
            format!("{}-{} Blocks", self.lo, self.hi)
        }
    }

    /// Whether `density` falls in this bin.
    pub fn contains(&self, density: u32) -> bool {
        density >= self.lo && density <= self.hi
    }
}

/// Misses grouped by the density of the generation they belong to.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DensityHistogram {
    /// Misses attributed to each of [`DensityBin::PAPER_BINS`].
    pub misses_per_bin: [u64; 7],
}

impl DensityHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed generation with `missed_blocks` distinct missing
    /// blocks (generations without misses are ignored).
    pub fn record_generation(&mut self, missed_blocks: u32) {
        if missed_blocks == 0 {
            return;
        }
        for (i, bin) in DensityBin::PAPER_BINS.iter().enumerate() {
            if bin.contains(missed_blocks) {
                self.misses_per_bin[i] += u64::from(missed_blocks);
                return;
            }
        }
    }

    /// Total misses accounted for.
    pub fn total_misses(&self) -> u64 {
        self.misses_per_bin.iter().sum()
    }

    /// Fraction of misses in each bin (zeros when empty).
    pub fn fractions(&self) -> [f64; 7] {
        let total = self.total_misses();
        let mut out = [0.0; 7];
        if total == 0 {
            return out;
        }
        for (i, &m) in self.misses_per_bin.iter().enumerate() {
            out[i] = m as f64 / total as f64;
        }
        out
    }
}

/// One live generation's footprint as two spatial-pattern bitmaps over the
/// region's blocks.  Distinct-block counting is a popcount (`pattern.count`)
/// instead of a per-generation pair of hash sets, and membership tests are
/// single bit probes.
#[derive(Debug, Clone, Copy)]
struct LiveGeneration {
    accessed: SpatialPattern,
    missed: SpatialPattern,
}

/// Tracks live spatial region generations at one cache level and feeds a
/// [`DensityHistogram`].
#[derive(Debug, Clone)]
pub struct GenerationTracker {
    region: RegionConfig,
    // Deterministic fast map; histogram accumulation is additive, so
    // generation drain order never affects the result.
    live: Vec<FastMap<u64, LiveGeneration>>,
    histogram: DensityHistogram,
}

impl GenerationTracker {
    /// Creates a tracker for `num_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize, region: RegionConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        Self {
            region,
            live: vec![FastMap::default(); num_cpus],
            histogram: DensityHistogram::new(),
        }
    }

    /// Observes a demand access and whether it missed at this level.
    pub fn on_access(&mut self, cpu: u8, addr: u64, was_miss: bool) {
        let base = self.region.region_base(addr);
        let offset = self.region.region_offset(addr);
        let blocks = self.region.blocks_per_region();
        let generation = self.live[cpu as usize]
            .entry(base)
            .or_insert_with(|| LiveGeneration {
                accessed: SpatialPattern::new(blocks),
                missed: SpatialPattern::new(blocks),
            });
        generation.accessed.set(offset);
        if was_miss {
            generation.missed.set(offset);
        }
    }

    /// Observes a block eviction/invalidation, possibly closing a generation.
    pub fn on_block_removed(&mut self, cpu: u8, block_addr: u64) {
        let base = self.region.region_base(block_addr);
        let offset = self.region.region_offset(block_addr);
        let live = &mut self.live[cpu as usize];
        let ends = live.get(&base).is_some_and(|g| g.accessed.get(offset));
        if ends {
            let generation = live.remove(&base).expect("generation just found");
            self.histogram.record_generation(generation.missed.count());
        }
    }

    /// Closes all live generations (end of trace).
    pub fn flush(&mut self) {
        for live in &mut self.live {
            for (_, generation) in live.drain() {
                self.histogram.record_generation(generation.missed.count());
            }
        }
    }

    /// The histogram accumulated so far (call [`flush`](Self::flush) first to
    /// include still-open generations).
    pub fn histogram(&self) -> &DensityHistogram {
        &self.histogram
    }
}

/// A passive observer measuring access density at both cache levels.
#[derive(Debug, Clone)]
pub struct DensityObserver {
    l1: GenerationTracker,
    l2: GenerationTracker,
}

impl DensityObserver {
    /// Creates an observer for `num_cpus` processors.
    pub fn new(num_cpus: usize, region: RegionConfig) -> Self {
        Self {
            l1: GenerationTracker::new(num_cpus, region),
            l2: GenerationTracker::new(num_cpus, region),
        }
    }

    /// Closes all live generations and returns the two histograms (L1, L2).
    pub fn finish(mut self) -> (DensityHistogram, DensityHistogram) {
        self.l1.flush();
        self.l2.flush();
        (self.l1.histogram().clone(), self.l2.histogram().clone())
    }
}

impl Prefetcher for DensityObserver {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        if access.kind.is_read() {
            self.l1
                .on_access(access.cpu, access.addr, outcome.hierarchy.l1_miss());
            self.l2
                .on_access(access.cpu, access.addr, outcome.hierarchy.offchip);
        }
        if let Some(evicted) = &outcome.hierarchy.l1_evicted {
            self.l1.on_block_removed(access.cpu, evicted.block_addr);
        }
        if let Some(evicted) = &outcome.hierarchy.l2_evicted {
            self.l2.on_block_removed(access.cpu, evicted.block_addr);
        }
        for (cpu, block) in &outcome.remote_invalidations {
            self.l1.on_block_removed(*cpu, *block);
            self.l2.on_block_removed(*cpu, *block);
        }
        Vec::new()
    }

    fn name(&self) -> &str {
        "density-observer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_expected_ranges() {
        let bins = DensityBin::PAPER_BINS;
        assert!(bins[0].contains(1) && !bins[0].contains(2));
        assert!(bins[2].contains(4) && bins[2].contains(7));
        assert!(bins[6].contains(32) && bins[6].contains(100));
        assert_eq!(bins[1].label(), "2-3 Blocks");
        assert_eq!(bins[0].label(), "1 Block");
        assert_eq!(bins[6].label(), "32+ Blocks");
    }

    #[test]
    fn histogram_weights_by_miss_count() {
        let mut h = DensityHistogram::new();
        h.record_generation(1); // 1 miss in bin 0
        h.record_generation(4); // 4 misses in bin 2
        h.record_generation(0); // ignored
        assert_eq!(h.total_misses(), 5);
        let f = h.fractions();
        assert!((f[0] - 0.2).abs() < 1e-12);
        assert!((f[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tracker_counts_distinct_missing_blocks() {
        let mut t = GenerationTracker::new(1, RegionConfig::paper_default());
        let base = 0x10_0000u64;
        t.on_access(0, base, true);
        t.on_access(0, base + 64, true);
        t.on_access(0, base + 64, true); // same block missing again: still 2 distinct
        t.on_access(0, base + 128, false);
        t.on_block_removed(0, base);
        let h = t.histogram();
        assert_eq!(h.total_misses(), 2);
        assert_eq!(h.misses_per_bin[1], 2); // density 2 => bin "2-3"
    }

    #[test]
    fn flush_closes_open_generations() {
        let mut t = GenerationTracker::new(1, RegionConfig::paper_default());
        t.on_access(0, 0x10_0000, true);
        assert_eq!(t.histogram().total_misses(), 0);
        t.flush();
        assert_eq!(t.histogram().total_misses(), 1);
    }

    #[test]
    fn observer_produces_histograms_from_simulation() {
        use memsim::{HierarchyConfig, MultiCpuSystem};
        use trace::{Application, GeneratorConfig};
        let mut sys = MultiCpuSystem::new(1, &HierarchyConfig::scaled());
        let mut obs = DensityObserver::new(1, RegionConfig::paper_default());
        let cfg = GeneratorConfig::default().with_cpus(1);
        let mut stream = Application::OltpDb2.stream(8, &cfg);
        let _ = memsim::run(&mut sys, &mut obs, &mut stream, 30_000);
        let (l1, l2) = obs.finish();
        assert!(l1.total_misses() > 0);
        assert!(l2.total_misses() > 0);
        assert!(l2.total_misses() <= l1.total_misses());
    }
}
