//! Glue between the SMS predictor and the simulated memory system.
//!
//! [`SmsPrefetcher`] holds one [`SmsPredictor`] per processor and implements
//! the [`memsim::Prefetcher`] interface: it feeds every demand access to the
//! issuing processor's AGT, terminates generations on L1 evictions and
//! coherence invalidations, and turns prediction-register output into
//! L1 stream-fill requests.

use crate::predictor::{PredictorStats, SmsConfig, SmsPredictor};
use memsim::{PrefetchLevel, PrefetchRequest, Prefetcher, SystemOutcome};
use trace::MemAccess;

/// SMS attached to every processor of a simulated system.
#[derive(Debug, Clone)]
pub struct SmsPrefetcher {
    predictors: Vec<SmsPredictor>,
    /// Reusable scratch for the predictor's streamed block addresses, so the
    /// batched driver path allocates nothing per access.  Always drained
    /// before `on_access_into` returns — never carries state between
    /// accesses.
    blocks: Vec<u64>,
}

impl SmsPrefetcher {
    /// Creates one predictor per processor, all with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize, config: &SmsConfig) -> Self {
        assert!(num_cpus > 0, "need at least one cpu");
        Self {
            predictors: (0..num_cpus).map(|_| SmsPredictor::new(config)).collect(),
            blocks: Vec::new(),
        }
    }

    /// The predictor attached to `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn predictor(&self, cpu: u8) -> &SmsPredictor {
        &self.predictors[cpu as usize]
    }

    /// Sums the per-processor predictor counters.
    pub fn total_stats(&self) -> PredictorStats {
        let mut total = PredictorStats::default();
        for p in &self.predictors {
            let s = p.stats();
            total.triggers += s.triggers;
            total.pht_hits += s.pht_hits;
            total.patterns_trained += s.patterns_trained;
            total.stream_requests += s.stream_requests;
        }
        total
    }
}

impl Prefetcher for SmsPrefetcher {
    fn on_access(&mut self, access: &MemAccess, outcome: &SystemOutcome) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        self.on_access_into(access, outcome, &mut out);
        out
    }

    fn on_access_into(
        &mut self,
        access: &MemAccess,
        outcome: &SystemOutcome,
        out: &mut Vec<PrefetchRequest>,
    ) {
        let cpu = access.cpu as usize;
        if cpu >= self.predictors.len() {
            return;
        }
        // The AGT observes every L1 access (hit or miss).  The reusable
        // scratch buffer keeps this path allocation-free.
        self.blocks.clear();
        self.predictors[cpu].on_access_into(access.addr, access.pc, &mut self.blocks);

        // The demand fill may have displaced an L1 line: that eviction ends
        // the victim region's generation.
        if let Some(evicted) = &outcome.hierarchy.l1_evicted {
            self.predictors[cpu].on_block_removed(evicted.block_addr);
        }
        // Coherence invalidations end generations on the *remote* processors.
        for (inv_cpu, block_addr) in &outcome.remote_invalidations {
            if (*inv_cpu as usize) < self.predictors.len() {
                self.predictors[*inv_cpu as usize].on_block_removed(*block_addr);
            }
        }

        out.extend(self.blocks.drain(..).map(|addr| PrefetchRequest {
            cpu: access.cpu,
            addr,
            level: PrefetchLevel::L1,
        }));
    }

    fn on_stream_eviction(&mut self, cpu: u8, block_addr: u64) {
        if (cpu as usize) < self.predictors.len() {
            self.predictors[cpu as usize].on_block_removed(block_addr);
        }
    }

    fn name(&self) -> &str {
        "sms"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{HierarchyConfig, MultiCpuSystem, NullPrefetcher};
    use trace::{Application, GeneratorConfig};

    fn run_pair(app: Application, n: usize) -> (memsim::RunSummary, memsim::RunSummary) {
        let gen_cfg = GeneratorConfig::default().with_cpus(2);
        let hier = HierarchyConfig::scaled();

        let mut base_sys = MultiCpuSystem::new(2, &hier);
        let mut base = NullPrefetcher::new();
        let mut stream = app.stream(42, &gen_cfg);
        let baseline = memsim::run(&mut base_sys, &mut base, &mut stream, n);

        let mut sms_sys = MultiCpuSystem::new(2, &hier);
        let mut sms = SmsPrefetcher::new(2, &SmsConfig::default());
        let mut stream = app.stream(42, &gen_cfg);
        let with_sms = memsim::run(&mut sms_sys, &mut sms, &mut stream, n);
        (baseline, with_sms)
    }

    #[test]
    fn sms_reduces_misses_on_dss_scans() {
        let (baseline, with_sms) = run_pair(Application::DssQry1, 60_000);
        assert!(
            with_sms.l1.read_misses < baseline.l1.read_misses,
            "SMS should eliminate L1 read misses on scan-dominated DSS \
             (baseline {}, sms {})",
            baseline.l1.read_misses,
            with_sms.l1.read_misses
        );
        let covered = baseline
            .l1
            .read_misses
            .saturating_sub(with_sms.l1.read_misses) as f64
            / baseline.l1.read_misses as f64;
        assert!(covered > 0.3, "DSS scan coverage too low: {covered:.2}");
    }

    #[test]
    fn sms_reduces_misses_on_scientific() {
        let (baseline, with_sms) = run_pair(Application::Sparse, 60_000);
        let covered = baseline
            .l1
            .read_misses
            .saturating_sub(with_sms.l1.read_misses) as f64
            / baseline.l1.read_misses.max(1) as f64;
        assert!(covered > 0.4, "sparse coverage too low: {covered:.2}");
    }

    #[test]
    fn sms_helps_oltp_without_exploding_traffic() {
        let (baseline, with_sms) = run_pair(Application::OltpDb2, 60_000);
        assert!(with_sms.l1.read_misses <= baseline.l1.read_misses);
        // Overpredictions exist but stay bounded relative to baseline misses.
        let over =
            with_sms.l1.prefetch_unused_evictions as f64 / baseline.l1.read_misses.max(1) as f64;
        assert!(over < 1.5, "overprediction ratio too high: {over:.2}");
    }

    #[test]
    fn predictor_accessor_and_stats() {
        let mut sms = SmsPrefetcher::new(2, &SmsConfig::default());
        let mut sys = MultiCpuSystem::new(2, &HierarchyConfig::scaled());
        let gen_cfg = GeneratorConfig::default().with_cpus(2);
        let mut stream = Application::WebApache.stream(3, &gen_cfg);
        let _ = memsim::run(&mut sys, &mut sms, &mut stream, 20_000);
        let totals = sms.total_stats();
        assert!(totals.triggers > 0);
        assert!(totals.patterns_trained > 0);
        assert!(sms.predictor(0).stats().triggers > 0);
        assert_eq!(sms.name(), "sms");
    }
}
